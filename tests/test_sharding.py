"""Sharded multi-chain SMARTCHAIN: replica groups, cross-shard SPEND.

Covers the three layers of the sharding stack:

- core: the :class:`ReplicaGroup` extraction (``Consortium`` alias), the
  shard identity scheme, and single-group equivalence — a ``shards=1``
  deployment through :func:`bootstrap_shards` behaves identically to the
  classic :func:`bootstrap` path;
- protocol/app: the two-phase cross-shard SPEND — LOCK-and-burn on the
  source shard, certificate-verified mint on the destination — including
  rejection of malformed, replayed and wrong-shard certificates;
- harness/obs/faults: per-shard auditing (safety, liveness and the
  cross-shard no-double-mint invariant), shard-scoped fault plans, and
  fail-fast Scenario validation.
"""

import pytest

from repro.bench.harness import Scenario, run
from repro.core import (
    SHARD_STRIDE,
    Consortium,
    ReplicaGroup,
    bootstrap_shards,
    shard_of_node,
)
from repro.core.multichain import MAX_SHARDS, CertificateFetcher, station_id
from repro.obs.audit import AuditError
from repro.smr.requests import ClientRequest


def _sharded_result(shards=2, fraction=0.2, clients=200, duration=2.0,
                    seed=1, **kwargs):
    return run(Scenario(shards=shards, cross_shard_fraction=fraction,
                        clients=clients, duration=duration, seed=seed,
                        **kwargs))


class TestReplicaGroupExtraction:
    def test_consortium_is_replica_group_alias(self):
        assert Consortium is ReplicaGroup

    def test_shard_identity_scheme(self):
        assert shard_of_node(0) == 0
        assert shard_of_node(3) == 0
        assert shard_of_node(SHARD_STRIDE) == 1
        assert shard_of_node(2 * SHARD_STRIDE + 3) == 2
        assert station_id(0, 0) == 9000
        assert station_id(1, 3) == 9103
        assert shard_of_node(station_id(0, 2)) == 0
        assert shard_of_node(station_id(3, 1)) == 3

    def test_bootstrap_shards_bounds(self):
        from repro.sim.engine import Simulator
        from repro.apps.smartcoin import SmartCoin
        from repro.config import SmartChainConfig

        sim = Simulator(seed=1)
        for bad in (0, MAX_SHARDS + 1):
            with pytest.raises(ValueError):
                bootstrap_shards(sim, bad, 4, lambda shard: SmartCoin(),
                                 lambda shard: SmartChainConfig())

    def test_single_shard_matches_classic_bootstrap(self):
        """One group via bootstrap_shards == the classic bootstrap run:
        same key draws, same genesis, same chain after identical traffic."""
        from repro.apps.smartcoin import SmartCoin
        from repro.config import SmartChainConfig
        from repro.core import bootstrap
        from repro.sim.engine import Simulator
        from repro.workloads.coingen import (
            all_minter_addresses,
            deploy_clients,
            deploy_sharded_clients,
        )

        minters = all_minter_addresses(40)
        heads = []
        digests = []
        totals = []
        for sharded in (False, True):
            sim = Simulator(seed=7)
            if sharded:
                mc = bootstrap_shards(
                    sim, 1, 4, lambda shard: SmartCoin(minters=minters),
                    lambda shard: SmartChainConfig())
                stations, _ = deploy_sharded_clients(
                    sim, mc.network, mc, 40)
                group = mc.group(0)
            else:
                group = bootstrap(sim, (0, 1, 2, 3),
                                  lambda: SmartCoin(minters=minters),
                                  SmartChainConfig())
                view = group.genesis.view
                stations, _ = deploy_clients(
                    sim, group.network, lambda: view, 40)
            for station in stations:
                station.start_all(stagger=0.002)
            sim.run(until=1.5)
            node0 = group.node(0)
            heads.append(node0.chain.height)
            digests.append(node0.chain.get(node0.chain.height).header.digest())
            totals.append(sum(st.meter.total for st in stations))
        assert heads[0] == heads[1]
        assert digests[0] == digests[1]
        assert totals[0] == totals[1]


class TestCrossShardSpend:
    def test_end_to_end_transfers_with_clean_audits(self):
        result = _sharded_result(audit=True, audit_liveness=True)
        per_shard = result.metrics["per_shard"]
        assert set(per_shard) == {"0", "1"}
        for entry in per_shard.values():
            assert entry["redeemed"] > 0
            assert entry["blocks"] > 0
        # Minted-in value never exceeds locked-out value; the difference
        # is transfers still in transit at the simulation cutoff.
        total_out = sum(e["xlock_value_out"] for e in per_shard.values())
        total_in = sum(e["xmint_value_in"] for e in per_shard.values())
        assert 0 < total_in <= total_out

    def test_value_conservation_with_in_transit_locks(self):
        result = _sharded_result()
        multichain = result.handle.system
        held = locked_out = minted_in = minted = 0
        for shard in range(multichain.shards):
            app = multichain.apps(shard)[0]
            held += sum(value for _owner, value in app.coins.values())
            locked_out += app.xlock_value_out
            minted_in += app.xmint_value_in
            minted += app.minted_total
        assert held + locked_out - minted_in == minted

    def test_replicas_agree_per_shard(self):
        result = _sharded_result()
        multichain = result.handle.system
        for shard in range(multichain.shards):
            nodes = list(multichain.group(shard).nodes.values())
            # Compare only replicas at the same height: one may have an
            # extra in-flight block executed at the simulation cutoff.
            by_height = {}
            for node in nodes:
                by_height.setdefault(node.chain.height, []).append(node)
            for same in by_height.values():
                digests = {node.app.state_digest() for node in same}
                assert len(digests) == 1


class TestCertificateRejection:
    @pytest.fixture(scope="class")
    def finished(self):
        """One finished 2-shard audited run, shared by the rejection tests
        that present certificates to its (now idle) replicas."""
        return _sharded_result(audit=True)

    def _app_and_obs(self, finished, shard=1):
        multichain = finished.handle.system
        node = min(multichain.group(shard).nodes.values(),
                   key=lambda n: n.id)
        return node.app, finished.handle.obs

    def _request(self, cert_record, client=999_999, req=1):
        return ClientRequest(client_id=client, req_id=req,
                             op=("xmint", "attacker", cert_record))

    def test_malformed_certificate_rejected_with_typed_event(self, finished):
        app, obs = self._app_and_obs(finished)
        before = len(obs.events.of_kind("cert-rejected"))
        result = app.execute(self._request(("garbage",)))[0]
        assert result == ("error", "malformed transfer certificate")
        events = obs.events.of_kind("cert-rejected")
        assert len(events) == before + 1
        assert events[-1].fields["reason"] == "malformed transfer certificate"
        assert not events[-1].fields["replay"]

    def test_source_shard_rejects_its_own_certificate(self, finished):
        multichain = finished.handle.system
        app1, _ = self._app_and_obs(finished, shard=1)
        xfer_id = sorted(app1.redeemed)[0]  # redeemed on 1 => source is 0
        cert_record = CertificateFetcher(multichain)(0, xfer_id)
        assert cert_record is not None
        app0, _ = self._app_and_obs(finished, shard=0)
        result = app0.execute(self._request(cert_record))[0]
        assert result == ("error", "transfer certificate from the local shard")

    def test_replayed_certificate_raises_audit_error(self, finished):
        """A coin burned on shard 0 mints exactly once on shard 1; a second
        presentation is refused and trips the no-double-mint auditor."""
        multichain = finished.handle.system
        app, obs = self._app_and_obs(finished, shard=1)
        xfer_id = sorted(app.redeemed)[0]
        cert_record = CertificateFetcher(multichain)(0, xfer_id)
        assert cert_record is not None
        result = app.execute(self._request(cert_record))[0]
        assert result[0] == "error"
        assert "already redeemed" in result[1]
        event = obs.events.of_kind("cert-rejected")[-1]
        assert event.fields["replay"] and event.fields["xfer"] == xfer_id
        with pytest.raises(AuditError, match="no-double-mint"):
            obs.auditor.raise_if_violated()

    def test_wrong_destination_shard_rejected(self):
        result = _sharded_result(shards=3, fraction=0.3, clients=120,
                                 duration=2.0, audit=True)
        multichain = result.handle.system
        fetcher = CertificateFetcher(multichain)
        # Find a transfer addressed to some shard d and present it to a
        # third shard that is neither its source nor its destination.
        for dest in range(3):
            app = multichain.apps(dest)[0]
            for xfer_id in sorted(app.redeemed):
                for source in range(3):
                    if source == dest:
                        continue
                    cert_record = fetcher(source, xfer_id)
                    if cert_record is None:
                        continue
                    wrong = next(k for k in range(3)
                                 if k not in (source, dest))
                    victim = multichain.apps(wrong)[0]
                    outcome = victim.execute(
                        self._request(cert_record))[0]
                    assert outcome[0] == "error"
                    assert f"addressed to shard {dest}" in outcome[1]
                    return
        pytest.fail("no cross-shard transfer completed in the run")


class TestShardScopedFaults:
    def test_crash_storm_confined_to_shard_zero(self):
        kwargs = dict(shards=2, fraction=0.0, clients=200, duration=2.0)
        clean = _sharded_result(**kwargs)
        stormed = _sharded_result(faults="crash-storm-shard0", audit=True,
                                  **kwargs)
        clean_per = clean.metrics["per_shard"]
        storm_per = stormed.metrics["per_shard"]
        # Shard 0 visibly degraded; shard 1 byte-identically unaffected.
        assert storm_per["0"]["blocks"] < clean_per["0"]["blocks"]
        assert storm_per["1"]["blocks"] == clean_per["1"]["blocks"]
        assert storm_per["1"]["certificates"] == \
            clean_per["1"]["certificates"]

    def test_shard_out_of_range_rejected(self):
        from repro.faults import FaultPlan

        plan = FaultPlan(name="oops", shard=1)
        with pytest.raises(ValueError, match="targets shard 1"):
            run(Scenario(clients=10, duration=0.2, faults=plan))

    def test_scoped_to_offsets_node_ids(self):
        from repro.faults import load_plan

        plan = load_plan("crash-storm-shard0")
        scoped = plan.scoped_to(SHARD_STRIDE)
        assert scoped.crashes[0].node == plan.crashes[0].node + SHARD_STRIDE
        assert all(shard_of_node(node) == 1
                   for action in scoped.network
                   for group in action.groups
                   for node in group)

    def test_shard_field_survives_json_round_trip(self):
        from repro.faults import FaultPlan

        plan = FaultPlan(name="scoped", shard=1)
        assert FaultPlan.from_json(plan.to_json()).shard == 1


class TestScenarioValidation:
    @pytest.mark.parametrize("kwargs,match", [
        (dict(system="nope"), "unknown system"),
        (dict(engine="nope"), "unknown consensus engine"),
        (dict(workload="nope"), "unknown workload"),
        (dict(shards=0), "shards must be in"),
        (dict(shards=MAX_SHARDS + 1), "shards must be in"),
        (dict(shards=2, system="dura"), "sharding requires"),
        (dict(cross_shard_fraction=-0.1), "cross_shard_fraction"),
        (dict(cross_shard_fraction=1.01), "cross_shard_fraction"),
    ])
    def test_fail_fast_at_construction(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            Scenario(**kwargs)

    def test_comparator_engines_not_validated(self):
        # Tendermint/Fabric have no pluggable engine; the (inherited)
        # engine field must not be validated against the engine registry.
        Scenario(system="tendermint", engine="whatever")

    def test_describe_is_additive(self):
        assert "shards" not in Scenario().describe()
        described = Scenario(shards=2, cross_shard_fraction=0.5).describe()
        assert described["shards"] == 2
        assert described["cross_shard_fraction"] == 0.5
