"""SMARTCHAIN blockchain-layer tests: Algorithm 1 mechanics."""

import pytest

from repro.clients.client import Client
from repro.config import PersistenceVariant, StorageMode
from repro.ledger import Block

from tests.helpers import (
    attach_station,
    make_consortium,
    mint_ops_simple,
    run_coin_traffic,
)


class TestBlockProduction:
    def test_one_block_per_decision(self):
        consortium = make_consortium(seed=81)
        run_coin_traffic(consortium, txs=20)
        node = consortium.node(0)
        assert node.chain.height == node.replica.last_decided + 1
        cids = [b.body.consensus_id for b in node.delivery.chain]
        assert cids == sorted(cids)
        assert len(set(cids)) == len(cids)

    def test_blocks_contain_transactions_and_results(self):
        consortium = make_consortium(seed=82)
        run_coin_traffic(consortium, txs=10)
        for block in consortium.node(0).delivery.chain:
            assert len(block.body.transactions) == len(block.body.results)
            for tx, result in zip(block.body.transactions,
                                  block.body.results):
                assert tx.client_id == result[0]
                assert "minted" in result[2] or "error" in result[2]

    def test_header_pointers_maintained(self):
        consortium = make_consortium(seed=83, checkpoint_period=4)
        run_coin_traffic(consortium, txs=30)
        chain = consortium.node(0).delivery.chain
        last_checkpoint = -1
        for block in chain:
            assert block.header.last_checkpoint == last_checkpoint
            if block.number % 4 == 0:
                last_checkpoint = block.number

    def test_all_replicas_build_identical_blocks(self):
        consortium = make_consortium(seed=84)
        run_coin_traffic(consortium, txs=25)
        digests = [tuple(b.digest() for b in n.delivery.chain)
                   for n in consortium.nodes.values()]
        assert digests[0] == digests[1] == digests[2] == digests[3]

    def test_strong_blocks_certified(self):
        consortium = make_consortium(seed=85)
        run_coin_traffic(consortium, txs=20)
        node = consortium.node(0)
        quorum = node.view.cert_quorum
        uncertified = 0
        for block in node.delivery.chain:
            if block.certificate is None:
                uncertified += 1
                continue
            assert len(block.certificate.signatures) >= quorum
            assert block.certificate.header_digest == block.digest()
        assert uncertified <= 1  # only the in-flight tail

    def test_weak_blocks_have_proofs_not_certificates(self):
        consortium = make_consortium(seed=86,
                                     variant=PersistenceVariant.WEAK)
        run_coin_traffic(consortium, txs=15)
        node = consortium.node(0)
        for block in node.delivery.chain:
            assert block.certificate is None
            assert len(block.consensus_proof) >= node.view.quorum

    def test_memory_mode_writes_nothing_stable(self):
        consortium = make_consortium(seed=87, storage=StorageMode.MEMORY)
        run_coin_traffic(consortium, txs=10)
        node = consortium.node(0)
        assert node.chain.height > 0
        assert node.replica.store.log_length("chain") == 0


class TestCheckpoints:
    def test_checkpoint_every_z_blocks(self):
        consortium = make_consortium(seed=88, checkpoint_period=3)
        run_coin_traffic(consortium, txs=30)
        node = consortium.node(0)
        expected = node.chain.height // 3
        assert node.delivery.checkpoints_taken == expected

    def test_checkpoint_written_outside_chain(self):
        consortium = make_consortium(seed=89, checkpoint_period=3)
        run_coin_traffic(consortium, txs=20)
        node = consortium.node(0)
        stored = node.replica.store.read_cell(node.delivery.SNAPSHOT)
        assert stored is not None
        assert stored.block_number % 3 == 0

    def test_zero_period_disables_checkpoints(self):
        consortium = make_consortium(seed=90, checkpoint_period=0)
        run_coin_traffic(consortium, txs=20)
        assert consortium.node(0).delivery.checkpoints_taken == 0

    def test_checkpoint_stalls_pipeline(self):
        """The Figure 7 dip: a large state makes the checkpoint slow."""
        from repro.apps.smartcoin import SmartCoin
        from tests.helpers import MINTER
        import repro.core.node as node_mod
        from repro.config import SMRConfig, SmartChainConfig
        from repro.sim.engine import Simulator

        sim = Simulator(91)
        config = SmartChainConfig(
            smr=SMRConfig(n=4, f=1), checkpoint_period=5)
        consortium = node_mod.bootstrap(
            sim, (0, 1, 2, 3),
            lambda: SmartCoin(minters=[MINTER],
                              synthetic_state_bytes=200_000_000),
            config)
        station = attach_station(consortium)
        Client(station, mint_ops_simple(12))
        station.start_all()
        sim.run(until=60.0)
        assert station.meter.total == 12
        # 200 MB at 45 MB/s -> the checkpoint takes >4 simulated seconds.
        assert sim.now > 4.0


class TestStableLogFormat:
    def test_log_contains_all_block_parts(self):
        consortium = make_consortium(seed=92)
        run_coin_traffic(consortium, txs=12)
        entries = consortium.node(0).replica.store.read_log("chain")
        kinds = {e[0] for e in entries}
        assert {"genesis", "txs", "results", "header", "cert"} <= kinds

    def test_recover_local_rebuilds_chain_exactly(self):
        consortium = make_consortium(seed=93, checkpoint_period=4)
        run_coin_traffic(consortium, txs=20)
        node = consortium.node(0)
        height = node.chain.height
        head = node.chain.head_digest()
        state = node.app.state_digest()
        node.crash()
        recovered_cid = node.delivery.recover_local()
        assert node.chain.height == height
        assert node.chain.head_digest() == head
        assert node.app.state_digest() == state
        assert recovered_cid == node.chain.head().body.consensus_id

    def test_chain_records_parse_as_blocks(self):
        consortium = make_consortium(seed=94)
        run_coin_traffic(consortium, txs=10)
        for record in consortium.node(0).chain_records():
            block = Block.from_record(record)
            block.validate_body()


class TestRepersist:
    def test_repersist_missing_completes_certificates(self):
        consortium = make_consortium(seed=95)
        run_coin_traffic(consortium, txs=15)
        node = consortium.node(0)
        # Strip some certificates (as if lost in a crash before cert write).
        stripped = []
        for block in list(node.delivery.chain)[:3]:
            if block.certificate is not None:
                block.certificate = None
                stripped.append(block.number)
        assert stripped
        done = []
        node.delivery.repersist_missing(lambda: done.append(1))
        consortium.sim.run(until=consortium.sim.now + 5.0)
        assert done
        for number in stripped:
            assert node.delivery.chain.get(number).certificate is not None
