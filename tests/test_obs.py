"""Observability layer: metrics registry, pipeline spans, run reports,
resource accounting and the Scenario-based harness API."""

import json

import pytest

from repro.bench.harness import (
    DEFAULT_WARMUP,
    Scenario,
    run,
    run_smartchain,
)
from repro.config import PersistenceVariant
from repro.obs import PHASES, MetricsRegistry, Observability, PipelineTracer
from repro.obs.report import validate_bench_report, validate_report
from repro.sim.engine import Simulator
from repro.sim.resource import Resource
from repro.sim.trace import ThroughputMeter, bucket_timeline, merge_stamps


@pytest.fixture(scope="module")
def observed_run():
    """One observed SMARTCHAIN run shared by the report/span assertions."""
    return run(Scenario(system="smartchain", clients=300, duration=2.0,
                        seed=77, observe=True))


class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.counter("a").inc(2)
        reg.gauge("b").set(5.0)
        reg.gauge("b").dec(1.5)
        reg.histogram("c").observe(1.0)
        reg.histogram("c").observe(3.0)
        assert reg.counter("a").value == 3
        assert reg.gauge("b").value == 3.5
        assert reg.histogram("c").mean() == 2.0

    def test_labels_partition_series(self):
        reg = MetricsRegistry()
        reg.counter("tx", node=0).inc(5)
        reg.counter("tx", node=1).inc(7)
        assert reg.value("tx", node=0) == 5
        assert reg.value("tx", node=1) == 7
        assert reg.total("tx") == 12
        snapshot = reg.snapshot()
        assert snapshot["tx{node=0}"] == 5
        assert snapshot["tx{node=1}"] == 7

    def test_snapshot_is_json_safe(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        reg.histogram("h").observe(0.5)
        json.dumps(reg.snapshot())


class TestPipelineTracer:
    def test_sampling_is_deterministic(self):
        tracer = PipelineTracer(sample_every=7)
        first = [tracer.sampled((3, i)) for i in range(100)]
        second = [tracer.sampled((3, i)) for i in range(100)]
        assert first == second
        assert 1 <= sum(first) < 100

    def test_bind_merges_cid_marks_into_request_span(self):
        tracer = PipelineTracer()
        key = (10, 1)
        tracer.mark_request(key, "client_send", 0.0)
        tracer.bind(key, 5)
        tracer.mark_cid(5, "propose", 0.002)
        tracer.mark_cid(5, "accept", 0.004)
        tracer.mark_request(key, "reply", 0.006)
        phases = [phase for phase, _ in tracer.span(key)]
        assert phases == ["client_send", "propose", "accept", "reply"]

    def test_out_of_pipeline_order_marks_stay_chronological(self):
        # Dura-SMaRt syncs the log before execution: body_write precedes
        # execute in time.  Durations must stay non-negative.
        tracer = PipelineTracer()
        key = (1, 1)
        tracer.mark_request(key, "client_send", 0.0)
        tracer.bind(key, 1)
        tracer.mark_cid(1, "accept", 0.010)
        tracer.mark_cid(1, "body_write", 0.015)
        tracer.mark_cid(1, "execute", 0.020)
        durations = tracer.phase_durations()
        assert durations["body_write"] == [pytest.approx(0.005)]
        assert durations["execute"] == [pytest.approx(0.005)]

    def test_first_mark_wins(self):
        tracer = PipelineTracer()
        tracer.mark_cid(1, "propose", 1.0)
        tracer.mark_cid(1, "propose", 2.0)
        assert tracer._cid_marks[1]["propose"] == 1.0


class TestResourceAccounting:
    def test_busy_fraction_within_unit_interval(self):
        sim = Simulator(1, obs=Observability(enabled=True))
        resource = Resource(sim, servers=2, name="sm-test")
        for _ in range(50):
            resource.submit(0.010)
        sim.run()
        stats = resource.stats(sim.now)
        assert 0.0 <= stats["busy_fraction"] <= 1.0
        assert stats["jobs_served"] == 50

    def test_queue_depth_tracked_only_when_observed(self):
        sim = Simulator(1, obs=Observability(enabled=True))
        resource = Resource(sim, servers=1, name="queued")
        for _ in range(10):
            resource.submit(0.001)
        sim.run()
        assert resource.queue_peak == 9
        assert resource.mean_queue_depth() > 0

        plain_sim = Simulator(1)
        plain = Resource(plain_sim, servers=1, name="unobserved")
        for _ in range(10):
            plain.submit(0.001)
        plain_sim.run()
        assert plain.queue_peak == 0
        assert plain.mean_queue_depth() == 0.0

    def test_resources_self_register(self):
        sim = Simulator(1)
        Resource(sim, name="one")
        Resource(sim, name="two")
        assert [r.name for r in sim.obs.resources] == ["one", "two"]


class TestObservedRun:
    def test_span_chain_complete(self, observed_run):
        tracer = observed_run.handle.obs.tracer
        complete = tracer.complete_spans(required=PHASES)
        assert complete, "no request traced through all nine phases"
        for span in complete.values():
            times = [when for _, when in span]
            assert times == sorted(times)

    def test_every_resource_busy_fraction_in_unit_interval(self, observed_run):
        for entry in observed_run.report["resources"]:
            assert 0.0 <= entry["busy_fraction"] <= 1.0, entry

    def test_phase_breakdown_covers_pipeline(self, observed_run):
        phases = observed_run.report["phases"]
        # client_send anchors each span (no duration of its own); every
        # other phase must appear for the strong sync configuration.
        assert set(PHASES) - {"client_send"} <= set(phases)
        for stats in phases.values():
            assert stats["count"] > 0
            assert stats["mean_s"] >= 0

    def test_report_round_trips_json(self, observed_run):
        payload = json.dumps(observed_run.to_json())
        restored = json.loads(payload)
        assert restored["report"]["summary"]["throughput_tx_s"] == \
            observed_run.throughput
        validate_report(restored["report"])

    def test_metrics_replace_adhoc_attributes(self, observed_run):
        metrics = observed_run.report["metrics"]
        assert metrics["blocks"] > 0
        assert metrics["chain.blocks_built{node=0}"] == metrics["blocks"]
        assert any(name.startswith("net.messages") for name in metrics)

    def test_validator_rejects_corrupt_report(self, observed_run):
        report = json.loads(json.dumps(observed_run.report))
        report["resources"][0]["busy_fraction"] = 1.5
        with pytest.raises(ValueError):
            validate_report(report)


class TestScenarioAPI:
    def test_wrapper_seed_identical_to_scenario(self):
        with pytest.warns(DeprecationWarning):
            wrapped = run_smartchain(PersistenceVariant.WEAK, clients=200,
                                     duration=1.5, seed=42)
        direct = run(Scenario(system="smartchain",
                              variant=PersistenceVariant.WEAK,
                              clients=200, duration=1.5, seed=42))
        assert wrapped.throughput == direct.throughput
        assert wrapped.completed == direct.completed
        assert wrapped.latency_mean == direct.latency_mean

    def test_observability_does_not_perturb_results(self):
        plain = run(Scenario(system="dura", clients=200, duration=1.5,
                             seed=43))
        observed = run(Scenario(system="dura", clients=200, duration=1.5,
                                seed=43, observe=True))
        assert observed.throughput == plain.throughput
        assert observed.completed == plain.completed
        assert plain.report is None
        assert observed.report is not None

    def test_unknown_system_rejected(self):
        with pytest.raises(ValueError):
            run(Scenario(system="raft"))

    def test_warmup_unified_across_systems(self):
        assert Scenario().warmup == DEFAULT_WARMUP == 1.0
        result = run(Scenario(system="tendermint", clients=100,
                              duration=2.0, seed=44))
        assert result.warmup == DEFAULT_WARMUP

    def test_handle_carries_live_objects(self):
        result = run(Scenario(system="smartchain", clients=100,
                              duration=1.0, seed=45))
        assert result.handle is not None
        assert result.handle.system.node(0).chain.height >= 0
        assert "handle" not in result.to_json()

    def test_result_metrics_are_json_safe(self):
        result = run(Scenario(system="dura", clients=150, duration=1.5,
                              seed=46))
        json.dumps(result.to_json())
        assert result.metrics["group_commits"] > 0
        assert result.metrics["mean_group_commit"] > 0


class TestSharedMeasurement:
    def test_meter_stamps_public_accessor(self):
        sim = Simulator(1)
        meter = ThroughputMeter(sim)
        meter.record(3)
        assert meter.stamps() == [(0.0, 3)]
        meter.stamps().append((9.9, 1))  # a copy: mutation must not leak
        assert meter.stamps() == [(0.0, 3)]

    def test_merge_and_bucket(self):
        sim = Simulator(1)
        a, b = ThroughputMeter(sim), ThroughputMeter(sim)
        a.record(2)
        sim.schedule(1.0, b.record, 4)
        sim.run()
        merged = merge_stamps([a, b])
        assert merged == [(0.0, 2), (1.0, 4)]
        timeline = bucket_timeline(merged, horizon=2.0, width=1.0)
        assert timeline == [(0.5, 2.0), (1.5, 4.0)]


class TestBenchReportCLI:
    def test_smoke_report_validates(self, tmp_path):
        from repro.bench.__main__ import main
        out = tmp_path / "report.json"
        assert main(["--smoke", "--report", str(out)]) == 0
        report = json.loads(out.read_text())
        validate_bench_report(report, min_phases=6)
        run_report = report["runs"][0]
        assert len(run_report["phases"]) >= 6
        assert run_report["resource_roles"]
