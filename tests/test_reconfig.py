"""Decentralized reconfiguration tests (join / leave / exclude / keyreg)."""

import pytest

from repro.apps.smartcoin import SmartCoin
from repro.clients.client import Client
from repro.ledger import ChainVerifier

from tests.helpers import (
    MINTER,
    attach_station,
    make_consortium,
    mint_ops_simple,
)


def consortium_with_traffic(seed, txs=60, policy=None, **kwargs):
    consortium = make_consortium(seed=seed, policy=policy, **kwargs)
    station = attach_station(consortium)
    Client(station, mint_ops_simple(txs))
    station.start_all()
    return consortium, station


class TestJoin:
    def test_join_adds_member_and_catches_up(self):
        consortium, station = consortium_with_traffic(seed=61)
        candidate = consortium.add_candidate(4, SmartCoin(minters=[MINTER]))
        joined = []
        consortium.sim.schedule(
            1.0, lambda: candidate.join(on_done=lambda: joined.append(
                consortium.sim.now)))
        consortium.sim.run(until=20.0)
        assert joined, "join never completed"
        assert candidate.active
        assert candidate.view.members == (0, 1, 2, 3, 4)
        assert all(n.view.view_id == 1 for n in consortium.nodes.values())
        # The joiner's state matches the group.
        assert (candidate.app.state_digest()
                == consortium.node(0).app.state_digest())

    def test_join_rejected_by_policy(self):
        rejections = []

        def deny(kind, node_id, credentials):
            rejections.append((kind, node_id))
            return False

        consortium, station = consortium_with_traffic(seed=62, policy=deny)
        candidate = consortium.add_candidate(4, SmartCoin(minters=[MINTER]))
        consortium.sim.schedule(1.0, candidate.join)
        consortium.sim.run(until=15.0)
        assert rejections  # members consulted the policy
        assert not candidate.active
        assert all(n.view.view_id == 0 for n in consortium.nodes.values()
                   if n.id != 4)

    def test_policy_can_use_credentials(self):
        def password(kind, node_id, credentials):
            return credentials == "sesame"

        consortium, station = consortium_with_traffic(seed=63,
                                                      policy=password)
        candidate = consortium.add_candidate(4, SmartCoin(minters=[MINTER]))
        done = []
        consortium.sim.schedule(
            1.0, lambda: candidate.join(credentials="sesame",
                                        on_done=lambda: done.append(1)))
        consortium.sim.run(until=20.0)
        assert done and candidate.active

    def test_reconfig_block_records_new_view_and_keys(self):
        consortium, station = consortium_with_traffic(seed=64)
        candidate = consortium.add_candidate(4, SmartCoin(minters=[MINTER]))
        consortium.sim.schedule(1.0, candidate.join)
        consortium.sim.run(until=20.0)
        delivery = consortium.node(0).delivery
        block = delivery.chain.get(delivery.last_reconfig)
        assert block.body.new_view is not None
        view_id, members, permanent = block.body.new_view
        assert view_id == 1
        assert 4 in members
        assert dict(permanent).get(4)  # joiner's permanent key recorded
        recorded = {record[1] for record in block.body.key_announcements}
        assert 4 in recorded
        assert len(recorded) >= consortium.genesis.view.n - 1

    def test_join_then_verify_chain_across_views(self):
        consortium, station = consortium_with_traffic(seed=65)
        candidate = consortium.add_candidate(4, SmartCoin(minters=[MINTER]))
        consortium.sim.schedule(1.0, candidate.join)
        consortium.sim.run(until=20.0)
        verifier = ChainVerifier(consortium.registry, consortium.genesis,
                                 uncertified_tail=1)
        report = verifier.verify_records(consortium.node(2).chain_records())
        assert report.reconfigurations == 1
        assert 4 in report.final_view.members


class TestLeave:
    def test_leave_removes_member(self):
        consortium, station = consortium_with_traffic(seed=66, txs=100)
        candidate = consortium.add_candidate(4, SmartCoin(minters=[MINTER]))
        consortium.sim.schedule(1.0, candidate.join)
        left = []
        consortium.sim.schedule(
            6.0, lambda: candidate.leave(on_done=lambda: left.append(1)))
        consortium.sim.run(until=25.0)
        assert left
        final_views = {n.view.members for n in consortium.nodes.values()
                       if n.id != 4}
        assert final_views == {(0, 1, 2, 3)}
        assert not candidate.active

    def test_system_keeps_working_after_leave(self):
        consortium, station = consortium_with_traffic(seed=67, txs=40)
        candidate = consortium.add_candidate(4, SmartCoin(minters=[MINTER]))
        consortium.sim.schedule(1.0, candidate.join)
        consortium.sim.schedule(6.0, candidate.leave)
        consortium.sim.run(until=20.0)
        before = consortium.node(0).chain.height
        station2 = attach_station(consortium, station_id=901)
        Client(station2, mint_ops_simple(10))
        station2.start_all()
        consortium.sim.run(until=35.0)
        assert station2.meter.total == 10
        assert consortium.node(0).chain.height > before


class TestExclude:
    def test_quorum_of_remove_votes_excludes_target(self):
        consortium, station = consortium_with_traffic(seed=68, txs=80)

        def exclude():
            for nid in (0, 1, 2):
                consortium.node(nid).vote_exclude(3)

        consortium.sim.schedule(2.0, exclude)
        consortium.sim.run(until=20.0)
        views = {n.view.members for n in consortium.nodes.values()}
        assert (0, 1, 2) in views
        assert not consortium.node(3).active

    def test_insufficient_votes_do_not_exclude(self):
        consortium, station = consortium_with_traffic(seed=69, txs=60)
        # Only 2 votes; n - f = 3 required.
        consortium.sim.schedule(2.0,
                                lambda: consortium.node(0).vote_exclude(3))
        consortium.sim.schedule(2.0,
                                lambda: consortium.node(1).vote_exclude(3))
        consortium.sim.run(until=15.0)
        assert all(n.view.view_id == 0 for n in consortium.nodes.values())
        assert consortium.node(3).active

    def test_excluded_node_stays_excluded_from_future_quorums(self):
        consortium, station = consortium_with_traffic(seed=70, txs=100)

        def exclude():
            for nid in (0, 1, 2):
                consortium.node(nid).vote_exclude(3)

        consortium.sim.schedule(2.0, exclude)
        consortium.sim.run(until=25.0)
        # Node 3's remove votes against others would not even count: it is
        # no longer a member.
        consortium.node(3).vote_exclude(0)
        consortium.sim.run(until=35.0)
        assert 0 in consortium.node(0).view.members


class TestKeyRotation:
    def test_every_view_change_rotates_keys(self):
        consortium, station = consortium_with_traffic(seed=71, txs=120)
        candidate = consortium.add_candidate(4, SmartCoin(minters=[MINTER]))
        consortium.sim.schedule(1.0, candidate.join)
        consortium.sim.schedule(6.0, candidate.leave)
        consortium.sim.run(until=30.0)
        replica = consortium.node(0).replica
        assert replica.cv.view_id == 2
        assert replica.consensus_keys[0].is_erased
        assert replica.consensus_keys[1].is_erased
        assert not replica.consensus_keys[2].is_erased

    def test_certificates_after_reconfig_use_new_keys(self):
        consortium, station = consortium_with_traffic(seed=72, txs=80)
        candidate = consortium.add_candidate(4, SmartCoin(minters=[MINTER]))
        consortium.sim.schedule(1.0, candidate.join)
        consortium.sim.run(until=20.0)
        delivery = consortium.node(0).delivery
        reconfig_at = delivery.last_reconfig
        keydir = consortium.keydir
        registry = consortium.registry
        checked = 0
        for block in delivery.chain.blocks(start=reconfig_at + 1):
            if block.certificate is None:
                continue
            assert block.certificate.view_id == 1
            keys = keydir.view_keys(1)
            for rid, sig in block.certificate.signatures.items():
                assert registry.verify(keys[rid],
                                       block.certificate.header_digest, sig)
            checked += 1
        assert checked > 0

    def test_late_keyreg_recorded_on_chain(self):
        """A member whose key was not collected in the reconfiguration block
        registers it via a keyreg transaction; the chain records it."""
        consortium, station = consortium_with_traffic(seed=73, txs=80)
        candidate = consortium.add_candidate(4, SmartCoin(minters=[MINTER]))
        consortium.sim.schedule(1.0, candidate.join)
        consortium.sim.run(until=20.0)
        delivery = consortium.node(0).delivery
        recorded = delivery.recorded_members.get(1, set())
        # Eventually every member of view 1 is recorded (reconfig block plus
        # any keyreg follow-ups).
        assert recorded == {0, 1, 2, 3, 4}


class TestCentralizedViewManagerBaseline:
    """The classic BFT-SMART reconfiguration the paper argues against."""

    def _cluster(self, seed):
        from repro.config import SMRConfig
        from repro.crypto.keys import KeyRegistry
        from repro.net.network import Network
        from repro.config import CostModel
        from repro.sim.engine import Simulator
        from repro.smr.keydir import KeyDirectory
        from repro.smr.replica import ModSmartReplica
        from repro.smr.service import MemoryDelivery
        from repro.smr.viewmanager import ViewManager
        from repro.smr.views import View
        from repro.apps.kvstore import KVStore

        sim = Simulator(seed)
        costs = CostModel()
        network = Network(sim, costs.network)
        registry = KeyRegistry(seed)
        keydir = KeyDirectory()
        manager = ViewManager(sim, network, registry)
        view = View(0, (0, 1, 2, 3))
        config = SMRConfig(n=4, f=1,
                           view_manager_public=manager.public)
        apps = [KVStore() for _ in range(5)]
        replicas = [ModSmartReplica(sim, network, registry, keydir, rid,
                                    view, config, costs,
                                    MemoryDelivery(apps[rid]))
                    for rid in view.members]
        # A standby replica that the manager can add.
        standby = ModSmartReplica(sim, network, registry, keydir, 4, view,
                                  config, costs, MemoryDelivery(apps[4]),
                                  active=False)
        return (sim, network, registry, manager, view, replicas, standby,
                apps)

    def test_manager_adds_replica(self):
        (sim, network, registry, manager, view, replicas, standby,
         apps) = self._cluster(301)
        installed = []
        manager.reconfigure(view, (0, 1, 2, 3, 4),
                            on_done=installed.append)
        sim.run(until=10.0)
        assert installed and installed[0].members == (0, 1, 2, 3, 4)
        assert all(r.cv.view_id == 1 for r in replicas)

    def test_manager_removes_replica(self):
        (sim, network, registry, manager, view, replicas, standby,
         apps) = self._cluster(302)
        manager.reconfigure(view, (0, 1, 2, 3, 4))
        sim.run(until=5.0)
        current = replicas[0].cv
        manager.reconfigure(current, (0, 1, 2, 3))
        sim.run(until=10.0)
        assert replicas[0].cv.view_id == 2
        assert replicas[0].cv.members == (0, 1, 2, 3)

    def test_impostor_manager_rejected(self):
        """Anyone without the administrative key is refused — and holding
        that single key is the centralization the paper criticizes."""
        from repro.smr.viewmanager import ViewManager
        (sim, network, registry, manager, view, replicas, standby,
         apps) = self._cluster(303)
        impostor = ViewManager(sim, network, registry, manager_id=9998)
        impostor.reconfigure(view, (0, 1))
        sim.run(until=10.0)
        assert all(r.cv.view_id == 0 for r in replicas)

    def test_vm_disabled_by_default(self):
        """SMARTCHAIN nodes ignore View-Manager requests entirely."""
        from tests.helpers import make_consortium, run_coin_traffic
        from repro.smr.viewmanager import ViewManager
        consortium = make_consortium(seed=304)
        manager = ViewManager(consortium.sim, consortium.network,
                              consortium.registry)
        manager.reconfigure(consortium.genesis.view, (0, 1))
        run_coin_traffic(consortium, txs=5)
        assert all(n.view.view_id == 0 for n in consortium.nodes.values())
