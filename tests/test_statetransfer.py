"""State transfer and single-replica recovery tests."""

import pytest

from repro.clients.client import Client
from repro.config import PersistenceVariant, StorageMode

from tests.helpers import (
    attach_station,
    kv_ops,
    make_cluster,
    make_consortium,
    mint_ops_simple,
    run_coin_traffic,
    station_with_clients,
)


class TestMemoryClusterRecovery:
    def test_crashed_replica_catches_up_via_state_transfer(self):
        sim, network, view, replicas, apps = make_cluster(seed=31)
        station = station_with_clients(sim, network, lambda: view, 5,
                                       lambda i: kv_ops(f"c{i}", 20))
        station.start_all()
        sim.schedule(0.05, replicas[2].crash)
        recovered = []
        sim.schedule(1.0, lambda: replicas[2].recover(
            lambda: recovered.append(sim.now)))
        sim.run(until=30.0)
        assert station.meter.total == 100
        assert recovered, "recovery never completed"
        assert replicas[2].active
        # Memory delivery loses everything locally; state transfer must have
        # rebuilt the full service state.
        assert apps[2].state_digest() == apps[0].state_digest()

    def test_recovering_replica_rejoins_ordering(self):
        sim, network, view, replicas, apps = make_cluster(seed=32)
        station = station_with_clients(sim, network, lambda: view, 5,
                                       lambda i: kv_ops(f"a{i}", 10))
        station.start_all()
        sim.schedule(0.05, replicas[3].crash)
        sim.schedule(0.8, lambda: replicas[3].recover())
        sim.run(until=10.0)
        before = replicas[3].last_decided
        # New traffic after recovery must reach the recovered replica too.
        station2 = station_with_clients(sim, network, lambda: view, 3,
                                        lambda i: kv_ops(f"b{i}", 10),
                                        station_id=901)
        station2.start_all()
        sim.run(until=25.0)
        assert station2.meter.total == 30
        assert replicas[3].last_decided > before


class TestSmartChainRecovery:
    def test_recovery_from_local_chain_plus_transfer(self):
        consortium = make_consortium(seed=33, checkpoint_period=5)
        station = attach_station(consortium)
        Client(station, mint_ops_simple(40))
        station.start_all()
        consortium.sim.schedule(0.4, consortium.node(1).crash)
        consortium.sim.schedule(1.0, lambda: consortium.node(1).recover())
        consortium.sim.run(until=30.0)
        assert station.meter.total == 40
        node0, node1 = consortium.node(0), consortium.node(1)
        assert node1.chain.height == node0.chain.height
        assert node1.chain.head_digest() == node0.chain.head_digest()
        assert node1.app.state_digest() == node0.app.state_digest()

    def test_transfer_package_is_checkpoint_plus_suffix(self):
        consortium = make_consortium(seed=34, checkpoint_period=5)
        run_coin_traffic(consortium, txs=30)
        delivery = consortium.node(0).delivery
        target = delivery.executed_cid
        package, nbytes = delivery.capture_state(up_to_cid=target)
        assert nbytes > 0
        _target, ckpt_record, blocks = package
        assert ckpt_record[0] >= 5  # a checkpoint was taken
        first_suffix_number = blocks[0][0][0] if blocks else None
        if first_suffix_number is not None:
            assert first_suffix_number == ckpt_record[0] + 1

    def test_packages_identical_across_replicas_for_same_target(self):
        consortium = make_consortium(seed=35, checkpoint_period=5)
        run_coin_traffic(consortium, txs=30)
        target = min(n.delivery.executed_cid
                     for n in consortium.nodes.values())
        materials = set()
        for node in consortium.nodes.values():
            package, _ = node.delivery.capture_state(up_to_cid=target)
            materials.add(repr(node.delivery.package_digest_material(package)))
        assert len(materials) == 1

    def test_install_cost_scales_with_suffix(self):
        consortium = make_consortium(seed=36, checkpoint_period=1000)
        run_coin_traffic(consortium, txs=40)
        delivery = consortium.node(0).delivery
        package, _ = delivery.capture_state()
        cost_full = delivery.install_cost(package)
        small_package = (package[0], package[1], package[2][:1])
        assert delivery.install_cost(small_package) < cost_full

    def test_self_verifiable_adoption_rejects_garbage(self):
        consortium = make_consortium(seed=37)
        run_coin_traffic(consortium, txs=10)
        delivery = consortium.node(0).delivery
        assert delivery.can_self_verify()
        package, _ = delivery.capture_state()
        assert delivery.verify_package(package)
        # Strip a certificate: the package no longer proves itself.
        import copy
        target, ckpt, blocks = package
        if blocks:
            from repro.ledger import Block
            forged = [Block.from_record(r) for r in blocks]
            forged[0].certificate = None
            bad = (target, ckpt, tuple(b.to_record() for b in forged))
            assert not delivery.verify_package(bad)

    def test_weak_variant_is_not_self_verifiable(self):
        consortium = make_consortium(seed=38,
                                     variant=PersistenceVariant.WEAK)
        run_coin_traffic(consortium, txs=10)
        assert not consortium.node(0).delivery.can_self_verify()
