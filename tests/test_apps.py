"""Unit + property tests for SMaRtCoin and the KV store."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.kvstore import KVStore
from repro.apps.smartcoin import SmartCoin, Wallet, coin_id
from repro.smr.requests import ClientRequest


def request(op, client=1, req=None, _counter=[0]):
    _counter[0] += 1
    return ClientRequest(client_id=client, req_id=req or _counter[0], op=op)


class TestSmartCoinMint:
    def test_authorized_mint_creates_coins(self):
        coin = SmartCoin(minters=["alice"])
        result, digest = coin.execute(request(("mint", "alice", ((10, 1),))))
        assert result[0] == "minted"
        assert coin.balance("alice") == 10
        assert coin.minted_total == 10

    def test_unauthorized_mint_rejected(self):
        coin = SmartCoin(minters=["alice"])
        result, _ = coin.execute(request(("mint", "mallory", ((10, 1),))))
        assert result[0] == "error"
        assert coin.balance("mallory") == 0
        assert coin.rejected == 1

    def test_multi_output_mint(self):
        coin = SmartCoin(minters=["alice"])
        result, _ = coin.execute(request(("mint", "alice",
                                          ((5, 1), (7, 2), (3, 3)))))
        assert len(result[1]) == 3
        assert coin.balance("alice") == 15

    def test_non_positive_mint_rejected(self):
        coin = SmartCoin(minters=["alice"])
        result, _ = coin.execute(request(("mint", "alice", ((0, 1),))))
        assert result[0] == "error"

    def test_coin_ids_deterministic(self):
        assert coin_id(1, 2, 0) == coin_id(1, 2, 0)
        assert coin_id(1, 2, 0) != coin_id(1, 2, 1)
        assert coin_id(1, 2, 0) != coin_id(1, 3, 0)


class TestSmartCoinSpend:
    def setup_method(self):
        self.coin = SmartCoin(minters=["alice"])
        result, _ = self.coin.execute(
            request(("mint", "alice", ((10, 1),)), client=1, req=1))
        self.cid = result[1][0]

    def test_spend_transfers_ownership(self):
        result, _ = self.coin.execute(
            request(("spend", "alice", (self.cid,), (("bob", 10),))))
        assert result[0] == "spent"
        assert self.coin.balance("bob") == 10
        assert self.coin.balance("alice") == 0

    def test_double_spend_rejected(self):
        self.coin.execute(
            request(("spend", "alice", (self.cid,), (("bob", 10),))))
        result, _ = self.coin.execute(
            request(("spend", "alice", (self.cid,), (("carol", 10),))))
        assert result[0] == "error"
        assert "double spend" in result[1] or "does not exist" in result[1]
        assert self.coin.balance("carol") == 0

    def test_spend_of_unowned_coin_rejected(self):
        result, _ = self.coin.execute(
            request(("spend", "mallory", (self.cid,), (("mallory", 10),))))
        assert result[0] == "error"
        assert self.coin.balance("alice") == 10

    def test_unbalanced_spend_rejected(self):
        result, _ = self.coin.execute(
            request(("spend", "alice", (self.cid,), (("bob", 7),))))
        assert result[0] == "error"
        result, _ = self.coin.execute(
            request(("spend", "alice", (self.cid,), (("bob", 17),))))
        assert result[0] == "error"

    def test_multi_output_spend_splits_value(self):
        result, _ = self.coin.execute(
            request(("spend", "alice", (self.cid,),
                     (("bob", 4), ("carol", 6)))))
        assert result[0] == "spent"
        assert self.coin.balance("bob") == 4
        assert self.coin.balance("carol") == 6

    def test_value_conservation(self):
        before = self.coin.total_value()
        self.coin.execute(
            request(("spend", "alice", (self.cid,), (("bob", 10),))))
        assert self.coin.total_value() == before

    def test_negative_output_rejected(self):
        result, _ = self.coin.execute(
            request(("spend", "alice", (self.cid,),
                     (("bob", 11), ("carol", -1)))))
        assert result[0] == "error"


class TestSmartCoinState:
    def test_snapshot_roundtrip(self):
        coin = SmartCoin(minters=["alice"])
        coin.execute(request(("mint", "alice", ((3, 1), (4, 2)))))
        snapshot, nbytes = coin.snapshot()
        assert nbytes > 0
        clone = SmartCoin()
        clone.install_snapshot(snapshot)
        assert clone.state_digest() == coin.state_digest()
        assert clone.balance("alice") == 7

    def test_synthetic_state_bytes_inflate_snapshot(self):
        small = SmartCoin(minters=["a"])
        big = SmartCoin(minters=["a"], synthetic_state_bytes=10**9)
        assert big.snapshot()[1] >= 10**9 > small.snapshot()[1]

    def test_unknown_operation_is_error_result(self):
        coin = SmartCoin()
        result, _ = coin.execute(request(("transmute", "lead", "gold")))
        assert result[0] == "error"

    def test_deterministic_execution(self):
        def run():
            coin = SmartCoin(minters=["m"])
            coin.execute(request(("mint", "m", ((5, 1),)), client=9, req=1))
            coins = coin.coins_of("m")
            coin.execute(ClientRequest(9, 2, ("spend", "m", tuple(coins),
                                              (("x", 5),))))
            return coin.state_digest()

        assert run() == run()

    def test_balance_query(self):
        coin = SmartCoin(minters=["m"])
        coin.execute(request(("mint", "m", ((5, 1),))))
        result, _ = coin.execute(request(("balance", "m")))
        assert result == 5

    @given(st.lists(st.integers(min_value=1, max_value=100), min_size=1,
                    max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_property_total_value_equals_mints(self, values):
        coin = SmartCoin(minters=["m"])
        for index, value in enumerate(values):
            coin.execute(ClientRequest(1, index + 1,
                                       ("mint", "m", ((value, index),))))
        assert coin.total_value() == sum(values)
        assert coin.balance("m") == sum(values)

    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_property_spends_preserve_value(self, data):
        coin = SmartCoin(minters=["m"])
        count = data.draw(st.integers(min_value=1, max_value=8))
        for index in range(count):
            coin.execute(ClientRequest(1, index + 1, ("mint", "m", ((10, index),))))
        total = coin.total_value()
        owned = coin.coins_of("m")
        spends = data.draw(st.integers(min_value=0, max_value=len(owned)))
        for index, cid in enumerate(owned[:spends]):
            coin.execute(ClientRequest(2, index + 1,
                                       ("spend", "m", (cid,), ((f"r{index}", 10),))))
        assert coin.total_value() == total


class TestWallet:
    def test_wallet_tracks_minted_coins(self):
        coin = SmartCoin(minters=["w"])
        wallet = Wallet("w")
        op = wallet.mint_op(5, count=2)
        result, _ = coin.execute(request(op))
        wallet.note_result(op, result)
        assert len(wallet.owned) == 2
        assert wallet.owned[0][1] == 5

    def test_wallet_spend_removes_coin(self):
        coin = SmartCoin(minters=["w"])
        wallet = Wallet("w")
        op = wallet.mint_op(5)
        result, _ = coin.execute(request(op))
        wallet.note_result(op, result)
        coin_entry = wallet.take_coin()
        spend = wallet.spend_op(coin_entry, "other")
        result, _ = coin.execute(request(spend))
        assert result[0] == "spent"
        wallet.note_result(spend, result)
        assert wallet.take_coin() is None

    def test_error_results_do_not_corrupt_wallet(self):
        wallet = Wallet("w")
        wallet.note_result(wallet.mint_op(5), ("error", "nope"))
        assert wallet.owned == []


class TestKVStore:
    def test_put_get_del(self):
        kv = KVStore()
        result, _ = kv.execute(request(("put", "k", 1)))
        assert result is None
        result, _ = kv.execute(request(("get", "k")))
        assert result == 1
        result, _ = kv.execute(request(("del", "k")))
        assert result == 1
        result, _ = kv.execute(request(("get", "k")))
        assert result is None

    def test_put_returns_previous(self):
        kv = KVStore()
        kv.execute(request(("put", "k", 1)))
        result, _ = kv.execute(request(("put", "k", 2)))
        assert result == 1

    def test_cas(self):
        kv = KVStore()
        kv.execute(request(("put", "k", 1)))
        ok, _ = kv.execute(request(("cas", "k", 1, 2)))
        assert ok is True
        bad, _ = kv.execute(request(("cas", "k", 1, 3)))
        assert bad is False
        assert kv.data["k"] == 2

    def test_unknown_op(self):
        kv = KVStore()
        result, _ = kv.execute(request(("boom",)))
        assert result[0] == "error"

    def test_snapshot_roundtrip(self):
        kv = KVStore()
        kv.execute(request(("put", "a", 1)))
        kv.execute(request(("put", "b", 2)))
        snapshot, nbytes = kv.snapshot()
        clone = KVStore()
        clone.install_snapshot(snapshot)
        assert clone.state_digest() == kv.state_digest()

    def test_result_digests_differ_per_request(self):
        kv = KVStore()
        _, d1 = kv.execute(request(("put", "k", 1), client=1, req=100))
        _, d2 = kv.execute(request(("put", "k", 1), client=2, req=100))
        assert d1 != d2

    @given(st.lists(st.tuples(st.text(max_size=5), st.integers()),
                    max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_property_matches_dict_semantics(self, puts):
        kv = KVStore()
        model = {}
        for index, (key, value) in enumerate(puts):
            kv.execute(ClientRequest(1, index + 1, ("put", key, value)))
            model[key] = value
        assert kv.data == model
