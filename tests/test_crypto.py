"""Unit + property tests for the crypto substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.hashing import (
    EMPTY_DIGEST,
    cache_stats,
    caches_enabled,
    canonical_bytes,
    clear_caches,
    digest,
    hash_obj,
    hash_obj_cached,
    set_caches_enabled,
)
from repro.crypto.keys import KeyPair, KeyRegistry, Signature
from repro.crypto.merkle import MerkleTree, merkle_root
from repro.errors import CryptoError


class TestKeys:
    def test_sign_verify_roundtrip(self):
        registry = KeyRegistry(1)
        key = registry.generate("alice")
        signature = key.sign(b"payload")
        assert registry.verify(key.public, b"payload", signature)

    def test_wrong_payload_fails(self):
        registry = KeyRegistry(1)
        key = registry.generate()
        signature = key.sign(b"payload")
        assert not registry.verify(key.public, b"other", signature)

    def test_wrong_key_fails(self):
        registry = KeyRegistry(1)
        alice, bob = registry.generate("a"), registry.generate("b")
        signature = alice.sign(b"payload")
        assert not registry.verify(bob.public, b"payload", signature)

    def test_signer_mismatch_fails(self):
        registry = KeyRegistry(1)
        alice, bob = registry.generate("a"), registry.generate("b")
        signature = alice.sign(b"payload")
        forged = Signature(bob.public, signature.value)
        assert not registry.verify(bob.public, b"payload", forged)

    def test_unknown_key_fails(self):
        registry = KeyRegistry(1)
        key = registry.generate()
        signature = key.sign(b"x")
        assert not registry.verify("deadbeef", b"x", signature)

    def test_keys_are_distinct(self):
        registry = KeyRegistry(1)
        publics = {registry.generate().public for _ in range(50)}
        assert len(publics) == 50

    def test_erased_key_cannot_sign(self):
        registry = KeyRegistry(1)
        key = registry.generate()
        key.erase()
        assert key.is_erased
        with pytest.raises(CryptoError):
            key.sign(b"x")

    def test_erasure_preserves_old_signatures(self):
        """The forgetting protocol: past signatures stay verifiable, new
        ones become impossible."""
        registry = KeyRegistry(1)
        key = registry.generate()
        signature = key.sign(b"block-header")
        key.erase()
        assert registry.verify(key.public, b"block-header", signature)

    def test_deterministic_generation_per_seed(self):
        a = KeyRegistry(7).generate("x")
        b = KeyRegistry(7).generate("x")
        assert a.public == b.public


class TestCanonicalEncoding:
    def test_basic_types(self):
        for value in (None, True, False, 0, -5, 3.25, "text", b"bytes",
                      (1, 2), [1, 2], {"k": "v"}):
            assert isinstance(canonical_bytes(value), bytes)

    def test_deterministic_dict_ordering(self):
        a = canonical_bytes({"b": 2, "a": 1})
        b = canonical_bytes({"a": 1, "b": 2})
        assert a == b

    def test_structural_distinction(self):
        assert canonical_bytes(["ab"]) != canonical_bytes(["a", "b"])
        assert canonical_bytes("1") != canonical_bytes(1)
        assert canonical_bytes((1,)) != canonical_bytes(1)

    def test_unencodable_raises(self):
        with pytest.raises(CryptoError):
            canonical_bytes(object())

    def test_to_canonical_hook(self):
        class Thing:
            def to_canonical(self):
                return ("thing", 42)

        assert canonical_bytes(Thing()) == canonical_bytes(("thing", 42))

    def test_hash_obj_is_sha256(self):
        assert len(hash_obj("x")) == 32
        assert hash_obj("x") == digest(canonical_bytes("x"))

    @given(st.recursive(
        st.none() | st.booleans() | st.integers() | st.text() | st.binary(),
        lambda children: st.lists(children, max_size=4),
        max_leaves=12))
    @settings(max_examples=60, deadline=None)
    def test_encoding_is_injective_on_samples(self, value):
        # Same value encodes identically; a structural wrapper changes it.
        assert canonical_bytes(value) == canonical_bytes(value)
        assert canonical_bytes([value]) != canonical_bytes([[value]])


class TestCryptoCaches:
    """The digest/verify caches: counters, escape hatch, byte parity."""

    @pytest.fixture(autouse=True)
    def _fresh_cache_state(self):
        set_caches_enabled(True)
        clear_caches()
        yield
        set_caches_enabled(True)
        clear_caches()

    def test_cached_digest_matches_uncached(self):
        payload = ("accept", 7, b"batch-digest")
        assert hash_obj_cached(payload) == hash_obj(payload)
        # Second call takes the hit path; bytes must not change.
        assert hash_obj_cached(payload) == hash_obj(payload)

    def test_hit_and_miss_counters(self):
        before = cache_stats()
        payload = ("coin", 3, 11, 0)
        hash_obj_cached(payload)
        hash_obj_cached(payload)
        hash_obj_cached(payload)
        after = cache_stats()
        assert after["digest_cache_misses"] - before["digest_cache_misses"] == 1
        assert after["digest_cache_hits"] - before["digest_cache_hits"] == 2

    def test_escape_hatch_disables_counters_and_memo(self):
        payload = ("req", 1, 2, "", "op")
        hash_obj_cached(payload)
        set_caches_enabled(False)
        assert not caches_enabled()
        before = cache_stats()
        assert hash_obj_cached(payload) == hash_obj(payload)
        assert hash_obj_cached(payload) == hash_obj(payload)
        # Disabled: plain recompute, no counter movement.
        assert cache_stats() == before

    def test_bytes_identical_with_and_without_caches(self):
        # Repeated ints and short strings exercise the interning tables;
        # the outer tuples are all distinct, as in real payloads.
        samples = [("coin", client, req, idx, "addr-%d" % (client % 3))
                   for client in range(20)
                   for req in range(3)
                   for idx in (0, 1)]
        samples += [(True, False, None, 1, 0, -1, 2**70, 3.5, b"x", "y"),
                    ((1, "nest"), [2, "list"], {"k": 1, 3: "v"})]
        warm1 = [canonical_bytes(sample) for sample in samples]
        warm2 = [canonical_bytes(sample) for sample in samples]  # all-hit pass
        set_caches_enabled(False)
        cold = [canonical_bytes(sample) for sample in samples]
        assert warm1 == warm2 == cold

    def test_interning_never_conflates_bool_and_int(self):
        assert canonical_bytes((1,)) != canonical_bytes((True,))
        assert canonical_bytes((0,)) != canonical_bytes((False,))
        # ... in either order of first encounter.
        clear_caches()
        assert canonical_bytes((True,)) != canonical_bytes((1,))

    def test_int_subclass_uses_general_path(self):
        class Code(int):
            pass

        # Same canonical bytes as the plain int — the fast path must not
        # treat exact-type dispatch as a semantic difference.
        assert canonical_bytes((Code(7),)) == canonical_bytes((7,))

    def test_clear_caches_resets_memo_but_not_counters(self):
        payload = ("persist", 5, b"cert")
        hash_obj_cached(payload)
        hash_obj_cached(payload)
        stats = cache_stats()
        clear_caches()
        assert cache_stats() == stats
        before = cache_stats()
        hash_obj_cached(payload)  # cold again after clear
        after = cache_stats()
        assert after["digest_cache_misses"] - before["digest_cache_misses"] == 1

    def test_verify_cache_counters(self):
        registry = KeyRegistry(1)
        key = registry.generate("alice")
        signature = key.sign(b"payload")
        before = cache_stats()
        assert registry.verify(key.public, b"payload", signature)
        assert registry.verify(key.public, b"payload", signature)
        after = cache_stats()
        assert after["verify_cache_misses"] - before["verify_cache_misses"] == 1
        assert after["verify_cache_hits"] - before["verify_cache_hits"] == 1

    def test_verify_unknown_key_not_cached(self):
        registry = KeyRegistry(1)
        other = KeyRegistry(2)
        key = other.generate("bob")
        signature = key.sign(b"payload")
        assert not registry.verify(key.public, b"payload", signature)
        # Unknown keys are never memoized — the key may register later and
        # a cached False would then be stale.
        assert registry._verify_cache == {}

    def test_verify_disabled_still_correct(self):
        registry = KeyRegistry(1)
        key = registry.generate("alice")
        signature = key.sign(b"payload")
        set_caches_enabled(False)
        assert registry.verify(key.public, b"payload", signature)
        assert not registry.verify(key.public, b"other", signature)


class TestMerkle:
    def test_empty_tree_root(self):
        assert merkle_root([]) == EMPTY_DIGEST

    def test_single_leaf(self):
        tree = MerkleTree(["only"])
        assert tree.root == hash_obj("only")

    def test_proof_verification(self):
        items = [f"tx-{i}" for i in range(7)]
        tree = MerkleTree(items)
        for index, item in enumerate(items):
            proof = tree.proof(index)
            assert MerkleTree.verify(tree.root, item, proof)

    def test_proof_fails_for_wrong_item(self):
        items = ["a", "b", "c", "d"]
        tree = MerkleTree(items)
        proof = tree.proof(1)
        assert not MerkleTree.verify(tree.root, "x", proof)

    def test_proof_fails_against_wrong_root(self):
        tree_a = MerkleTree(["a", "b", "c"])
        tree_b = MerkleTree(["a", "b", "d"])
        proof = tree_a.proof(0)
        assert not MerkleTree.verify(tree_b.root, "a", proof)

    def test_root_changes_with_any_item(self):
        base = merkle_root(["a", "b", "c", "d"])
        for index in range(4):
            items = ["a", "b", "c", "d"]
            items[index] = "tampered"
            assert merkle_root(items) != base

    def test_order_matters(self):
        assert merkle_root(["a", "b"]) != merkle_root(["b", "a"])

    def test_out_of_range_proof_rejected(self):
        tree = MerkleTree(["a"])
        with pytest.raises(CryptoError):
            tree.proof(1)

    @given(st.lists(st.text(min_size=1), min_size=1, max_size=33),
           st.integers(min_value=0, max_value=1000))
    @settings(max_examples=50, deadline=None)
    def test_every_leaf_provable(self, items, index_seed):
        tree = MerkleTree(items)
        index = index_seed % len(items)
        proof = tree.proof(index)
        assert MerkleTree.verify(tree.root, items[index], proof)
