"""Tests for verified recovery: storage-fault plans, the recovery auditor,
and the end-to-end fault -> recovery -> audit pipeline (docs/faults.md,
"Storage faults & verified recovery").
"""

import json

import pytest

from repro.bench.harness import Scenario, run
from repro.faults import (
    CrashSpec,
    FaultPlan,
    FaultPlanError,
    NAMED_PLANS,
    StorageFaultSpec,
)
from repro.obs.audit import AuditError
from repro.obs.events import ProtocolEvent
from repro.obs.recovery import RecoveryAuditor, audit_recovery_log
from repro.obs.report import validate_report


class TestStorageFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown storage fault"):
            StorageFaultSpec(node=0, kind="head-crash", at=1.0)

    def test_negative_time_rejected(self):
        with pytest.raises(FaultPlanError, match=">= 0"):
            StorageFaultSpec(node=0, kind="bit-rot", at=-1.0)

    def test_json_roundtrip(self):
        plan = FaultPlan(
            name="rot",
            storage=(StorageFaultSpec(node=2, kind="gray-disk", at=0.5,
                                      params={"factor": 4.0}),),
            crashes=(CrashSpec(node=2, at=1.0, recover_at=1.5),))
        restored = FaultPlan.from_json(json.loads(json.dumps(plan.to_json())))
        assert restored == plan

    def test_scoped_to_offsets_storage_nodes(self):
        plan = NAMED_PLANS["bitrot-recovery"].scoped_to(100)
        assert plan.storage[0].node == 102
        assert plan.crashes[0].node == 102

    def test_named_recovery_plans_compose_fault_with_crash(self):
        for name in ("bitrot-recovery", "torn-write-recovery"):
            plan = NAMED_PLANS[name]
            assert plan.storage and plan.crashes
            # The fault lands before the first crash, so the damaged log
            # is stable when recovery reads it back.
            assert plan.storage[0].at < plan.crashes[0].at

    def test_negative_control_disables_verification(self):
        assert NAMED_PLANS["bitrot-unverified"].protocol == {
            "verify_recovery": False}


def _event(kind, node, seq=0, time=1.0, **fields):
    return ProtocolEvent(time=time, seq=seq, kind=kind, node=node,
                         fields=fields)


class TestRecoveryAuditor:
    def test_matching_replay_is_clean(self):
        auditor = RecoveryAuditor()
        auditor.on_event(_event("decide", 0, cid=0, batch_hash="aa"))
        auditor.on_event(_event("decide", 0, cid=1, batch_hash="bb"))
        auditor.on_event(_event("recovering", 2,
                                replayed=[(0, "aa"), (1, "bb")]))
        assert auditor.ok
        assert auditor.replayed_checked == 2
        auditor.raise_if_violated()

    def test_divergent_replay_is_flagged(self):
        auditor = RecoveryAuditor()
        auditor.on_event(_event("decide", 0, cid=0, batch_hash="aa"))
        auditor.on_event(_event("recovering", 2, replayed=[(0, "xx")]))
        assert not auditor.ok
        assert auditor.violations[0].invariant == "recovery-divergence"
        with pytest.raises(AuditError):
            auditor.raise_if_violated()

    def test_phantom_cid_is_flagged(self):
        auditor = RecoveryAuditor()
        auditor.on_event(_event("decide", 0, cid=0, batch_hash="aa"))
        auditor.on_event(_event("recovering", 2, replayed=[(7, "aa")]))
        assert [v.invariant for v in auditor.violations] == ["phantom-replay"]

    def test_scope_separates_shards(self):
        # The same cid decided differently in two shards must not cross.
        auditor = RecoveryAuditor(scope=lambda node: node // 100)
        auditor.on_event(_event("decide", 0, cid=0, batch_hash="aa"))
        auditor.on_event(_event("decide", 100, cid=0, batch_hash="bb"))
        auditor.on_event(_event("recovering", 102, replayed=[(0, "bb")]))
        assert auditor.ok

    def test_strict_mode_raises_immediately(self):
        auditor = RecoveryAuditor(strict=True)
        auditor.on_event(_event("decide", 0, cid=0, batch_hash="aa"))
        with pytest.raises(AuditError):
            auditor.on_event(_event("recovering", 2, replayed=[(0, "xx")]))

    def test_health_tallies(self):
        auditor = audit_recovery_log([
            _event("log-corruption-detected", 2, log="oplog", index=3,
                   reason="checksum", dropped=2),
            _event("snapshot-rejected", 2, key="snap"),
            _event("recovery-fallback", 2, from_cid=3, dropped=2),
            _event("recovery-verified", 2, entries=3, truncated=2, cid=3),
            _event("disk-degraded", 0, latency=0.1, budget=0.01, factor=8.0),
        ])
        summary = auditor.summary()
        assert summary["corruption_detected"] == 1
        assert summary["snapshots_rejected"] == 1
        assert summary["fallbacks"] == 1
        assert summary["disk_degraded"] == 1
        assert auditor.recoveries_verified == 1
        assert auditor.ok


def _recovery_scenario(plan, **overrides):
    kwargs = dict(system="dura", clients=300, duration=3.0, seed=1,
                  observe=True, audit=True, faults=plan)
    kwargs.update(overrides)
    return Scenario(**kwargs)


class TestEndToEnd:
    def test_bitrot_recovery_detects_truncates_and_stays_canonical(self):
        result = run(_recovery_scenario("bitrot-recovery"))
        metrics = dict(result.metrics)
        assert metrics["storage.bitrot_detected"] >= 1
        assert metrics["recovery.truncated_entries"] >= 1
        assert metrics["recovery.fallbacks"] >= 1
        assert metrics["recovery.verified_entries"] >= 1
        summary = result.report["recovery"]
        assert summary["corruption_detected"] >= 1
        assert summary["replayed_checked"] >= 1
        assert summary["violations"] == []
        validate_report(result.report)

    def test_torn_write_recovery_stops_at_the_hole(self):
        result = run(_recovery_scenario("torn-write-recovery"))
        metrics = dict(result.metrics)
        assert metrics["recovery.truncated_entries"] >= 1
        assert result.report["recovery"]["violations"] == []

    def test_gray_disk_surfaces_degradation_without_violations(self):
        result = run(_recovery_scenario("gray-disk"))
        metrics = dict(result.metrics)
        assert metrics["storage.gray_periods"] == 1
        summary = result.report["recovery"]
        assert summary["disk_degraded"] >= 1
        assert summary["violations"] == []

    def test_unverified_negative_control_diverges(self):
        """With ``verify_recovery=False`` the corrupted record replays
        blindly and the auditor must catch the divergence — the behavior
        checksummed recovery exists to prevent."""
        with pytest.raises(AuditError) as excinfo:
            run(_recovery_scenario("bitrot-unverified"))
        assert any(v.invariant == "recovery-divergence"
                   for v in excinfo.value.violations)

    def test_fault_free_run_reports_zero_recovery_activity(self):
        result = run(Scenario(system="dura", clients=300, duration=1.0,
                              seed=1, observe=True, audit=True))
        metrics = dict(result.metrics)
        for key in ("recovery.verified_entries", "recovery.truncated_entries",
                    "recovery.fallbacks", "storage.bitrot_detected",
                    "storage.gray_periods"):
            assert metrics[key] == 0, key
        assert result.report["recovery"]["recoveries_seen"] == 0
