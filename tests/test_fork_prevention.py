"""The Figure 4 attack and the forgetting protocol that defeats it.

Scenario (paper, Section V-D): nodes are removed from the consortium over a
sequence of reconfigurations; later, an adversary compromises those removed
nodes.  With permanent signing keys the adversary could assemble a quorum of
old members and forge an alternative suffix branching off before the
reconfiguration block.  With per-view consensus keys + erasure, compromising
an old member yields nothing: the keys that could vouch for old-view blocks
no longer exist.
"""

import pytest

from repro.clients.client import Client
from repro.crypto.keys import Signature
from repro.errors import VerificationError
from repro.ledger import (
    Block,
    BlockBody,
    BlockHeader,
    Certificate,
    ChainVerifier,
    TxRecord,
)
from repro.crypto.hashing import hash_obj

from tests.helpers import attach_station, make_consortium, mint_ops_simple


@pytest.fixture(scope="module")
def reconfigured_chain():
    """Run a consortium through an exclusion, so views rotate."""
    consortium = make_consortium(seed=51, checkpoint_period=100)
    station = attach_station(consortium)
    Client(station, mint_ops_simple(12))
    station.start_all()
    sim = consortium.sim
    # Exclude node 3 mid-run: views rotate 0 -> 1, keys are erased.
    def exclude():
        for nid in (0, 1, 2):
            consortium.node(nid).vote_exclude(3)
    sim.schedule(2.0, exclude)
    Client(station, mint_ops_simple(10))
    sim.run(until=12.0)
    assert consortium.node(0).view.view_id == 1
    return consortium


class TestForgetting:
    def test_old_view_keys_are_erased(self, reconfigured_chain):
        consortium = reconfigured_chain
        for nid in (0, 1, 2):
            replica = consortium.node(nid).replica
            assert replica.consensus_keys[0].is_erased
            assert not replica.consensus_keys[1].is_erased

    def test_removed_member_cannot_vouch_for_new_blocks(self,
                                                        reconfigured_chain):
        consortium = reconfigured_chain
        removed = consortium.node(3).replica
        # Node 3 generated a view-1 key while voting, but it was excluded; its
        # view-0 key (the one that could rewrite history) is gone.
        assert removed.consensus_keys[0].is_erased

    def test_reconfigured_chain_verifies(self, reconfigured_chain):
        consortium = reconfigured_chain
        verifier = ChainVerifier(consortium.registry, consortium.genesis,
                                 uncertified_tail=1)
        report = verifier.verify_records(consortium.node(0).chain_records())
        assert report.reconfigurations == 1
        assert report.final_view.view_id == 1
        assert report.final_view.members == (0, 1, 2)


class TestFigureFourAttack:
    def _forge_suffix(self, consortium, fork_at: int, signer_keys):
        """Build a forged block extending the chain at height ``fork_at``
        (dropping everything after it), certified with ``signer_keys``."""
        base = consortium.node(0).delivery.chain
        prev_digest = (base.get(fork_at).digest() if fork_at >= 1
                       else consortium.genesis.hash_for_block_one)
        evil_tx = TxRecord(6666, 1, ("mint", "attacker", ((10**9, 1),)), 180)
        body = BlockBody(
            consensus_id=fork_at,  # pretends to be the next consensus
            transactions=[evil_tx],
            results=[(6666, 1, "('minted', ('loot',))", b"ok")],
            batch_hash=hash_obj(("forged-batch",)),
        )
        header = BlockHeader(
            number=fork_at + 1,
            last_reconfig=base.get(fork_at).header.last_reconfig,
            last_checkpoint=base.get(fork_at).header.last_checkpoint,
            view_id=base.get(fork_at).header.view_id,
            hash_transactions=body.hash_transactions(),
            hash_results=body.hash_results(),
            hash_last_block=prev_digest,
        )
        block = Block(header, body)
        certificate = Certificate(block.number, block.digest(),
                                  header.view_id)
        for replica_id, key in signer_keys:
            certificate.add(replica_id, key.sign(block.digest()))
        block.certificate = certificate
        honest_prefix = [b.to_record() for b in base.blocks(end=fork_at)]
        return honest_prefix + [block.to_record()]

    def test_fork_with_fresh_attacker_keys_rejected(self, reconfigured_chain):
        """Attacker keys were never recorded on the chain: zero valid
        certificate signatures."""
        consortium = reconfigured_chain
        reconfig_block = consortium.node(0).delivery.last_reconfig
        fork_at = reconfig_block - 1
        attacker_keys = [(rid, consortium.registry.generate(f"atk-{rid}"))
                         for rid in (1, 2, 3)]
        forged = self._forge_suffix(consortium, fork_at, attacker_keys)
        verifier = ChainVerifier(consortium.registry, consortium.genesis)
        with pytest.raises(VerificationError):
            verifier.verify_records(forged)

    def test_fork_with_compromised_permanent_keys_rejected(
            self, reconfigured_chain):
        """Figure 4 proper: the adversary captures old members AFTER the
        reconfiguration and tries to extend the old view's chain without the
        reconfiguration block.  Permanent keys don't certify blocks, and the
        erased consensus keys cannot sign — the fork cannot be built."""
        consortium = reconfigured_chain
        fork_at = consortium.node(0).delivery.last_reconfig - 1
        # "Compromise": take the permanent keys of members 1, 2, 3.
        stolen = [(rid, consortium.node(rid).replica.permanent_key)
                  for rid in (1, 2, 3)]
        forged = self._forge_suffix(consortium, fork_at, stolen)
        verifier = ChainVerifier(consortium.registry, consortium.genesis)
        with pytest.raises(VerificationError):
            verifier.verify_records(forged)

    def test_erased_consensus_keys_cannot_sign_at_all(self,
                                                      reconfigured_chain):
        """The stronger statement: the material needed to forge a valid
        old-view certificate no longer exists anywhere."""
        consortium = reconfigured_chain
        from repro.errors import CryptoError
        for nid in (0, 1, 2, 3):
            key = consortium.node(nid).replica.consensus_keys[0]
            with pytest.raises(CryptoError):
                key.sign(b"forged block header")

    def test_counterfactual_unerased_keys_would_have_forked(
            self, reconfigured_chain):
        """Sanity check that the attack is real: if consensus keys were NOT
        erased, compromised old members could mint a verifying fork."""
        consortium = reconfigured_chain
        fork_at = consortium.node(0).delivery.last_reconfig - 1
        # Counterfactual: regenerate the registry-side material by creating
        # a parallel world where the view-0 keys survived.  We simulate it
        # by reaching into the key directory for view 0 publics and signing
        # with hypothetical surviving keys — impossible in the real system,
        # so we emulate by building a fresh consortium without rotation.
        from tests.helpers import make_consortium as fresh
        naive = fresh(seed=51, checkpoint_period=100)
        station = attach_station(naive)
        Client(station, mint_ops_simple(12))
        station.start_all()
        naive.sim.run(until=5.0)
        # Keys not erased (no reconfiguration ran): an attacker holding them
        # CAN certify an alternative block — and it verifies.
        keys = [(nid, naive.node(nid).replica.consensus_keys[0])
                for nid in (1, 2, 3)]
        forged = TestFigureFourAttack._forge_suffix(
            self, naive, naive.node(0).chain.height - 1, keys)
        verifier = ChainVerifier(naive.registry, naive.genesis)
        report = verifier.verify_records(forged)
        assert report.blocks_verified == naive.node(0).chain.height
        # ... which is precisely why the forgetting protocol exists.
