"""Shared builders for the test suite: small clusters, quick workloads."""

from __future__ import annotations

from repro.apps.kvstore import KVStore
from repro.apps.smartcoin import SmartCoin
from repro.clients.client import Client, ClientStation, OpSpec
from repro.config import (
    CostModel,
    PersistenceVariant,
    SMRConfig,
    SmartChainConfig,
    StorageMode,
    VerificationMode,
)
from repro.core.node import Consortium, bootstrap
from repro.crypto.keys import KeyRegistry
from repro.net.network import Network
from repro.sim.engine import Simulator
from repro.sim.trace import TraceLog
from repro.smr.keydir import KeyDirectory
from repro.smr.replica import ModSmartReplica
from repro.smr.service import MemoryDelivery
from repro.smr.views import View

MINTER = "minter:test"


def make_cluster(
    n: int = 4,
    seed: int = 1,
    verification: VerificationMode = VerificationMode.PARALLEL,
    delivery_factory=None,
    app_factory=None,
    config: SMRConfig | None = None,
    trace: TraceLog | None = None,
    engine: str | None = None,
):
    """A plain SMR cluster with MemoryDelivery+KVStore by default.

    Returns (sim, network, view, replicas, apps).
    """
    sim = Simulator(seed)
    costs = CostModel()
    network = Network(sim, costs.network)
    registry = KeyRegistry(seed)
    keydir = KeyDirectory()
    view = View(0, tuple(range(n)))
    config = config or SMRConfig(n=n, f=(n - 1) // 3, verification=verification)
    apps = []
    replicas = []
    for replica_id in view.members:
        app = app_factory() if app_factory else KVStore()
        apps.append(app)
        delivery = (delivery_factory(app) if delivery_factory
                    else MemoryDelivery(app))
        replicas.append(ModSmartReplica(
            sim, network, registry, keydir, replica_id, view, config, costs,
            delivery, trace=trace, engine=engine))
    return sim, network, view, replicas, apps


def make_consortium(
    n: int = 4,
    seed: int = 1,
    variant: PersistenceVariant = PersistenceVariant.STRONG,
    storage: StorageMode = StorageMode.SYNC,
    verification: VerificationMode = VerificationMode.PARALLEL,
    checkpoint_period: int = 25,
    minters: tuple[str, ...] = (MINTER,),
    trace: TraceLog | None = None,
    policy=None,
    engine: str | None = None,
) -> Consortium:
    """A small SmartChain consortium running SMaRtCoin."""
    sim = Simulator(seed)
    config = SmartChainConfig(
        smr=SMRConfig(n=n, f=(n - 1) // 3, verification=verification),
        variant=variant,
        storage=storage,
        checkpoint_period=checkpoint_period,
    )
    return bootstrap(sim, tuple(range(n)),
                     lambda: SmartCoin(minters=list(minters)),
                     config, trace=trace, policy=policy, engine=engine)


def attach_station(consortium: Consortium, station_id: int = 900,
                   send_window: float = 0.0005) -> ClientStation:
    holder = [consortium.genesis.view]
    for node in consortium.nodes.values():
        node.view_listeners.append(lambda v: holder.__setitem__(0, v))
    return ClientStation(consortium.sim, consortium.network, station_id,
                         lambda: holder[0], send_window=send_window)


def kv_ops(prefix: str, count: int, size: int = 200):
    """Finite KV put workload."""
    for index in range(count):
        yield OpSpec(("put", f"{prefix}-{index}", index), size=size,
                     reply_size=64)


def mint_ops_simple(count: int, address: str = MINTER):
    import itertools
    nonce = itertools.count(1)
    for _ in range(count):
        yield OpSpec(("mint", address, ((1, next(nonce)),)), size=180,
                     reply_size=270)


def run_coin_traffic(consortium: Consortium, txs: int = 40,
                     until: float = 20.0, station_id: int = 900):
    """Drive ``txs`` MINTs through a consortium and run the sim."""
    station = attach_station(consortium, station_id)
    client = Client(station, mint_ops_simple(txs))
    station.start_all()
    consortium.sim.run(until=until)
    return station, client


def station_with_clients(sim, network, view_of, num_clients, ops_factory,
                         station_id: int = 900):
    station = ClientStation(sim, network, station_id, view_of,
                            send_window=0.0005)
    for index in range(num_clients):
        Client(station, ops_factory(index))
    return station
