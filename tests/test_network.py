"""Unit tests for the simulated network."""

import pytest

from repro.errors import NetworkError
from repro.net.message import HEADER_OVERHEAD_BYTES, Message
from repro.net.network import Network, NetworkConfig
from repro.sim.engine import Simulator


def build(seed=1, **config):
    sim = Simulator(seed)
    net = Network(sim, NetworkConfig(**config))
    return sim, net


class TestDelivery:
    def test_message_delivered_to_handler(self):
        sim, net = build()
        seen = []
        net.register("a", lambda s, m: None)
        net.register("b", lambda s, m: seen.append((s, m.msg_id)))
        msg = Message(size=100)
        net.send("a", "b", msg)
        sim.run()
        assert seen == [("a", msg.msg_id)]

    def test_latency_applied(self):
        sim, net = build(latency=0.01, jitter=0.0)
        times = []
        net.register("a", lambda s, m: None)
        net.register("b", lambda s, m: times.append(sim.now))
        net.send("a", "b", Message(size=0))
        sim.run()
        serialize = Message(size=0).wire_size() / 1e9
        assert times[0] == pytest.approx(0.01 + serialize, abs=1e-6)

    def test_bandwidth_serializes_on_sender_nic(self):
        sim, net = build(latency=0.0, jitter=0.0, bandwidth_bps=1e6)
        times = []
        net.register("a", lambda s, m: None)
        net.register("b", lambda s, m: times.append(sim.now))
        # Two 1 Mbit-ish messages: the second waits for the first on the NIC.
        big = 125_000 - HEADER_OVERHEAD_BYTES  # exactly 1s at 1 Mbps
        net.send("a", "b", Message(size=big))
        net.send("a", "b", Message(size=big))
        sim.run()
        assert times[0] == pytest.approx(1.0, rel=0.01)
        assert times[1] == pytest.approx(2.0, rel=0.01)

    def test_broadcast_hits_all_destinations(self):
        sim, net = build()
        seen = []
        net.register("a", lambda s, m: None)
        for node in ("b", "c", "d"):
            net.register(node, lambda s, m, node=node: seen.append(node))
        net.broadcast("a", ["b", "c", "d"], Message(size=10))
        sim.run()
        assert sorted(seen) == ["b", "c", "d"]

    def test_self_send_delivers(self):
        sim, net = build()
        seen = []
        net.register("a", lambda s, m: seen.append(s))
        net.send("a", "a", Message(size=10))
        sim.run()
        assert seen == ["a"]

    def test_send_from_unregistered_is_dropped(self):
        sim, net = build()
        seen = []
        net.register("b", lambda s, m: seen.append(s))
        net.send("ghost", "b", Message(size=10))
        sim.run()
        assert seen == []

    def test_send_to_unregistered_counts_dropped(self):
        sim, net = build()
        net.register("a", lambda s, m: None)
        net.send("a", "ghost", Message(size=10))
        sim.run()
        assert net.messages_dropped == 1

    def test_byte_accounting(self):
        sim, net = build()
        net.register("a", lambda s, m: None)
        net.register("b", lambda s, m: None)
        net.send("a", "b", Message(size=100))
        sim.run()
        assert net.bytes_sent == 100 + HEADER_OVERHEAD_BYTES
        assert net.messages_sent == 1
        assert net.messages_delivered == 1


class TestMembership:
    def test_duplicate_registration_rejected(self):
        _sim, net = build()
        net.register("a", lambda s, m: None)
        with pytest.raises(NetworkError):
            net.register("a", lambda s, m: None)

    def test_unregister_drops_in_flight(self):
        sim, net = build(latency=0.01, jitter=0.0)
        seen = []
        net.register("a", lambda s, m: None)
        net.register("b", lambda s, m: seen.append(s))
        net.send("a", "b", Message(size=10))
        net.unregister("b")  # crash before delivery
        sim.run()
        assert seen == []

    def test_reregister_after_crash(self):
        sim, net = build()
        seen = []
        net.register("a", lambda s, m: None)
        net.register("b", lambda s, m: seen.append("old"))
        net.unregister("b")
        net.register("b", lambda s, m: seen.append("new"))
        net.send("a", "b", Message(size=10))
        sim.run()
        assert seen == ["new"]


class TestFaults:
    def test_partition_blocks_cross_traffic(self):
        sim, net = build()
        seen = []
        for node in "abcd":
            net.register(node, lambda s, m, node=node: seen.append(node))
        net.partition(["a", "b"], ["c", "d"])
        net.send("a", "c", Message(size=10))
        net.send("a", "b", Message(size=10))
        sim.run()
        assert seen == ["b"]

    def test_heal_restores_traffic(self):
        sim, net = build()
        seen = []
        net.register("a", lambda s, m: None)
        net.register("c", lambda s, m: seen.append("c"))
        net.partition(["a"], ["c"])
        net.heal()
        net.send("a", "c", Message(size=10))
        sim.run()
        assert seen == ["c"]

    def test_drop_probability_one_drops_everything(self):
        sim, net = build()
        seen = []
        net.register("a", lambda s, m: None)
        net.register("b", lambda s, m: seen.append("b"))
        net.set_drop_probability("a", "b", 1.0)
        for _ in range(10):
            net.send("a", "b", Message(size=10))
        sim.run()
        assert seen == []
        assert net.messages_dropped == 10

    def test_extra_delay_on_link(self):
        sim, net = build(latency=0.001, jitter=0.0)
        times = []
        net.register("a", lambda s, m: None)
        net.register("b", lambda s, m: times.append(sim.now))
        net.set_extra_delay("a", "b", 0.5)
        net.send("a", "b", Message(size=0))
        sim.run()
        assert times[0] > 0.5

    def test_pre_gst_asynchrony_adds_delay(self):
        sim, net = build(latency=0.001, jitter=0.0, gst=10.0,
                         asynchrony_max=1.0)
        times = []
        net.register("a", lambda s, m: None)
        net.register("b", lambda s, m: times.append(sim.now))
        for _ in range(20):
            net.send("a", "b", Message(size=0))
        sim.run()
        # With max extra delay 1.0, some messages should be visibly late.
        assert max(times) > 0.05

    def test_post_gst_is_timely(self):
        sim, net = build(latency=0.001, jitter=0.0, gst=0.0)
        times = []
        net.register("a", lambda s, m: None)
        net.register("b", lambda s, m: times.append(sim.now))
        net.send("a", "b", Message(size=0))
        sim.run()
        assert times[0] < 0.01


class TestDropAccounting:
    """Each drop cause has its own counter; messages_dropped aggregates."""

    def test_partition_drops(self):
        sim, net = build()
        net.register("a", lambda s, m: None)
        net.register("b", lambda s, m: None)
        net.partition(["a"], ["b"])
        net.send("a", "b", Message(size=10))
        sim.run()
        assert (net.dropped_partition, net.dropped_prob,
                net.dropped_detached) == (1, 0, 0)
        assert net.messages_dropped == 1

    def test_probabilistic_drops(self):
        sim, net = build()
        net.register("a", lambda s, m: None)
        net.register("b", lambda s, m: None)
        net.set_drop_probability("a", "b", 1.0)
        net.send("a", "b", Message(size=10))
        sim.run()
        assert (net.dropped_partition, net.dropped_prob,
                net.dropped_detached) == (0, 1, 0)

    def test_detached_drops(self):
        sim, net = build(latency=0.01, jitter=0.0)
        net.register("a", lambda s, m: None)
        net.register("b", lambda s, m: None)
        net.send("a", "b", Message(size=10))
        net.unregister("b")  # crash while the message is in flight
        sim.run()
        assert (net.dropped_partition, net.dropped_prob,
                net.dropped_detached) == (0, 0, 1)

    def test_stats_exposes_split_counters(self):
        sim, net = build()
        net.register("a", lambda s, m: None)
        net.partition(["a"], ["ghost"])
        net.send("a", "ghost", Message(size=10))
        sim.run()
        stats = net.stats()
        assert stats["dropped_partition"] == 1
        assert stats["dropped_prob"] == 0
        assert stats["dropped_detached"] == 0
        assert stats["messages_dropped"] == 1


class TestFaultInterplay:
    """partition / heal / set_extra_delay composition semantics."""

    def test_partition_checked_at_propagation_not_at_send(self):
        # A message still serializing on the NIC when the partition heals
        # must be delivered: blocking is a property of the wire at
        # propagation time, not of the send call.
        sim, net = build(latency=0.0, jitter=0.0, bandwidth_bps=1e6)
        seen = []
        net.register("a", lambda s, m: None)
        net.register("b", lambda s, m: seen.append(sim.now))
        net.partition(["a"], ["b"])
        big = 125_000 - HEADER_OVERHEAD_BYTES  # 1 s on the NIC at 1 Mbps
        net.send("a", "b", Message(size=big))
        sim.schedule(0.5, net.heal)
        sim.run()
        assert len(seen) == 1 and seen[0] == pytest.approx(1.0, rel=0.01)
        assert net.dropped_partition == 0

    def test_heal_does_not_resurrect_dropped_messages(self):
        # A message dropped at the partition is gone for good; only traffic
        # sent after heal() goes through, in FIFO order.
        sim, net = build(latency=0.001, jitter=0.0)
        order = []
        net.register("a", lambda s, m: None)
        net.register("b", lambda s, m: order.append(m.msg_id))
        net.partition(["a"], ["b"])
        lost = Message(size=0)
        net.send("a", "b", lost)
        first, second = Message(size=0), Message(size=0)

        def heal_and_resend():
            net.heal()
            net.send("a", "b", first)
            net.send("a", "b", second)

        sim.schedule(0.1, heal_and_resend)
        sim.run()
        assert order == [first.msg_id, second.msg_id]
        assert net.dropped_partition == 1

    def test_extra_delay_survives_heal(self):
        # heal() clears partitions only; a slow link stays slow.
        sim, net = build(latency=0.001, jitter=0.0)
        times = []
        net.register("a", lambda s, m: None)
        net.register("b", lambda s, m: times.append(sim.now))
        net.set_extra_delay("a", "b", 0.3)
        net.partition(["a"], ["b"])
        net.heal()
        net.send("a", "b", Message(size=0))
        sim.run()
        assert times[0] > 0.3

    def test_extra_delay_reorders_deliveries(self):
        # A message sent earlier on a slowed link arrives after a message
        # sent later once the delay is lifted — the reordering that
        # leader-change timeouts must tolerate.
        sim, net = build(latency=0.001, jitter=0.0)
        order = []
        net.register("a", lambda s, m: None)
        net.register("b", lambda s, m: order.append(m.msg_id))
        slow, fast = Message(size=0), Message(size=0)
        net.set_extra_delay("a", "b", 0.2)
        net.send("a", "b", slow)

        def lift_and_send():
            net.set_extra_delay("a", "b", 0.0)
            net.send("a", "b", fast)

        sim.schedule(0.05, lift_and_send)
        sim.run()
        assert order == [fast.msg_id, slow.msg_id]


class TestRngIsolation:
    """Network randomness draws from a private stream, not sim.rng."""

    def test_traffic_leaves_global_rng_untouched(self):
        sim, net = build(jitter=0.001)
        net.register("a", lambda s, m: None)
        net.register("b", lambda s, m: None)
        net.set_drop_probability("a", "b", 0.5)
        state = sim.rng.getstate()
        for _ in range(50):
            net.send("a", "b", Message(size=10))
        sim.run()
        assert sim.rng.getstate() == state

    def test_delivery_schedule_independent_of_global_rng_use(self):
        def run_once(burn_global):
            sim, net = build(seed=42, jitter=0.001)
            times = []
            net.register("a", lambda s, m: None)
            net.register("b", lambda s, m: times.append(sim.now))
            if burn_global:
                sim.rng.random()  # a non-network consumer of randomness
            for _ in range(10):
                net.send("a", "b", Message(size=10))
            sim.run()
            return times

        assert run_once(False) == run_once(True)
