"""Liveness auditor: request lifecycles, wedge detection, backoff recovery.

Unit tests drive :class:`LivenessAuditor` with synthetic event streams
(deadline edges, GST semantics, wedge episodes); integration tests run the
liveness-attacking fault plans end to end and assert the acceptance pair:
the legacy fixed-timeout synchronizer wedges under ``leader-delay-fixed``
(AuditError, CLI exit 2) while the exponential-backoff synchronizer
survives the identical attack under both consensus engines.
"""

import pytest

from repro.bench.__main__ import main
from repro.bench.harness import Scenario, run
from repro.obs.audit import AuditError
from repro.obs.events import EventLog
from repro.obs.liveness import (
    LIVENESS_INVARIANTS,
    LivenessAuditor,
    audit_liveness_log,
)
from repro.obs.report import validate_report


def _wired(**kwargs):
    """An auditor subscribed to a fresh log; returns (log, auditor)."""
    auditor = LivenessAuditor(**kwargs)
    log = EventLog()
    log.subscribe(auditor.on_event)
    return log, auditor


def _submit(log, t, client=1, req=1):
    log.emit("request-submitted", 9000, t, client=client, req=req, size=200)


def _reply(log, t, client=1, req=1):
    log.emit("request-replied", 9000, t, client=client, req=req,
             latency=0.0)


def _change(log, regency, t):
    log.emit("leader-change", regency % 4, t, regency=regency,
             leader=regency % 4, timeout=0.5)


class TestBoundedLatency:
    def test_reply_exactly_at_deadline_passes(self):
        log, auditor = _wired(bound=1.0, gst=0.0)
        _submit(log, 0.5)
        _reply(log, 1.5)  # deadline is inclusive
        assert auditor.ok
        assert auditor.summary()["replied"] == 1

    def test_reply_past_deadline_flags(self):
        log, auditor = _wired(bound=1.0, gst=0.0)
        _submit(log, 0.5)
        _reply(log, 1.5001)
        assert not auditor.ok
        violation = auditor.violations[0]
        assert violation.invariant == "bounded-latency"
        assert violation.context["deadline"] == pytest.approx(1.5)

    def test_pre_gst_submission_measured_from_gst(self):
        log, auditor = _wired(bound=1.0, gst=2.0)
        _submit(log, 0.5)       # pre-GST asynchrony is excused
        _reply(log, 2.9)        # deadline is gst + bound = 3.0
        assert auditor.ok
        _submit(log, 0.6, req=2)
        _reply(log, 3.1, req=2)
        assert not auditor.ok

    def test_outstanding_past_deadline_flagged_at_finalize(self):
        log, auditor = _wired(bound=1.0, gst=0.0)
        _submit(log, 0.5)            # deadline 1.5, horizon 5.0: late
        _submit(log, 4.5, req=2)     # deadline 5.5 > horizon: excused
        assert auditor.ok
        auditor.finalize(horizon=5.0)
        assert len(auditor.violations) == 1
        summary = auditor.summary()
        assert summary["late_outstanding"] == 1
        assert summary["outstanding"] == 2

    def test_flag_cap_still_tallies_every_late_reply(self):
        log, auditor = _wired(bound=0.1, gst=0.0, max_flagged=2)
        for req in range(5):
            _submit(log, 0.0, req=req)
            _reply(log, 1.0, req=req)
        assert len(auditor.violations) == 2
        assert auditor.summary()["late_replies"] == 5

    def test_strict_mode_raises_immediately(self):
        log, auditor = _wired(bound=0.1, gst=0.0, strict=True)
        _submit(log, 0.0)
        with pytest.raises(AuditError):
            _reply(log, 1.0)


class TestWedgeDetection:
    def test_k_decisionless_changes_flag_wedge(self):
        log, auditor = _wired(wedge_k=4)
        for regency in range(1, 5):
            _change(log, regency, 0.5 * regency)
        wedges = [v for v in auditor.violations if v.invariant == "no-wedge"]
        assert len(wedges) == 1
        assert wedges[0].context["changes"] == 4

    def test_decide_resets_the_counter(self):
        log, auditor = _wired(wedge_k=4)
        for regency in range(1, 4):
            _change(log, regency, 0.5 * regency)
        log.emit("decide", 0, 2.0, cid=1, batch=3, regency=3)
        for regency in range(4, 7):
            _change(log, regency, 0.5 * regency)
        assert auditor.ok

    def test_duplicate_installs_and_decides_counted_once(self):
        log, auditor = _wired(wedge_k=4)
        for node in range(4):  # four replicas installing the same regency
            log.emit("leader-change", node, 1.0, regency=1, leader=1,
                     timeout=0.5)
        for node in range(4):  # four replicas delivering the same cid
            log.emit("decide", node, 1.5, cid=7, batch=1, regency=1)
        summary = auditor.summary()
        assert summary["regency_changes"] == 1
        assert summary["regency_timeline"][-1]["decisions"] == 1
        assert auditor.ok

    def test_timeline_attributes_latency_to_current_regency(self):
        log, auditor = _wired(bound=10.0)
        _submit(log, 0.1)
        _change(log, 1, 0.5)
        _reply(log, 0.9)
        by_regency = auditor.summary()["latency_by_regency"]
        assert set(by_regency) == {"1"}
        assert by_regency["1"]["count"] == 1
        assert by_regency["1"]["max_s"] == pytest.approx(0.8)


class TestOfflineHelper:
    def test_offline_sweep_matches_online(self):
        log, online = _wired(bound=1.0, wedge_k=4)
        _submit(log, 0.1)
        _change(log, 1, 0.4)
        _reply(log, 0.8)
        _submit(log, 0.2, req=2)
        online.finalize(horizon=6.0)
        offline = audit_liveness_log(log, horizon=6.0, bound=1.0, wedge_k=4)
        assert offline.summary() == online.summary()
        assert offline.summary()["invariants"] == list(LIVENESS_INVARIANTS)


class TestHarnessIntegration:
    def test_fixed_timeout_wedges_under_leader_delay(self):
        # The acceptance negative control: the legacy fixed-timeout
        # synchronizer livelocks — each SYNC is overtaken by the next
        # escalation — and the auditor calls the wedge.
        with pytest.raises(AuditError) as excinfo:
            run(Scenario(system="smartchain", clients=60, duration=4.0,
                         seed=1, faults="leader-delay-fixed",
                         audit_liveness=True))
        assert any(v.invariant == "no-wedge"
                   for v in excinfo.value.violations)

    @pytest.mark.parametrize("engine", ["modsmart", "fastbft"])
    def test_exponential_backoff_survives_leader_delay(self, engine):
        result = run(Scenario(system="smartchain", engine=engine, clients=60,
                              duration=6.0, seed=1, faults="leader-delay",
                              audit_liveness=True, observe=True))
        liveness = result.report["liveness"]
        assert liveness["violations"] == []
        assert liveness["replied"] > 0
        # Recovery required at least one backed-off regency change, and the
        # per-install timeouts grew monotonically within the storm.
        assert liveness["regency_changes"] >= 1
        timeouts = [entry["timeout"]
                    for entry in liveness["regency_timeline"][1:]]
        assert timeouts and timeouts == sorted(timeouts)
        assert timeouts[-1] > 0.25  # backed off beyond the plan's base

    @pytest.mark.parametrize("plan", ["stop-spam", "timeout-jitter"])
    def test_remaining_liveness_plans_pass(self, plan):
        result = run(Scenario(system="smartchain", clients=60, duration=4.0,
                              seed=1, faults=plan, audit_liveness=True))
        assert result.handle.obs.liveness.ok

    def test_stop_spam_never_reaches_join_quorum(self):
        # One spammer is below f+1: the group must keep the leader.
        result = run(Scenario(system="smartchain", clients=60, duration=4.0,
                              seed=1, faults="stop-spam",
                              audit_liveness=True))
        assert result.handle.obs.liveness.summary()["regency_changes"] == 0
        assert result.metrics["regency_changes"] == 0

    def test_report_carries_liveness_section_and_sync_metrics(self):
        result = run(Scenario(system="smartchain", clients=60, duration=6.0,
                              seed=1, faults="leader-delay",
                              audit_liveness=True, observe=True))
        validate_report(result.report)
        liveness = result.report["liveness"]
        assert liveness["invariants"] == list(LIVENESS_INVARIANTS)
        assert liveness["bound_s"] == 4.0   # from the plan's hints
        assert liveness["gst_s"] == 0.4
        assert liveness["submitted"] >= liveness["replied"] > 0
        assert liveness["latency_by_regency"]
        # Satellite metrics: synchronizer health rolled into run metrics.
        metrics = result.metrics
        assert metrics["regency_changes"] >= 1
        assert metrics["watchdog_fires"] >= 1
        assert metrics["regency_timeouts"]  # str regency -> timeout
        assert all(isinstance(k, str) for k in metrics["regency_timeouts"])

    def test_scenario_overrides_beat_plan_hints(self):
        result = run(Scenario(system="smartchain", clients=60, duration=2.0,
                              seed=1, faults="stop-spam",
                              audit_liveness=True, liveness_bound=9.0,
                              liveness_gst=0.2, wedge_k=7))
        auditor = result.handle.obs.liveness
        assert auditor.bound == 9.0
        assert auditor.gst == 0.2
        assert auditor.wedge_k == 7

    def test_clean_run_passes_with_default_bound(self):
        result = run(Scenario(system="smartchain", clients=60, duration=2.0,
                              seed=1, audit_liveness=True))
        auditor = result.handle.obs.liveness
        assert auditor.ok
        assert auditor.summary()["regency_changes"] == 0


class TestCLI:
    def test_audit_liveness_exit_codes(self, capsys):
        assert main(["smartchain", "--clients", "60", "--duration", "4.0",
                     "--audit-liveness", "--faults",
                     "leader-delay-fixed"]) == 2
        assert "no-wedge" in capsys.readouterr().err
        assert main(["smartchain", "--clients", "60", "--duration", "6.0",
                     "--audit-liveness", "--faults", "leader-delay"]) == 0
        capsys.readouterr()
