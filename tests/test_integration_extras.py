"""Cross-cutting integration tests: light clients, app-agnosticism,
catch-up mode, Byzantine leader equivocation."""

import pytest

from repro.apps.kvstore import KVStore
from repro.clients.client import Client, ClientStation, OpSpec
from repro.config import SMRConfig, SmartChainConfig, VerificationMode
from repro.core.node import bootstrap
from repro.ledger import ChainVerifier
from repro.sim.engine import Simulator

from tests.helpers import (
    attach_station,
    kv_ops,
    make_cluster,
    make_consortium,
    mint_ops_simple,
    run_coin_traffic,
    station_with_clients,
)


class TestLightClient:
    def test_transaction_inclusion_proof(self):
        consortium = make_consortium(seed=201)
        run_coin_traffic(consortium, txs=12)
        block = consortium.node(0).chain.get(3)
        tx = block.body.transactions[0]
        proof = block.body.transaction_proof(0)
        assert ChainVerifier.verify_inclusion(block.header, tx, proof)

    def test_forged_transaction_fails_inclusion(self):
        consortium = make_consortium(seed=202)
        run_coin_traffic(consortium, txs=12)
        block = consortium.node(0).chain.get(2)
        proof = block.body.transaction_proof(0)
        from repro.ledger import TxRecord
        forged = TxRecord(666, 1, ("mint", "thief", ((10**9, 1),)), 180)
        assert not ChainVerifier.verify_inclusion(block.header, forged, proof)

    def test_proof_does_not_transfer_between_blocks(self):
        consortium = make_consortium(seed=203)
        run_coin_traffic(consortium, txs=12)
        chain = consortium.node(0).chain
        block_a, block_b = chain.get(1), chain.get(2)
        tx = block_a.body.transactions[0]
        proof = block_a.body.transaction_proof(0)
        assert not ChainVerifier.verify_inclusion(block_b.header, tx, proof)

    def test_result_inclusion_proof(self):
        consortium = make_consortium(seed=204)
        run_coin_traffic(consortium, txs=8)
        block = consortium.node(1).chain.get(1)
        result = block.body.results[0]
        proof = block.body.result_proof(0)
        assert ChainVerifier.verify_result_inclusion(block.header, result,
                                                     proof)


class TestAppAgnosticLayer:
    def test_smartchain_runs_kvstore(self):
        """The blockchain layer works for any deterministic application."""
        sim = Simulator(205)
        config = SmartChainConfig(smr=SMRConfig(n=4, f=1),
                                  checkpoint_period=10)
        consortium = bootstrap(sim, (0, 1, 2, 3), KVStore, config)
        station = attach_station(consortium)
        Client(station, kv_ops("k", 25))
        station.start_all()
        sim.run(until=15.0)
        assert station.meter.total == 25
        node = consortium.node(0)
        assert node.chain.height > 0
        assert node.app.data["k-24"] == 24
        verifier = ChainVerifier(consortium.registry, consortium.genesis,
                                 uncertified_tail=1)
        report = verifier.verify_records(node.chain_records())
        assert report.total_transactions == 25

    def test_kvstore_state_survives_crash_recovery(self):
        sim = Simulator(206)
        config = SmartChainConfig(smr=SMRConfig(n=4, f=1),
                                  checkpoint_period=5)
        consortium = bootstrap(sim, (0, 1, 2, 3), KVStore, config)
        station = attach_station(consortium)
        Client(station, kv_ops("x", 20))
        station.start_all()
        sim.schedule(0.5, consortium.node(2).crash)
        sim.schedule(1.5, lambda: consortium.node(2).recover())
        sim.run(until=20.0)
        assert station.meter.total == 20
        assert (consortium.node(2).app.state_digest()
                == consortium.node(0).app.state_digest())


class TestCatchUpMode:
    def test_lagging_joiner_converges_to_head(self):
        """A joiner activated mid-stream drains its backlog via fast replay
        instead of trailing the group forever."""
        from repro.apps.smartcoin import SmartCoin
        from tests.helpers import MINTER
        consortium = make_consortium(seed=207, checkpoint_period=100)
        station = attach_station(consortium)
        for _ in range(30):
            Client(station, mint_ops_simple(300))
        station.start_all()
        candidate = consortium.add_candidate(4, SmartCoin(minters=[MINTER]))
        consortium.sim.schedule(1.0, candidate.join)
        consortium.sim.run(until=8.0)
        assert candidate.active
        lag = (consortium.node(0).replica.last_decided
               - candidate.delivery.executed_cid)
        assert lag <= candidate.delivery.CATCHUP_LAG + 30, (
            f"joiner still lags by {lag} decisions")
        # Its chain matches the group's at the common height.
        common = min(candidate.chain.height, consortium.node(0).chain.height)
        if common > candidate.chain.base_height:
            assert (candidate.chain.get(common).digest()
                    == consortium.node(0).chain.get(common).digest())


class TestByzantineLeader:
    def test_equivocating_leader_cannot_fork(self):
        """A leader proposing two different batches for the same cid cannot
        make correct replicas decide differently."""
        from repro.consensus.messages import ProposeMsg, batch_wire_size
        from repro.crypto.hashing import hash_obj
        from repro.smr.requests import ClientRequest

        sim, network, view, replicas, apps = make_cluster(seed=208)
        station = station_with_clients(sim, network, lambda: view, 2,
                                       lambda i: kv_ops(f"c{i}", 10))
        station.start_all()

        def equivocate():
            # Byzantine leader 0 sends conflicting proposals for the next cid
            # to different replicas.
            leader = replicas[0]
            cid = leader.last_decided + 1
            batch_a = [ClientRequest(7777, 1, ("put", "evil-a", 1),
                                     size=100, signed=False)]
            batch_b = [ClientRequest(7777, 2, ("put", "evil-b", 2),
                                     size=100, signed=False)]
            msg_a = ProposeMsg(cid=cid, regency=0, batch=batch_a,
                               batch_hash=hash_obj("a"),
                               size=batch_wire_size(batch_a))
            msg_b = ProposeMsg(cid=cid, regency=0, batch=batch_b,
                               batch_hash=hash_obj("b"),
                               size=batch_wire_size(batch_b))
            network.send(0, 1, msg_a)
            network.send(0, 2, msg_b)
            network.send(0, 3, msg_a)

        sim.schedule(0.001, equivocate)
        sim.run(until=20.0)
        # Neither forged value can gather a quorum of 3 identical WRITEs for
        # a hash the replicas agree on, so safety holds: all correct logs
        # are identical.
        logs = [[d.batch_hash for d in r.delivery.log] for r in replicas[1:]]
        assert logs[0] == logs[1] == logs[2]

    def test_bad_accept_signatures_are_ignored(self):
        from repro.consensus.messages import AcceptMsg
        from repro.crypto.keys import Signature
        from repro.sim.trace import TraceLog

        trace = TraceLog()
        sim, network, view, replicas, apps = make_cluster(seed=209,
                                                          trace=trace)
        station = station_with_clients(sim, network, lambda: view, 1,
                                       lambda i: kv_ops("c", 5))
        station.start_all()

        def forge():
            forged = AcceptMsg(cid=replicas[1].last_decided + 1, regency=0,
                               batch_hash=b"whatever",
                               signature=Signature("deadbeef", b"junk"))
            network.send(0, 1, forged)

        sim.schedule(0.002, forge)
        sim.run(until=10.0)
        assert station.meter.total == 5
        assert len({a.state_digest() for a in apps}) == 1
