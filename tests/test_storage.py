"""Unit tests for the stable-storage substrate (sync/volatile semantics)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.sim.engine import Simulator
from repro.storage.disk import Disk, DiskConfig
from repro.storage.stable import STORAGE_FAULT_KINDS, AsyncFlusher, StableStore


class TestDisk:
    def test_sync_write_pays_latency(self):
        sim = Simulator()
        disk = Disk(sim, DiskConfig(sync_latency=0.01, bandwidth_bytes=1e6))
        done = []
        disk.write(10_000, sync=True, fn=lambda: done.append(sim.now))
        sim.run()
        assert done[0] == pytest.approx(0.01 + 0.01)  # latency + 10k/1e6

    def test_async_write_is_bandwidth_only(self):
        sim = Simulator()
        disk = Disk(sim, DiskConfig(sync_latency=0.01, bandwidth_bytes=1e6))
        done = []
        disk.write(10_000, sync=False, fn=lambda: done.append(sim.now))
        sim.run()
        assert done[0] == pytest.approx(0.01)

    def test_writes_queue_fifo(self):
        sim = Simulator()
        disk = Disk(sim, DiskConfig(sync_latency=0.0, bandwidth_bytes=1e6))
        order = []
        disk.write(1_000_000, False, order.append, 1)
        disk.write(0, False, order.append, 2)
        sim.run()
        assert order == [1, 2]

    def test_group_commit_economics(self):
        """One sync of 10 batches costs far less than 10 syncs of 1 batch —
        the Dura-SMaRt observation."""
        def total_time(writes, batch_bytes):
            sim = Simulator()
            disk = Disk(sim, DiskConfig(sync_latency=0.005, bandwidth_bytes=100e6))
            for _ in range(writes):
                disk.write(batch_bytes, sync=True)
            sim.run()
            return sim.now

        one_big = total_time(1, 10 * 100_000)
        ten_small = total_time(10, 100_000)
        assert ten_small > 3 * one_big

    def test_snapshot_write_uses_snapshot_bandwidth(self):
        sim = Simulator()
        disk = Disk(sim, DiskConfig(sync_latency=0.0, bandwidth_bytes=100e6,
                                    snapshot_bandwidth_bytes=10e6))
        done = []
        disk.write_snapshot(10_000_000, lambda: done.append(sim.now))
        sim.run()
        assert done[0] == pytest.approx(1.0)

    def test_bytes_and_sync_counters(self):
        sim = Simulator()
        disk = Disk(sim)
        disk.write(100, sync=True)
        disk.write(200, sync=False)
        sim.run()
        assert disk.bytes_written == 300
        assert disk.sync_count == 1


class TestStableStore:
    def test_append_is_volatile_until_sync(self):
        sim = Simulator()
        store = StableStore(sim)
        store.append("log", "entry", 100)
        assert store.read_log("log") == []
        assert store.volatile_length("log") == 1
        store.sync()
        sim.run()
        assert store.read_log("log") == ["entry"]
        assert store.volatile_length("log") == 0

    def test_crash_loses_unsynced_data(self):
        sim = Simulator()
        store = StableStore(sim)
        store.append("log", "stable", 100)
        store.sync()
        sim.run()
        store.append("log", "volatile", 100)
        store.crash()
        assert store.read_log("log") == ["stable"]

    def test_crash_during_sync_loses_in_flight_data(self):
        sim = Simulator()
        store = StableStore(sim)
        store.append("log", "x", 100)
        store.sync()
        # Crash before the disk completes the barrier.
        store.crash()
        # The in-flight sync still completes at the disk level; the data it
        # covered was already handed to the device, so it becomes stable —
        # matching a write that reached the controller before power loss.
        sim.run()
        assert store.read_log("log") in ([], ["x"])

    def test_sync_covers_only_prior_appends(self):
        sim = Simulator()
        store = StableStore(sim)
        store.append("log", "first", 100)
        store.sync()
        store.append("log", "second", 100)
        sim.run(max_events=2)
        # After the first sync completes, only "first" is stable.
        assert "second" not in store.read_log("log")

    def test_sync_callback_ordering(self):
        sim = Simulator()
        store = StableStore(sim)
        calls = []
        store.append("log", 1, 10)
        store.sync(calls.append, "first")
        store.append("log", 2, 10)
        store.sync(calls.append, "second")
        sim.run()
        assert calls == ["first", "second"]
        assert store.read_log("log") == [1, 2]

    def test_cells_follow_same_semantics(self):
        sim = Simulator()
        store = StableStore(sim)
        store.put("cell", "value", 50)
        assert store.read_cell("cell") is None
        store.sync()
        sim.run()
        assert store.read_cell("cell") == "value"
        assert store.read_cell("missing", "default") == "default"

    def test_snapshot_write(self):
        sim = Simulator()
        store = StableStore(sim)
        done = []
        store.write_snapshot("snap", {"state": 1}, 1_000_000,
                             lambda: done.append(sim.now))
        sim.run()
        assert store.read_cell("snap") == {"state": 1}
        assert done

    def test_corrupt_suffix_models_byzantine_owner(self):
        sim = Simulator()
        store = StableStore(sim)
        for index in range(5):
            store.append("log", index, 10)
        store.sync()
        sim.run()
        removed = store.corrupt_suffix("log", keep=2)
        assert [entry.payload for entry in removed] == [2, 3, 4]
        assert store.read_log("log") == [0, 1]

    def test_stable_bytes_accounting(self):
        sim = Simulator()
        store = StableStore(sim)
        store.append("log", "x", 100)
        store.put("cell", "y", 50)
        store.sync()
        sim.run()
        assert store.stable_bytes() == 150

    def test_negative_size_rejected(self):
        sim = Simulator()
        store = StableStore(sim)
        with pytest.raises(Exception):
            store.append("log", "x", -1)

    def test_negative_cell_size_rejected(self):
        sim = Simulator()
        store = StableStore(sim)
        with pytest.raises(StorageError):
            store.put("cell", "x", -1)

    def test_negative_snapshot_size_rejected(self):
        sim = Simulator()
        store = StableStore(sim)
        with pytest.raises(StorageError):
            store.write_snapshot("snap", {"state": 1}, -1)


def _stable_store(payloads):
    """A store with ``payloads`` appended to one synced log."""
    sim = Simulator()
    store = StableStore(sim)
    for payload in payloads:
        store.append("log", payload, 10)
    store.sync()
    sim.run()
    return store


class TestChecksums:
    def test_append_stamps_a_checksum(self):
        store = _stable_store([("txs", 1, "aa")])
        (entry,) = store.read_entries("log")
        assert entry.checksum
        assert store.verify_entry(entry)

    def test_checksum_survives_sync_round_trip(self):
        payloads = [("txs", k, [("client", k)], f"h{k}") for k in range(8)]
        store = _stable_store(payloads)
        entries = store.read_entries("log")
        assert [e.payload for e in entries] == payloads
        assert all(store.verify_entry(e) for e in entries)

    def test_tampered_payload_fails_verification(self):
        store = _stable_store([("txs", 1, "aa"), ("txs", 2, "bb")])
        store.read_entries("log")[1].payload = ("txs", 2, "cc")
        entries = store.read_entries("log")
        assert store.verify_entry(entries[0])
        assert not store.verify_entry(entries[1])

    def test_verify_cell(self):
        sim = Simulator()
        store = StableStore(sim)
        store.put("cell", {"state": 1}, 10)
        store.sync()
        sim.run()
        assert store.verify_cell("cell")
        assert store.verify_cell("absent")  # vacuously valid
        store.inject_fault("bit-rot", random.Random(7), cell="cell")
        assert not store.verify_cell("cell")


class TestFaultInjection:
    def test_bitrot_corrupts_one_entry_and_leaves_checksum_stale(self):
        store = _stable_store([("txs", k, f"h{k}") for k in range(6)])
        applied = store.inject_fault("bit-rot", random.Random(3), index=4)
        assert applied["applied"] and applied["index"] == 4
        entries = store.read_entries("log")
        assert [store.verify_entry(e) for e in entries] == [
            True, True, True, True, False, True]

    def test_bitrot_on_empty_store_is_a_noop(self):
        sim = Simulator()
        store = StableStore(sim)
        assert store.inject_fault(
            "bit-rot", random.Random(0))["applied"] is False

    def test_torn_write_commits_only_a_prefix(self):
        sim = Simulator()
        store = StableStore(sim)
        for k in range(5):
            store.append("log", k, 10)
        store.inject_fault("torn-write", random.Random(1), keep=2)
        store.sync()
        sim.run()
        assert store.read_log("log") == [0, 1]
        assert store.torn_entries_lost == 3
        # The fault is one-shot: the next sync is honest.
        store.append("log", 5, 10)
        store.sync()
        sim.run()
        assert store.read_log("log") == [0, 1, 5]

    def test_fsync_lie_reports_success_but_keeps_data_volatile(self):
        sim = Simulator()
        store = StableStore(sim)
        store.append("log", "x", 10)
        store.inject_fault("fsync-lie", random.Random(1))
        acked = []
        store.sync(acked.append, "ok")
        sim.run()
        assert acked == ["ok"]           # the barrier claimed success...
        assert store.read_log("log") == []  # ...but nothing is stable
        assert store.volatile_length("log") == 1
        store.sync()                     # an honest sync still heals it
        sim.run()
        assert store.read_log("log") == ["x"]

    def test_gray_disk_inflates_sync_latency_within_window(self):
        def sync_time(degraded):
            sim = Simulator()
            store = StableStore(sim)
            if degraded:
                store.inject_fault("gray-disk", random.Random(1),
                                   factor=10.0, duration=5.0)
            store.append("log", "x", 100)
            done = []
            store.sync(lambda: done.append(sim.now))
            sim.run()
            return done[0]

        assert sync_time(True) > 5 * sync_time(False)

    def test_gray_disk_counts_a_period(self):
        sim = Simulator()
        store = StableStore(sim)
        store.inject_fault("gray-disk", random.Random(1), factor=2.0,
                           duration=0.1)
        assert store.disk.gray_periods == 1

    def test_unknown_kind_rejected(self):
        sim = Simulator()
        store = StableStore(sim)
        with pytest.raises(StorageError, match="unknown storage fault"):
            store.inject_fault("head-crash", random.Random(1))
        assert "head-crash" not in STORAGE_FAULT_KINDS


class TestVerifiedPrefixProperty:
    @settings(max_examples=40, deadline=None)
    @given(n=st.integers(min_value=1, max_value=12),
           index=st.integers(min_value=0, max_value=11),
           seed=st.integers(min_value=0, max_value=2**16))
    def test_first_invalid_entry_is_exactly_the_corrupted_one(
            self, n, index, seed):
        """For any corrupted index and any corruption seed, the longest
        checksum-valid prefix ends exactly at the damaged record — what
        verified replay recovers."""
        index %= n
        payloads = [("txs", k, [("client", k, f"op-{k}")], k * 1.5)
                    for k in range(n)]
        store = _stable_store(payloads)
        applied = store.inject_fault(
            "bit-rot", random.Random(seed), index=index)
        assert applied["applied"]
        valid = 0
        for entry in store.read_entries("log"):
            if not store.verify_entry(entry):
                break
            valid += 1
        assert valid == index


class TestAsyncFlusher:
    def test_flusher_periodically_syncs(self):
        sim = Simulator()
        store = StableStore(sim)
        flusher = AsyncFlusher(store, interval=0.1)
        flusher.start()
        store.append("log", "a", 100)
        sim.run(until=0.5)
        assert store.read_log("log") == ["a"]
        flusher.stop()

    def test_lambda_persistence_window(self):
        """Data appended just before a crash (within one flush interval) is
        lost — λ-Persistence."""
        sim = Simulator()
        store = StableStore(sim)
        flusher = AsyncFlusher(store, interval=0.1)
        flusher.start()
        store.append("log", "early", 100)
        sim.run(until=0.25)
        store.append("log", "late", 100)
        flusher.stop()
        store.crash()
        assert store.read_log("log") == ["early"]

    def test_stop_prevents_further_flushes(self):
        sim = Simulator()
        store = StableStore(sim)
        flusher = AsyncFlusher(store, interval=0.1)
        flusher.start()
        flusher.stop()
        store.append("log", "x", 100)
        sim.run(until=1.0)
        assert store.read_log("log") == []

    def test_non_positive_interval_rejected(self):
        sim = Simulator()
        store = StableStore(sim)
        with pytest.raises(StorageError, match="interval"):
            AsyncFlusher(store, interval=0.0)
        with pytest.raises(StorageError, match="interval"):
            AsyncFlusher(store, interval=-0.1)

    def test_start_is_idempotent(self):
        sim = Simulator()
        store = StableStore(sim)
        flusher = AsyncFlusher(store, interval=0.1)
        flusher.start()
        flusher.start()
        store.append("log", "x", 10)
        sim.run(until=0.3)
        assert store.read_log("log") == ["x"]
