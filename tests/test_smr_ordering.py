"""End-to-end ordering tests for the Mod-SMaRt cluster."""

import pytest

from repro.clients.client import Client, ClientStation, OpSpec
from repro.config import SMRConfig, VerificationMode
from repro.sim.trace import TraceLog

from tests.helpers import kv_ops, make_cluster, station_with_clients


def drive(sim, network, view, n_clients=4, ops_per_client=15, until=30.0):
    station = station_with_clients(
        sim, network, lambda: view, n_clients,
        lambda i: kv_ops(f"c{i}", ops_per_client))
    station.start_all()
    sim.run(until=until)
    return station


class TestTotalOrder:
    def test_all_replicas_decide_same_sequence(self):
        sim, network, view, replicas, apps = make_cluster(seed=2)
        station = drive(sim, network, view)
        assert station.meter.total == 60
        logs = [[(d.cid, d.batch_hash) for d in r.delivery.log]
                for r in replicas]
        assert logs[0] == logs[1] == logs[2] == logs[3]
        assert [cid for cid, _ in logs[0]] == list(range(len(logs[0])))

    def test_states_converge(self):
        sim, network, view, replicas, apps = make_cluster(seed=3)
        drive(sim, network, view)
        digests = {app.state_digest() for app in apps}
        assert len(digests) == 1

    def test_no_request_executed_twice(self):
        sim, network, view, replicas, apps = make_cluster(seed=4)
        drive(sim, network, view, n_clients=3, ops_per_client=10)
        seen = set()
        for decision in replicas[0].delivery.log:
            for request in decision.batch:
                assert request.key not in seen, "duplicate execution"
                seen.add(request.key)
        assert len(seen) == 30

    def test_client_resubmission_deduplicated(self):
        sim, network, view, replicas, apps = make_cluster(seed=5)
        station = station_with_clients(sim, network, lambda: view, 1,
                                       lambda i: kv_ops("dup", 5))
        # Aggressive resend: every 0.05 s.
        station.resend_timeout = 0.05
        station.start_all()
        sim.run(until=10.0)
        executed = [request.key for decision in replicas[0].delivery.log
                    for request in decision.batch]
        assert len(executed) == len(set(executed)) == 5

    def test_sequential_verification_orders_correctly(self):
        sim, network, view, replicas, apps = make_cluster(
            seed=6, verification=VerificationMode.SEQUENTIAL)
        station = drive(sim, network, view, n_clients=2, ops_per_client=8)
        assert station.meter.total == 16
        assert len({app.state_digest() for app in apps}) == 1

    def test_unsigned_requests_supported(self):
        sim, network, view, replicas, apps = make_cluster(
            seed=7, verification=VerificationMode.NONE)

        def unsigned_ops(i):
            for spec in kv_ops(f"u{i}", 6):
                spec.signed = False
                yield spec

        station = station_with_clients(sim, network, lambda: view, 2,
                                       unsigned_ops)
        station.start_all()
        sim.run(until=10.0)
        assert station.meter.total == 12


class TestBatching:
    def test_large_batches_form_under_load(self):
        sim, network, view, replicas, apps = make_cluster(seed=8)
        station = station_with_clients(
            sim, network, lambda: view, 200,
            lambda i: kv_ops(f"b{i}", 5))
        station.start_all()
        sim.run(until=20.0)
        sizes = [len(d.batch) for d in replicas[0].delivery.log]
        assert max(sizes) > 50  # batching kicked in

    def test_batch_size_limit_respected(self):
        config = SMRConfig(n=4, f=1, batch_size=16)
        sim, network, view, replicas, apps = make_cluster(seed=9,
                                                          config=config)
        station = station_with_clients(sim, network, lambda: view, 60,
                                       lambda i: kv_ops(f"s{i}", 3))
        station.start_all()
        sim.run(until=20.0)
        sizes = [len(d.batch) for d in replicas[0].delivery.log]
        assert sizes and max(sizes) <= 16

    def test_flow_control_limits_backlog(self):
        from repro.apps.naive import NaiveBlockchainDelivery
        from repro.config import StorageMode
        config = SMRConfig(n=4, f=1, max_pending_decisions=2)
        sim, network, view, replicas, apps = make_cluster(
            seed=10, config=config,
            delivery_factory=lambda app: NaiveBlockchainDelivery(app))
        max_backlog = [0]

        def watch():
            max_backlog[0] = max(max_backlog[0],
                                 replicas[0].delivery.backlog)
            sim.schedule(0.01, watch)

        sim.schedule(0.0, watch)
        station = station_with_clients(sim, network, lambda: view, 100,
                                       lambda i: kv_ops(f"f{i}", 4))
        station.start_all()
        sim.run(until=15.0)
        assert station.meter.total == 400
        # Backlog never exceeds the bound + the one being proposed.
        assert max_backlog[0] <= 3


class TestTrace:
    def test_trace_records_proposals_and_decisions(self):
        trace = TraceLog()
        sim, network, view, replicas, apps = make_cluster(seed=11,
                                                          trace=trace)
        drive(sim, network, view, n_clients=1, ops_per_client=3)
        assert trace.count("propose") >= 1
        decides = trace.of_kind("decide")
        assert len(decides) >= 4  # at least one decision on each replica
