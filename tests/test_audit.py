"""The online safety auditor (repro.obs v2) catches seeded violations.

Each test seeds one concrete attack or failure against a real run and
asserts that the named invariant fires with the event context that exposes
it: a forked block (``no-fork``), a lost certified suffix after a full
crash (``persistence``), and a certificate carrying a retired view's keys
(``retired-key``).  A clean Table-row run must produce zero violations.
"""

import pytest

from repro.bench.harness import Scenario, run
from repro.clients.client import Client
from repro.crypto.hashing import hash_obj
from repro.ledger import Block, BlockBody, BlockHeader, TxRecord
from repro.obs.audit import (
    INVARIANTS,
    AuditError,
    SafetyAuditor,
    audit_event_log,
)
from repro.obs.events import ProtocolEvent

from tests.helpers import attach_station, make_consortium, mint_ops_simple


def _audited_consortium(seed: int):
    """A consortium with event recording + a live auditor attached."""
    consortium = make_consortium(seed=seed, checkpoint_period=100)
    auditor = SafetyAuditor().attach(consortium.sim.obs)
    return consortium, auditor


def _run_traffic(consortium, txs: int = 12, until: float = 6.0):
    station = attach_station(consortium)
    Client(station, mint_ops_simple(txs))
    station.start_all()
    consortium.sim.run(until=until)
    return station


class TestCleanRun:
    def test_clean_table_row_has_zero_violations(self):
        result = run(Scenario(system="smartchain", clients=300, duration=2.0,
                              seed=77, observe=True, audit=True))
        audit = result.report["audit"]
        assert audit["violations"] == []
        assert audit["invariants"] == list(INVARIANTS)
        assert audit["events_checked"] == len(result.handle.obs.events)
        assert audit["events_checked"] > 0

    def test_offline_sweep_of_recorded_log_is_clean(self):
        result = run(Scenario(system="smartchain", clients=300, duration=2.0,
                              seed=77, observe=True, audit=True))
        auditor = audit_event_log(result.handle.obs.events)
        assert auditor.ok
        auditor.raise_if_violated()  # no-op when clean

    def test_audit_error_carries_every_violation(self):
        auditor = SafetyAuditor()
        auditor._flag("agreement", "seeded", ProtocolEvent(
            time=1.0, seq=0, kind="decide", node=0, fields={}))
        with pytest.raises(AuditError) as excinfo:
            auditor.raise_if_violated()
        assert "1 safety violation" in str(excinfo.value)
        assert excinfo.value.violations[0].invariant == "agreement"


class TestForkDetection:
    def test_tampered_block_fires_no_fork(self):
        consortium, auditor = _audited_consortium(seed=7)
        _run_traffic(consortium)
        chain = consortium.node(0).delivery.chain
        assert chain.height >= 2
        assert auditor.ok, [str(v) for v in auditor.violations]

        # A Byzantine node presents a different block at an agreed height.
        victim = chain.get(1)
        evil_tx = TxRecord(6666, 1, ("mint", "attacker", ((10**9, 1),)), 180)
        body = BlockBody(
            consensus_id=victim.body.consensus_id,
            transactions=[evil_tx],
            results=[(6666, 1, "('minted', ('loot',))", b"ok")],
            batch_hash=hash_obj(("forged-batch",)),
        )
        header = BlockHeader(
            number=victim.number,
            last_reconfig=victim.header.last_reconfig,
            last_checkpoint=victim.header.last_checkpoint,
            view_id=victim.header.view_id,
            hash_transactions=body.hash_transactions(),
            hash_results=body.hash_results(),
            hash_last_block=victim.header.hash_last_block,
        )
        forged = Block(header, body)
        assert forged.digest() != victim.digest()
        auditor.ingest_chain(3, [forged], now=consortium.sim.now)

        forks = [v for v in auditor.violations if v.invariant == "no-fork"]
        assert forks
        violation = forks[0]
        assert violation.event.kind == "block-append"
        assert violation.event.node == 3
        assert violation.context["block"] == victim.number
        assert (violation.context["conflicting_digest"]
                == forged.digest().hex())
        assert (violation.context["first_digest"] == victim.digest().hex())


class TestPersistenceAudit:
    def test_lost_certified_suffix_fires_persistence(self):
        consortium, auditor = _audited_consortium(seed=11)
        _run_traffic(consortium)
        sim = consortium.sim
        certified = [b.number for b in consortium.node(0).delivery.chain
                     if b.certificate is not None]
        assert certified, "strong/sync run should certify blocks"
        assert auditor.ok, [str(v) for v in auditor.violations]

        # Every owner truncates its own stable chain log (Byzantine storage
        # loss), then the whole group crashes and comes back: certified
        # blocks are gone from every disk — exactly what 0-Persistence
        # forbids.
        for node in consortium.nodes.values():
            node.replica.store.corrupt_suffix("chain", keep=1)
        for node in consortium.nodes.values():
            node.crash()
        sim.run(until=sim.now + 0.5)
        for node in consortium.nodes.values():
            node.recover()
        sim.run(until=sim.now + 5.0)

        lost = [v for v in auditor.violations if v.invariant == "persistence"]
        assert lost
        violation = lost[0]
        assert violation.event.kind == "recovering"
        assert violation.context["lost_blocks"]
        assert violation.context["group_max_height"] < max(certified)
        assert violation.context["certified_max"] == max(certified)
        assert set(violation.context["recovered_heights"]) == set(
            consortium.nodes)

    def test_clean_full_crash_recovery_has_no_violation(self):
        consortium, auditor = _audited_consortium(seed=11)
        _run_traffic(consortium)
        sim = consortium.sim
        # Same full crash, but disks are intact: the group recovers every
        # certified block and the auditor stays quiet.
        for node in consortium.nodes.values():
            node.crash()
        sim.run(until=sim.now + 0.5)
        for node in consortium.nodes.values():
            node.recover()
        sim.run(until=sim.now + 5.0)
        lost = [v for v in auditor.violations if v.invariant == "persistence"]
        assert lost == [], [str(v) for v in lost]


class TestRetiredKeyAudit:
    def test_stale_view_certificate_fires_retired_key(self):
        consortium, auditor = _audited_consortium(seed=51)
        station = attach_station(consortium)
        Client(station, mint_ops_simple(12))
        station.start_all()
        sim = consortium.sim

        def exclude():
            for nid in (0, 1, 2):
                consortium.node(nid).vote_exclude(3)

        sim.schedule(2.0, exclude)
        Client(station, mint_ops_simple(10))
        sim.run(until=12.0)
        assert consortium.node(0).view.view_id == 1
        assert auditor.ok, [str(v) for v in auditor.violations]

        reconfig_block = consortium.node(0).delivery.last_reconfig
        assert reconfig_block >= 1
        target = reconfig_block + 1
        assert auditor.view_at_height(target) == 1

        # An adversary who compromised the excluded member presents a
        # certificate for a post-reconfiguration block carrying view 0 —
        # only the erased view-0 consensus keys could have signed it.
        auditor.on_event(ProtocolEvent(
            time=sim.now, seq=10**9, kind="persist-certificate", node=3,
            fields={"block": target,
                    "digest": hash_obj(("forged-extension", target)).hex(),
                    "view": 0, "signers": [1, 2, 3]}))

        stale = [v for v in auditor.violations
                 if v.invariant == "retired-key"]
        assert stale
        violation = stale[0]
        assert violation.event.kind == "persist-certificate"
        assert violation.context["block"] == target
        assert violation.context["certificate_view"] == 0
        assert violation.context["expected_view"] == 1

    def test_view_monotonicity_fires_on_regression(self):
        auditor = SafetyAuditor()
        for view in (1, 2):
            auditor.on_event(ProtocolEvent(
                time=float(view), seq=view, kind="view-change", node=0,
                fields={"view": view, "members": [0, 1, 2, 3]}))
        assert auditor.ok
        auditor.on_event(ProtocolEvent(
            time=3.0, seq=3, kind="view-change", node=0,
            fields={"view": 1, "members": [0, 1, 2, 3]}))
        backsteps = [v for v in auditor.violations
                     if v.invariant == "view-monotonicity"]
        assert backsteps
        assert backsteps[0].context == {"previous_view": 2,
                                        "installed_view": 1}
