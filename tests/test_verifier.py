"""Third-party chain verification tests — the self-verifiability requirement.

These tests run a real consortium, take the serialized chain of ONE replica
(no shared objects) and verify it end to end; then they tamper with every
part of a block and check the verifier catches each manipulation.
"""

import pytest

from repro.config import PersistenceVariant, StorageMode
from repro.errors import VerificationError
from repro.crypto.hashing import hash_obj
from repro.ledger import Block, ChainVerifier

from tests.helpers import make_consortium, run_coin_traffic


@pytest.fixture(scope="module")
def strong_chain():
    """A verified strong-variant run shared by the tamper tests."""
    consortium = make_consortium(seed=11, checkpoint_period=5)
    run_coin_traffic(consortium, txs=30)
    records = consortium.node(1).chain_records()
    assert len(records) >= 5
    return consortium, records


def verify(consortium, records, **kwargs):
    kwargs.setdefault("uncertified_tail", 1)
    verifier = ChainVerifier(consortium.registry, consortium.genesis, **kwargs)
    return verifier.verify_records(records)


class TestValidChains:
    def test_full_chain_verifies(self, strong_chain):
        consortium, records = strong_chain
        report = verify(consortium, records)
        assert report.blocks_verified == len(records)
        assert report.total_transactions >= 30
        assert report.final_view.view_id == 0

    def test_all_replicas_serve_equivalent_history(self, strong_chain):
        consortium, _ = strong_chain
        heads = set()
        for node in consortium.nodes.values():
            report = verify(consortium, node.chain_records())
            heads.add(report.head_digest)
        assert len(heads) == 1

    def test_weak_mode_checks_decision_proofs(self):
        consortium = make_consortium(seed=12,
                                     variant=PersistenceVariant.WEAK)
        run_coin_traffic(consortium, txs=20)
        records = consortium.node(0).chain_records()
        report = verify(consortium, records, require_certificates=False)
        assert report.blocks_verified == len(records)

    def test_weak_chain_fails_strict_certificate_check(self):
        consortium = make_consortium(seed=12,
                                     variant=PersistenceVariant.WEAK)
        run_coin_traffic(consortium, txs=20)
        records = consortium.node(0).chain_records()
        with pytest.raises(VerificationError, match="certificate"):
            verify(consortium, records, uncertified_tail=0)

    def test_empty_chain_verifies(self):
        consortium = make_consortium(seed=13)
        report = verify(consortium, [])
        assert report.blocks_verified == 0

    def test_checkpoint_pointers_tracked(self):
        consortium = make_consortium(seed=14, checkpoint_period=3)
        run_coin_traffic(consortium, txs=30)
        records = consortium.node(0).chain_records()
        report = verify(consortium, records)
        assert report.checkpoints_referenced >= 1


def tamper(records, index, fn):
    """Return records with block ``index`` rewritten by ``fn(block)``."""
    blocks = [Block.from_record(r) for r in records]
    fn(blocks[index])
    return [b.to_record() for b in blocks]


class TestTamperDetection:
    def test_modified_transaction_detected(self, strong_chain):
        consortium, records = strong_chain

        def hack(block):
            tx = block.body.transactions[0]
            block.body.transactions[0] = type(tx)(
                tx.client_id, tx.req_id, ("mint", "thief", ((10**9, 1),)),
                tx.size, tx.special)

        with pytest.raises(VerificationError):
            verify(consortium, tamper(records, 1, hack))

    def test_modified_result_detected(self, strong_chain):
        consortium, records = strong_chain

        def hack(block):
            block.body.results[0] = (1, 1, "('minted', ('stolen',))", b"")

        with pytest.raises(VerificationError):
            verify(consortium, tamper(records, 1, hack))

    def test_removed_block_detected(self, strong_chain):
        consortium, records = strong_chain
        with pytest.raises(VerificationError):
            verify(consortium, records[:1] + records[2:])

    def test_reordered_blocks_detected(self, strong_chain):
        consortium, records = strong_chain
        swapped = list(records)
        swapped[1], swapped[2] = swapped[2], swapped[1]
        with pytest.raises(VerificationError):
            verify(consortium, swapped)

    def test_forged_header_field_detected(self, strong_chain):
        consortium, records = strong_chain

        def hack(block):
            header = block.header
            block.header = type(header)(
                header.number, header.last_reconfig, 99, header.view_id,
                header.hash_transactions, header.hash_results,
                header.hash_last_block)

        with pytest.raises(VerificationError):
            verify(consortium, tamper(records, 1, hack))

    def test_stripped_certificate_detected(self, strong_chain):
        consortium, records = strong_chain
        with pytest.raises(VerificationError, match="certificate"):
            verify(consortium, tamper(records, 1,
                                      lambda b: setattr(b, "certificate",
                                                        None)))

    def test_certificate_with_forged_signatures_detected(self, strong_chain):
        consortium, records = strong_chain
        attacker = consortium.registry.generate("attacker")

        def hack(block):
            digest = block.certificate.header_digest
            for replica_id in list(block.certificate.signatures):
                block.certificate.signatures[replica_id] = \
                    attacker.sign(digest)

        with pytest.raises(VerificationError):
            verify(consortium, tamper(records, 1, hack))

    def test_certificate_below_quorum_detected(self, strong_chain):
        consortium, records = strong_chain

        def hack(block):
            sigs = block.certificate.signatures
            while len(sigs) > 2:
                sigs.pop(next(iter(sigs)))

        with pytest.raises(VerificationError):
            verify(consortium, tamper(records, 1, hack))

    def test_certificate_moved_between_blocks_detected(self, strong_chain):
        consortium, records = strong_chain
        blocks = [Block.from_record(r) for r in records]
        blocks[1].certificate = blocks[2].certificate
        with pytest.raises(VerificationError):
            verify(consortium, [b.to_record() for b in blocks])

    def test_uncertified_tail_tolerance_is_bounded(self, strong_chain):
        consortium, records = strong_chain
        blocks = [Block.from_record(r) for r in records]
        blocks[-1].certificate = None
        blocks[-2].certificate = None
        stripped = [b.to_record() for b in blocks]
        # Tail of 2 allowed -> passes; tail of 1 -> fails.
        verify(consortium, stripped, uncertified_tail=2)
        with pytest.raises(VerificationError):
            verify(consortium, stripped, uncertified_tail=1)


class TestForkAnalysis:
    def test_identical_chains_show_no_fork(self, strong_chain):
        consortium, records = strong_chain
        verifier = ChainVerifier(consortium.registry, consortium.genesis)
        assert verifier.find_fork(records, records) is None

    def test_diverging_chains_located(self, strong_chain):
        consortium, records = strong_chain

        def fork_header(block):
            header = block.header
            block.header = type(header)(
                header.number, header.last_reconfig, header.last_checkpoint,
                header.view_id, header.hash_transactions,
                hash_obj(("forged-results",)), header.hash_last_block)

        forked = tamper(records, 2, fork_header)
        verifier = ChainVerifier(consortium.registry, consortium.genesis)
        evidence = verifier.find_fork(records, forked)
        assert evidence is not None
        assert evidence.number == 3  # block index 2 -> number 3
        assert evidence.digest_a != evidence.digest_b
