"""Unit tests for blocks, the chain container and the genesis block."""

import pytest

from repro.crypto.hashing import EMPTY_DIGEST, hash_obj
from repro.crypto.keys import KeyRegistry
from repro.errors import LedgerError
from repro.ledger.block import (
    Block,
    BlockBody,
    BlockHeader,
    Certificate,
    KeyAnnouncement,
    TxRecord,
)
from repro.ledger.chain import Blockchain
from repro.ledger.genesis import GenesisBlock
from repro.smr.views import View


def make_genesis(registry=None, n=4, z=10):
    registry = registry or KeyRegistry(1)
    view = View(0, tuple(range(n)))
    permanent = {}
    announcements = []
    for member in view.members:
        perm = registry.generate(f"perm-{member}")
        cons = registry.generate(f"cons-{member}")
        permanent[member] = perm.public
        payload = hash_obj(("keyann", 0, member, cons.public))
        announcements.append(KeyAnnouncement(0, member, cons.public,
                                             perm.sign(payload)))
    return GenesisBlock(view=view, permanent_keys=permanent,
                        key_announcements=announcements, checkpoint_period=z)


def make_block(number, prev_hash, txs=2, view_id=0, last_reconfig=-1,
               last_checkpoint=-1):
    records = [TxRecord(1000 + i, number * 100 + i, ("put", f"k{i}", i), 200)
               for i in range(txs)]
    results = [(r.client_id, r.req_id, "ok", hash_obj(("res", r.req_id)))
               for r in records]
    body = BlockBody(consensus_id=number - 1, transactions=records,
                     results=results, batch_hash=hash_obj(("batch", number)))
    header = BlockHeader(
        number=number, last_reconfig=last_reconfig,
        last_checkpoint=last_checkpoint, view_id=view_id,
        hash_transactions=body.hash_transactions(),
        hash_results=body.hash_results(),
        hash_last_block=prev_hash,
    )
    return Block(header, body)


class TestBlockStructures:
    def test_tx_record_roundtrip(self):
        record = TxRecord(7, 3, ("spend", "a", ("c",), (("b", 5),)), 310, "")
        assert TxRecord.from_record(record.to_record()) == record

    def test_header_roundtrip_and_digest_stability(self):
        block = make_block(1, EMPTY_DIGEST)
        restored = BlockHeader.from_record(block.header.to_record())
        assert restored == block.header
        assert restored.digest() == block.header.digest()

    def test_header_digest_changes_with_any_field(self):
        base = make_block(1, EMPTY_DIGEST).header
        variations = [
            BlockHeader(2, base.last_reconfig, base.last_checkpoint,
                        base.view_id, base.hash_transactions,
                        base.hash_results, base.hash_last_block),
            BlockHeader(base.number, 5, base.last_checkpoint, base.view_id,
                        base.hash_transactions, base.hash_results,
                        base.hash_last_block),
            BlockHeader(base.number, base.last_reconfig, base.last_checkpoint,
                        1, base.hash_transactions, base.hash_results,
                        base.hash_last_block),
        ]
        for other in variations:
            assert other.digest() != base.digest()

    def test_block_roundtrip_with_certificate_and_proof(self):
        registry = KeyRegistry(1)
        block = make_block(1, EMPTY_DIGEST)
        digest = block.digest()
        cert = Certificate(1, digest, 0)
        for member in range(3):
            key = registry.generate(f"c{member}")
            cert.add(member, key.sign(digest))
        block.certificate = cert
        block.consensus_proof[0] = registry.generate("p").sign(b"proof")
        restored = Block.from_record(block.to_record())
        assert restored.digest() == block.digest()
        assert set(restored.certificate.signatures) == {0, 1, 2}
        assert 0 in restored.consensus_proof
        restored.validate_body()

    def test_validate_body_detects_tampered_transactions(self):
        block = make_block(1, EMPTY_DIGEST)
        record = block.to_record()
        header_rec, body_rec, cert, proof = record
        cid, txs, results, batch_hash, anns, new_view = body_rec
        tampered_tx = list(txs[0])
        tampered_tx[2] = ("put", "EVIL", 999)
        tampered = (cid, (tuple(tampered_tx),) + txs[1:], results,
                    batch_hash, anns, new_view)
        forged = Block.from_record((header_rec, tampered, cert, proof))
        with pytest.raises(LedgerError):
            forged.validate_body()

    def test_validate_body_detects_tampered_results(self):
        block = make_block(1, EMPTY_DIGEST)
        block.body.results[0] = (9, 9, "FORGED", b"x")
        with pytest.raises(LedgerError):
            block.validate_body()

    def test_serialized_bytes_positive_and_monotone(self):
        small = make_block(1, EMPTY_DIGEST, txs=1)
        large = make_block(1, EMPTY_DIGEST, txs=50)
        assert 0 < small.serialized_bytes() < large.serialized_bytes()

    def test_key_announcement_roundtrip(self):
        registry = KeyRegistry(1)
        perm = registry.generate("perm")
        ann = KeyAnnouncement(2, 7, "pubkey", perm.sign(b"payload"))
        assert KeyAnnouncement.from_record(ann.to_record()) == ann


class TestBlockchain:
    def test_append_and_lookup(self):
        genesis = make_genesis()
        chain = Blockchain(genesis)
        b1 = make_block(1, genesis.hash_for_block_one)
        chain.append(b1)
        b2 = make_block(2, b1.digest())
        chain.append(b2)
        assert chain.height == 2
        assert chain.get(1) is b1
        assert chain.head() is b2
        assert chain.head_digest() == b2.digest()

    def test_wrong_number_rejected(self):
        genesis = make_genesis()
        chain = Blockchain(genesis)
        with pytest.raises(LedgerError):
            chain.append(make_block(5, genesis.hash_for_block_one))

    def test_broken_hash_chain_rejected(self):
        genesis = make_genesis()
        chain = Blockchain(genesis)
        chain.append(make_block(1, genesis.hash_for_block_one))
        with pytest.raises(LedgerError):
            chain.append(make_block(2, b"\x00" * 32))

    def test_records_roundtrip(self):
        genesis = make_genesis()
        chain = Blockchain(genesis)
        prev = genesis.hash_for_block_one
        for number in range(1, 6):
            block = make_block(number, prev)
            chain.append(block)
            prev = block.digest()
        restored = Blockchain.from_records(genesis, chain.to_records())
        assert restored.height == 5
        assert restored.head_digest() == chain.head_digest()

    def test_truncate_returns_dropped(self):
        genesis = make_genesis()
        chain = Blockchain(genesis)
        prev = genesis.hash_for_block_one
        for number in range(1, 6):
            block = make_block(number, prev)
            chain.append(block)
            prev = block.digest()
        dropped = chain.truncate(3)
        assert [b.number for b in dropped] == [4, 5]
        assert chain.height == 3

    def test_suffix_chain(self):
        genesis = make_genesis()
        full = Blockchain(genesis)
        prev = genesis.hash_for_block_one
        blocks = []
        for number in range(1, 7):
            block = make_block(number, prev)
            blocks.append(block)
            full.append(block)
            prev = block.digest()
        suffix = Blockchain.from_suffix(genesis, 3, blocks[2].digest(),
                                        blocks[3:])
        assert suffix.height == 6
        assert suffix.base_height == 3
        assert suffix.get(5).number == 5
        with pytest.raises(LedgerError):
            suffix.get(2)  # not held locally
        assert [b.number for b in suffix.blocks(start=1)] == [4, 5, 6]

    def test_iteration_and_len(self):
        genesis = make_genesis()
        chain = Blockchain(genesis)
        chain.append(make_block(1, genesis.hash_for_block_one))
        assert len(chain) == 1
        assert [b.number for b in chain] == [1]


class TestGenesis:
    def test_roundtrip(self):
        genesis = make_genesis()
        restored = GenesisBlock.from_record(genesis.to_record())
        assert restored.view == genesis.view
        assert restored.permanent_keys == genesis.permanent_keys
        assert restored.checkpoint_period == genesis.checkpoint_period
        assert restored.digest() == genesis.digest()

    def test_missing_permanent_key_rejected(self):
        registry = KeyRegistry(1)
        view = View(0, (0, 1))
        with pytest.raises(LedgerError):
            GenesisBlock(view=view, permanent_keys={0: "only-one"},
                         key_announcements=[], checkpoint_period=10)

    def test_negative_checkpoint_period_rejected(self):
        genesis = make_genesis()
        with pytest.raises(LedgerError):
            GenesisBlock(view=genesis.view,
                         permanent_keys=genesis.permanent_keys,
                         key_announcements=genesis.key_announcements,
                         checkpoint_period=-1)

    def test_digest_sensitive_to_members(self):
        a = make_genesis(KeyRegistry(1), n=4)
        b = make_genesis(KeyRegistry(1), n=7)
        assert a.digest() != b.digest()

    def test_hash_for_block_one_is_empty_digest(self):
        assert make_genesis().hash_for_block_one == EMPTY_DIGEST
