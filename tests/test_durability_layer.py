"""Dura-SMaRt durability layer and naive app-level blockchain tests."""

import pytest

from repro.apps.naive import NaiveBlockchainDelivery
from repro.apps.smartcoin import SmartCoin
from repro.config import SMRConfig, StorageMode
from repro.smr.durability import DuraSmartDelivery

from tests.helpers import kv_ops, make_cluster, station_with_clients


def dura_cluster(storage=StorageMode.SYNC, seed=1, checkpoint_every=0,
                 config=None):
    return make_cluster(
        seed=seed,
        config=config,
        delivery_factory=lambda app: DuraSmartDelivery(
            app, storage, checkpoint_every=checkpoint_every))


class TestDuraSmart:
    def test_replies_only_after_stable_write(self):
        sim, network, view, replicas, apps = dura_cluster(seed=101)
        station = station_with_clients(sim, network, lambda: view, 2,
                                       lambda i: kv_ops(f"c{i}", 5))
        station.start_all()
        sim.run(until=10.0)
        assert station.meter.total == 10
        # Everything acknowledged is in the stable log.
        assert replicas[0].store.log_length(DuraSmartDelivery.LOG) >= 1

    def test_group_commit_accumulates_under_bursts(self):
        config = SMRConfig(n=4, f=1, batch_size=4, max_pending_decisions=10)
        sim, network, view, replicas, apps = dura_cluster(seed=102,
                                                          config=config)
        station = station_with_clients(sim, network, lambda: view, 40,
                                       lambda i: kv_ops(f"g{i}", 5))
        station.start_all()
        sim.run(until=15.0)
        groups = replicas[0].delivery.group_sizes
        assert station.meter.total == 200
        assert max(groups) > 1, "group commit never batched"

    def test_recovery_replays_stable_log(self):
        sim, network, view, replicas, apps = dura_cluster(seed=103)
        station = station_with_clients(sim, network, lambda: view, 2,
                                       lambda i: kv_ops(f"r{i}", 10))
        station.start_all()
        sim.run(until=5.0)
        target = apps[1].state_digest()
        replica = replicas[1]
        replica.crash()
        recovered_cid = replica.delivery.recover_local()
        assert recovered_cid >= 0
        assert apps[1].state_digest() == target

    def test_recovery_with_checkpoint_replays_suffix_only(self):
        sim, network, view, replicas, apps = dura_cluster(
            seed=104, checkpoint_every=2)
        station = station_with_clients(sim, network, lambda: view, 2,
                                       lambda i: kv_ops(f"k{i}", 12))
        station.start_all()
        sim.run(until=8.0)
        target = apps[0].state_digest()
        replica = replicas[0]
        replica.crash()
        assert replica.store.read_cell(DuraSmartDelivery.SNAPSHOT) is not None
        replica.delivery.recover_local()
        assert apps[0].state_digest() == target

    def test_async_mode_data_lags_stable_media(self):
        sim, network, view, replicas, apps = dura_cluster(
            storage=StorageMode.ASYNC, seed=105)
        station = station_with_clients(sim, network, lambda: view, 2,
                                       lambda i: kv_ops(f"a{i}", 5))
        station.start_all()
        sim.run(until=10.0)
        assert station.meter.total == 10
        # The flusher made it stable eventually.
        assert replicas[0].store.log_length(DuraSmartDelivery.LOG) >= 1

    def test_memory_mode_keeps_nothing(self):
        sim, network, view, replicas, apps = dura_cluster(
            storage=StorageMode.MEMORY, seed=106)
        station = station_with_clients(sim, network, lambda: view, 2,
                                       lambda i: kv_ops(f"m{i}", 5))
        station.start_all()
        sim.run(until=10.0)
        assert station.meter.total == 10
        assert replicas[0].store.log_length(DuraSmartDelivery.LOG) == 0


def naive_cluster(storage=StorageMode.SYNC, seed=1):
    return make_cluster(
        seed=seed,
        delivery_factory=lambda app: NaiveBlockchainDelivery(app, storage))


class TestNaiveBlockchain:
    def test_builds_hash_chained_blocks(self):
        sim, network, view, replicas, apps = naive_cluster(seed=111)
        station = station_with_clients(sim, network, lambda: view, 3,
                                       lambda i: kv_ops(f"n{i}", 8))
        station.start_all()
        sim.run(until=10.0)
        chain = replicas[0].delivery.chain
        assert chain
        for previous, current in zip(chain, chain[1:]):
            assert current["prev"] == previous["hash"]
            assert current["number"] == previous["number"] + 1

    def test_chains_identical_across_replicas(self):
        sim, network, view, replicas, apps = naive_cluster(seed=112)
        station = station_with_clients(sim, network, lambda: view, 3,
                                       lambda i: kv_ops(f"e{i}", 6))
        station.start_all()
        sim.run(until=10.0)
        hashes = [tuple(b["hash"] for b in r.delivery.chain)
                  for r in replicas]
        assert hashes[0] == hashes[1] == hashes[2] == hashes[3]

    def test_sync_mode_persists_before_reply(self):
        sim, network, view, replicas, apps = naive_cluster(seed=113)
        station = station_with_clients(sim, network, lambda: view, 1,
                                       lambda i: kv_ops("s", 5))
        station.start_all()
        sim.run(until=10.0)
        assert station.meter.total == 5
        stable = replicas[0].store.read_log(NaiveBlockchainDelivery.LOG)
        executed = sum(len(b["transactions"]) for b in stable)
        assert executed == 5

    def test_local_recovery_restores_chain_height(self):
        sim, network, view, replicas, apps = naive_cluster(seed=114)
        station = station_with_clients(sim, network, lambda: view, 2,
                                       lambda i: kv_ops(f"q{i}", 6))
        station.start_all()
        sim.run(until=10.0)
        replica = replicas[2]
        height = len(replica.delivery.chain)
        assert height > 0
        replica.crash()
        assert replica.delivery.chain == []
        recovered_cid = replica.delivery.recover_local()
        assert len(replica.delivery.chain) == height
        assert recovered_cid >= 0

    def test_memory_mode_loses_chain_on_crash(self):
        sim, network, view, replicas, apps = naive_cluster(
            storage=StorageMode.MEMORY, seed=115)
        station = station_with_clients(sim, network, lambda: view, 1,
                                       lambda i: kv_ops("m", 4))
        station.start_all()
        sim.run(until=10.0)
        replica = replicas[0]
        replica.crash()
        assert replica.delivery.recover_local() == -1
