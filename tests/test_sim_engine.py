"""Unit tests for the discrete-event engine and resources."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.resource import Resource
from repro.sim.trace import LatencyRecorder, ThroughputMeter, trimmed_mean


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        out = []
        sim.schedule(3.0, out.append, "c")
        sim.schedule(1.0, out.append, "a")
        sim.schedule(2.0, out.append, "b")
        sim.run()
        assert out == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        sim = Simulator()
        out = []
        for tag in "abcde":
            sim.schedule(1.0, out.append, tag)
        sim.run()
        assert out == list("abcde")

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]
        assert sim.now == 2.5

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        out = []
        event = sim.schedule(1.0, out.append, "x")
        event.cancel()
        sim.run()
        assert out == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        sim.run()

    def test_nested_scheduling(self):
        sim = Simulator()
        out = []

        def first():
            out.append(("first", sim.now))
            sim.schedule(1.0, second)

        def second():
            out.append(("second", sim.now))

        sim.schedule(1.0, first)
        sim.run()
        assert out == [("first", 1.0), ("second", 2.0)]

    def test_run_until_stops_clock_at_horizon(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(10.0, lambda: None)
        sim.run(until=5.0)
        assert sim.now == 5.0
        assert sim.pending == 1

    def test_run_until_exact_boundary_event_runs(self):
        sim = Simulator()
        out = []
        sim.schedule(5.0, out.append, "edge")
        sim.run(until=5.0)
        assert out == ["edge"]

    def test_stop_halts_run(self):
        sim = Simulator()
        out = []
        sim.schedule(1.0, lambda: (out.append("a"), sim.stop()))
        sim.schedule(2.0, out.append, "b")
        sim.run()
        assert out == ["a"]

    def test_step_executes_single_event(self):
        sim = Simulator()
        out = []
        sim.schedule(1.0, out.append, 1)
        sim.schedule(2.0, out.append, 2)
        assert sim.step() is True
        assert out == [1]
        assert sim.step() is True
        assert sim.step() is False

    def test_call_soon_runs_at_current_time(self):
        sim = Simulator()
        times = []
        sim.schedule(3.0, lambda: sim.call_soon(lambda: times.append(sim.now)))
        sim.run()
        assert times == [3.0]

    def test_determinism_same_seed(self):
        def trajectory(seed):
            sim = Simulator(seed)
            out = []

            def tick(i):
                out.append((round(sim.now, 9), i))
                if i < 20:
                    sim.schedule(sim.rng.random(), tick, i + 1)

            sim.schedule(0.0, tick, 0)
            sim.run()
            return out

        assert trajectory(7) == trajectory(7)
        assert trajectory(7) != trajectory(8)

    def test_executed_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.executed == 5

    def test_peek_time_skips_cancelled(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        event.cancel()
        assert sim.peek_time() == 2.0


class TestHeapHygiene:
    """Tombstone accounting: cancels must never corrupt the live counter."""

    def test_cancel_after_fire_is_a_noop(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run(until=1.0)
        assert event.fired
        assert sim.pending == 1
        event.cancel()  # late cancel: must not decrement live accounting
        event.cancel()
        assert sim.pending == 1
        assert sim.tombstones == 0
        sim.run()
        assert sim.executed == 2

    def test_double_cancel_counts_one_tombstone(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        event.cancel()
        event.cancel()
        assert sim.pending == 1
        assert sim.tombstones == 1

    def test_pending_tracks_live_events_only(self):
        sim = Simulator()
        events = [sim.schedule(1.0, lambda: None) for _ in range(10)]
        for event in events[:4]:
            event.cancel()
        assert sim.pending == 6
        assert sim.tombstones == 4
        sim.run()
        assert sim.executed == 6
        assert sim.pending == 0

    def test_compaction_triggers_and_preserves_live_events(self):
        sim = Simulator()
        out = []
        for i in range(5):
            sim.schedule(float(i + 1), out.append, i)
        doomed = [sim.schedule(100.0, lambda: out.append(-1))
                  for _ in range(300)]
        for event in doomed:
            event.cancel()
        assert sim.compactions >= 1
        assert sim.pending == 5
        sim.run()
        assert out == [0, 1, 2, 3, 4]
        assert sim.executed == 5

    def test_peek_time_pops_tombstones_lazily(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        assert sim.tombstones == 1
        assert sim.peek_time() is None
        assert sim.tombstones == 0

    def test_cancelled_event_drops_callback_references(self):
        sim = Simulator()
        payload = object()
        event = sim.schedule(1.0, lambda obj: None, payload)
        event.cancel()
        assert event.args == ()


class TestResource:
    def test_single_server_serializes(self):
        sim = Simulator()
        resource = Resource(sim, 1)
        done = []
        resource.submit(1.0, lambda: done.append(sim.now))
        resource.submit(1.0, lambda: done.append(sim.now))
        sim.run()
        assert done == [1.0, 2.0]

    def test_multi_server_parallelism(self):
        sim = Simulator()
        resource = Resource(sim, 2)
        done = []
        for _ in range(4):
            resource.submit(1.0, lambda: done.append(sim.now))
        sim.run()
        assert done == [1.0, 1.0, 2.0, 2.0]

    def test_fifo_order(self):
        sim = Simulator()
        resource = Resource(sim, 1)
        order = []
        for i in range(5):
            resource.submit(0.5, order.append, i)
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_submit_bulk_makespan(self):
        sim = Simulator()
        resource = Resource(sim, 4)
        done = []
        # 16 tasks of 1s on 4 servers -> 4s makespan.
        resource.submit_bulk(1.0, 16, lambda: done.append(sim.now))
        sim.run()
        assert done == [4.0]

    def test_submit_bulk_zero_count_fires_immediately(self):
        sim = Simulator()
        resource = Resource(sim, 2)
        done = []
        resource.submit_bulk(1.0, 0, lambda: done.append(sim.now))
        sim.run()
        assert done == [0.0]

    def test_utilization(self):
        sim = Simulator()
        resource = Resource(sim, 1)
        resource.submit(2.0)
        sim.run(until=4.0)
        assert resource.utilization() == pytest.approx(0.5)

    def test_busy_and_queued_counters(self):
        sim = Simulator()
        resource = Resource(sim, 1)
        resource.submit(1.0)
        resource.submit(1.0)
        assert resource.busy == 1
        assert resource.queued == 1
        sim.run()
        assert resource.busy == 0
        assert resource.jobs_served == 2

    def test_negative_service_rejected(self):
        sim = Simulator()
        resource = Resource(sim, 1)
        with pytest.raises(SimulationError):
            resource.submit(-1.0)

    def test_zero_servers_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            Resource(sim, 0)


class TestMeters:
    def test_throughput_meter_interval_rates(self):
        sim = Simulator()
        meter = ThroughputMeter(sim)
        for t in (0.1, 0.2, 1.1, 1.2, 1.3):
            sim.schedule(t, meter.record)
        sim.run(until=2.0)
        rates = meter.interval_rates(1.0)
        assert rates == [2.0, 3.0]
        assert meter.total == 5

    def test_throughput_meter_rate_window(self):
        sim = Simulator()
        meter = ThroughputMeter(sim)
        for t in (0.5, 1.5, 2.5, 3.5):
            sim.schedule(t, meter.record)
        sim.run(until=4.0)
        assert meter.rate(start=1.0, end=4.0) == pytest.approx(1.0)

    def test_op_interval_rates(self):
        sim = Simulator()
        meter = ThroughputMeter(sim)
        # 10 ops, one every 0.1 s -> op windows of 5 give ~10/s.
        for i in range(1, 11):
            sim.schedule(i * 0.1, meter.record)
        sim.run(until=2.0)
        rates = meter.op_interval_rates(5)
        assert len(rates) >= 1
        for rate in rates:
            assert rate == pytest.approx(10.0, rel=0.01)

    def test_latency_recorder_stats(self):
        recorder = LatencyRecorder()
        for value in (1.0, 2.0, 3.0, 4.0):
            recorder.record(value)
        assert recorder.mean() == pytest.approx(2.5)
        assert recorder.percentile(50) >= 2.0
        assert recorder.count == 4

    def test_trimmed_mean_discards_outliers(self):
        values = [10.0] * 8 + [1000.0, 0.0]
        assert trimmed_mean(values, discard_fraction=0.2) == pytest.approx(10.0)

    def test_trimmed_mean_small_inputs(self):
        assert trimmed_mean([]) == 0.0
        assert trimmed_mean([5.0]) == 5.0
        assert trimmed_mean([4.0, 6.0]) == 5.0
