"""Engine conformance: every registered consensus engine must keep the
paper's safety invariants under the same harness, fault plans and online
auditor that exercise Mod-SMaRt.

The suite is parametrized over :func:`repro.consensus.engine_names`, so a
third engine registered via :func:`repro.consensus.register_engine` is
picked up automatically.  Audited runs enforce agreement, no-fork and
view-monotonicity (see ``repro.obs.audit.INVARIANTS``); the negative
control proves the auditor still has teeth when the fast-path engine is
pushed past its fault threshold.
"""

import pytest

from repro.bench.harness import Scenario, run
from repro.consensus import (
    ConsensusEngine,
    EngineError,
    FastBftEngine,
    ModSmartEngine,
    create_engine,
    engine_names,
)
from repro.faults.inject import FaultInjectionError
from repro.faults.plan import BehaviorSpec, FaultPlan
from repro.obs.audit import AuditError

ENGINES = engine_names()

#: The named chaos plans every engine must survive audit-clean with at
#: most f compromised replicas (the consensus-agnosticism proof).
CHAOS_PLANS = ("equivocate", "mute", "withhold-votes", "stale-replay",
               "crash-storm")


def audited_run(engine, *, faults=None, seed=1, n=4, clients=300,
                duration=2.0, audit=True):
    """A short observed SMARTCHAIN run on ``engine`` (audited by default:
    any agreement/no-fork/view-monotonicity breach raises AuditError)."""
    return run(Scenario(n=n, clients=clients, duration=duration, seed=seed,
                        observe=True, audit=audit, faults=faults,
                        engine=engine))


# ----------------------------------------------------------------------
# Registry surface
# ----------------------------------------------------------------------
class TestRegistry:
    def test_both_shipped_engines_registered(self):
        assert {"modsmart", "fastbft"} <= set(ENGINES)

    def test_unknown_engine_rejected_with_known_list(self):
        with pytest.raises(EngineError, match="modsmart"):
            create_engine("paxos")

    def test_create_engine_resolves_keys_and_instances(self):
        assert isinstance(create_engine("modsmart"), ModSmartEngine)
        assert isinstance(create_engine(None), ModSmartEngine)
        engine = FastBftEngine()
        assert create_engine(engine) is engine

    def test_engines_declare_interface(self):
        for name in ENGINES:
            engine = create_engine(name)
            assert isinstance(engine, ConsensusEngine)
            assert engine.name == name
            assert engine.phases, f"{name} declares no vote phases"

    def test_double_attach_rejected(self):
        class _Runtime:
            def register_handler(self, *args, **kwargs):
                pass

        class _Stub:
            id = 0
            runtime = _Runtime()

        engine = create_engine("fastbft")
        engine.attach(_Stub())
        with pytest.raises(EngineError, match="already attached"):
            engine.attach(_Stub())


# ----------------------------------------------------------------------
# Quorum policy (pure arithmetic, no simulation)
# ----------------------------------------------------------------------
class TestQuorumPolicy:
    @pytest.mark.parametrize("n,f,quorum", [(4, 1, 3), (7, 2, 5), (10, 3, 7)])
    def test_modsmart_quorums(self, n, f, quorum):
        engine = create_engine("modsmart")
        assert engine.fault_threshold(n) == f
        assert engine.quorum(n) == quorum
        assert engine.stop_quorum(n) == 2 * f + 1

    @pytest.mark.parametrize("n,f,fast,slow", [(4, 1, 3, 3), (9, 2, 7, 6),
                                               (14, 3, 11, 9)])
    def test_fastbft_quorums(self, n, f, fast, slow):
        engine = create_engine("fastbft")
        assert engine.fault_threshold(n) == f
        assert engine.fast_quorum(n) == fast
        assert engine.quorum(n) == slow

    @pytest.mark.parametrize("name", ENGINES)
    @pytest.mark.parametrize("n", range(4, 16))
    def test_quorum_intersection_exceeds_f(self, name, n):
        """Any two deciding quorums intersect in more than f replicas —
        the arithmetic behind agreement for every engine."""
        engine = create_engine(name)
        f = engine.fault_threshold(n)
        quorums = [engine.quorum(n)]
        if hasattr(engine, "fast_quorum"):
            quorums.append(engine.fast_quorum(n))
        for a in quorums:
            for b in quorums:
                assert a + b - n > f, (name, n, a, b)


# ----------------------------------------------------------------------
# Conformance under the auditor (the consensus-agnosticism proof)
# ----------------------------------------------------------------------
class TestConformance:
    @pytest.mark.parametrize("name", ENGINES)
    def test_fault_free_run_is_audit_clean(self, name):
        result = audited_run(name)
        assert result.completed > 0 and result.throughput > 0
        consortium = result.handle.system
        heights = {node.chain.height for node in consortium.nodes.values()}
        assert max(heights) > 0

    @pytest.mark.parametrize("plan", CHAOS_PLANS)
    @pytest.mark.parametrize("name", ENGINES)
    def test_chaos_plan_audit_clean(self, name, plan):
        """≤ f compromised replicas: clients make progress and no safety
        invariant trips, whichever engine is ordering."""
        result = audited_run(name, faults=plan)
        assert result.completed > 0 and result.throughput > 0
        counts = result.handle.obs.events.counts()
        if plan == "crash-storm":
            assert counts.get("crash", 0) >= 1
        else:
            assert counts.get("behavior-activated", 0) >= 1

    @pytest.mark.parametrize("name", ENGINES)
    def test_views_monotone_per_node(self, name):
        """Beyond the auditor's own check: view-change events never move
        a node backwards."""
        result = audited_run(name, faults="stale-replay")
        last: dict[int, int] = {}
        for event in result.handle.obs.events.of_kind("view-change"):
            view = event.fields["view"]
            assert view >= last.get(event.node, -1)
            last[event.node] = view
        assert last, "run produced no view changes"


class TestFastPath:
    def test_fault_free_decisions_take_the_fast_path(self):
        result = audited_run("fastbft")
        engine = result.handle.system.nodes[0].replica.engine
        assert engine.fast_decisions > 0
        assert engine.slow_decisions == 0

    def test_slow_path_decides_when_fast_quorum_unreachable(self):
        """n=9: three muted replicas leave 6 votes — below the fast quorum
        of 7 but enough for the classic quorum of 6, so every decision
        falls back to the slow path (and stays audit-clean)."""
        plan = FaultPlan(name="mute-3", behaviors=(
            BehaviorSpec("mute", nodes=(6, 7, 8), after=0.0),))
        result = audited_run("fastbft", n=9, faults=plan)
        engine = result.handle.system.nodes[0].replica.engine
        assert result.completed > 0
        assert engine.slow_decisions > 0
        assert engine.fast_decisions == 0


# ----------------------------------------------------------------------
# Negative control: the auditor must still catch real forks
# ----------------------------------------------------------------------
class TestBeyondThreshold:
    def test_fastbft_f_plus_one_equivocators_trip_the_auditor(self):
        plan = FaultPlan(
            name="equivocate-2",
            behaviors=(BehaviorSpec("equivocate", nodes=(0, 1), after=0.3),),
            protocol={"request_timeout": 0.25},
        )
        with pytest.raises(AuditError) as excinfo:
            audited_run("fastbft", faults=plan)
        violated = {v.invariant for v in excinfo.value.violations}
        assert violated & {"agreement", "no-fork"}


# ----------------------------------------------------------------------
# Engine-specific plan overrides fail fast on the wrong engine
# ----------------------------------------------------------------------
class TestPhaseValidation:
    def _withhold(self, *phases):
        return FaultPlan(name="bad", behaviors=(
            BehaviorSpec("withhold-votes", nodes=(1,),
                         params={"phases": tuple(phases)}),))

    def test_modsmart_phase_names_rejected_on_fastbft(self):
        with pytest.raises(FaultInjectionError, match="'write'.*fastbft"):
            run(Scenario(clients=10, duration=0.2,
                         faults=self._withhold("write"), engine="fastbft"))

    def test_fastbft_phase_names_rejected_on_modsmart(self):
        with pytest.raises(FaultInjectionError, match="'vote'.*modsmart"):
            run(Scenario(clients=10, duration=0.2,
                         faults=self._withhold("vote")))

    def test_engine_phase_names_accepted(self):
        for engine in ENGINES:
            phases = create_engine(engine).phases + ("persist",)
            result = run(Scenario(clients=50, duration=0.5, observe=True,
                                  faults=self._withhold(*phases),
                                  engine=engine))
            assert result.handle is not None
