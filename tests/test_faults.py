"""Tests for the Byzantine fault-injection suite (repro.faults).

The end-to-end cases run short audited SMARTCHAIN scenarios: every named
plan stays within the fault threshold (f=1 of n=4), so the safety auditor
must come out clean AND the clients must keep making progress; pushing past
the threshold (two equivocators) must trip the auditor.
"""

import json

import pytest

from repro.bench.harness import Scenario, run
from repro.faults import (
    BehaviorSpec,
    CrashSpec,
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    NAMED_PLANS,
    load_plan,
)
from repro.faults.inject import FaultInjectionError
from repro.obs.audit import AuditError


class TestPlans:
    def test_load_named_plan(self):
        plan = load_plan("equivocate")
        assert plan is NAMED_PLANS["equivocate"]
        assert plan.byzantine_nodes == frozenset({0})

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(FaultPlanError, match="crash-storm"):
            load_plan("no-such-plan")

    def test_unknown_behavior_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown behavior"):
            BehaviorSpec("bit-flip", nodes=(0,))

    def test_repeated_crash_needs_period(self):
        with pytest.raises(FaultPlanError, match="period"):
            CrashSpec(node=0, at=1.0, repeat=3)

    def test_recover_must_follow_crash(self):
        with pytest.raises(FaultPlanError, match="recover_at"):
            CrashSpec(node=0, at=1.0, recover_at=0.5)

    def test_json_roundtrip_preserves_every_field(self):
        for name, plan in NAMED_PLANS.items():
            restored = FaultPlan.from_json(
                json.loads(json.dumps(plan.to_json())))
            assert restored == plan, name

    def test_protocol_overrides_survive_roundtrip(self):
        plan = NAMED_PLANS["equivocate"]
        assert plan.protocol == {"request_timeout": 0.25}
        assert FaultPlan.from_json(plan.to_json()).protocol == plan.protocol

    def test_inline_json_accepted(self):
        plan = load_plan('{"name": "adhoc", "behaviors": '
                         '[{"behavior": "mute", "nodes": [2], "after": 0.5}]}')
        assert plan.name == "adhoc"
        assert plan.behaviors[0].behavior == "mute"

    def test_malformed_inline_json_rejected(self):
        with pytest.raises(FaultPlanError, match="inline"):
            load_plan('{"name": broken')


class TestInjectorValidation:
    def test_plan_must_match_scenario_nodes(self):
        plan = FaultPlan(name="bad", behaviors=(
            BehaviorSpec("mute", nodes=(7,)),))
        with pytest.raises(FaultInjectionError, match=r"\[7\]"):
            run(Scenario(clients=10, duration=0.2, faults=plan))

    def test_unknown_protocol_knob_rejected(self):
        plan = FaultPlan(name="bad", protocol={"not_a_knob": 1})
        with pytest.raises(FaultInjectionError, match="not_a_knob"):
            run(Scenario(clients=10, duration=0.2, faults=plan))

    def test_double_install_rejected(self):
        injector = FaultInjector(FaultPlan(name="empty"))
        injector.installed = True
        with pytest.raises(FaultInjectionError, match="already"):
            injector.install(None, None, {})


def chaos_run(faults, *, seed=1, audit=True, engine="modsmart"):
    """A short audited SMARTCHAIN run under the given fault plan."""
    return run(Scenario(clients=300, duration=2.0, seed=seed,
                        observe=True, audit=audit, faults=faults,
                        engine=engine))


def kinds(result):
    return result.handle.obs.events.counts()


class TestWithinThreshold:
    """f or fewer faulty replicas: audit clean, clients make progress."""

    def test_single_equivocator_recovers(self):
        result = chaos_run("equivocate")
        assert result.completed > 0 and result.throughput > 0
        seen = kinds(result)
        assert seen.get("behavior-activated", 0) >= 1
        # The conflicting proposals starve the instance until the group
        # elects a new leader.
        assert seen.get("leader-change", 0) >= 1

    def test_mute_replica_tolerated(self):
        result = chaos_run("mute")
        assert result.completed > 0 and result.throughput > 0
        assert kinds(result).get("behavior-activated", 0) >= 1

    def test_vote_withholder_tolerated(self):
        result = chaos_run("withhold-votes")
        assert result.completed > 0 and result.throughput > 0
        assert kinds(result).get("behavior-activated", 0) >= 1

    def test_crash_storm_tolerated(self):
        result = chaos_run("crash-storm")
        assert result.completed > 0 and result.throughput > 0
        seen = kinds(result)
        assert seen.get("crash", 0) >= 1
        # the replica reloads stable state and starts a transfer in-window
        # (the final "recover" event can land after the run ends)
        assert seen.get("recovering", 0) >= 1
        assert seen.get("state-transfer", 0) >= 1
        fired = {e.fields.get("action")
                 for e in result.handle.obs.events.of_kind("fault-injected")}
        assert {"crash", "recover", "partition", "heal", "drop"} <= fired


class TestStaleReplay:
    """The forgetting-protocol attack (paper Section V-D, Observation 3)."""

    def test_retired_key_votes_are_rejected(self):
        result = chaos_run("stale-replay")
        assert result.completed > 0 and result.throughput > 0
        # The leave went through (view change + key rotation)...
        seen = kinds(result)
        assert seen.get("view-change", 0) >= 1
        assert seen.get("key-rotation", 0) >= 1
        # ...and every replayed PERSIST vote signed with the retired key
        # was refused and recorded.
        rejects = result.handle.obs.events.of_kind("stale-reject")
        assert rejects
        consortium = result.handle.system
        assert sum(node.replica.delivery.stale_votes_rejected
                   for node in consortium.nodes.values()) == len(rejects)


class TestBeyondThreshold:
    """f+1 equivocators CAN fork the chain: the auditor must catch it."""

    def test_two_equivocators_trip_the_auditor(self):
        plan = FaultPlan(
            name="equivocate-2",
            behaviors=(BehaviorSpec("equivocate", nodes=(0, 1), after=0.3),),
            protocol={"request_timeout": 0.25},
        )
        with pytest.raises(AuditError) as excinfo:
            chaos_run(plan)
        violated = {v.invariant for v in excinfo.value.violations}
        assert "agreement" in violated or "no-fork" in violated

    def test_same_attack_unaudited_does_not_raise(self):
        # Negative control for the control: without the auditor the fork
        # goes unnoticed — which is exactly why audited CI runs exist.
        plan = FaultPlan(
            name="equivocate-2",
            behaviors=(BehaviorSpec("equivocate", nodes=(0, 1), after=0.3),),
            protocol={"request_timeout": 0.25},
        )
        chaos_run(plan, audit=False)


class TestDeterminism:
    def test_same_seed_same_plan_identical_events(self):
        first = chaos_run("crash-storm", seed=7)
        second = chaos_run("crash-storm", seed=7)
        assert (first.handle.obs.events.to_jsonl()
                == second.handle.obs.events.to_jsonl())
        assert first.report == second.report

    def test_different_seed_differs(self):
        first = chaos_run("crash-storm", seed=7)
        second = chaos_run("crash-storm", seed=8)
        assert (first.handle.obs.events.to_jsonl()
                != second.handle.obs.events.to_jsonl())
