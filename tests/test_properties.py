"""Property-based tests over protocol invariants (hypothesis).

The heavyweight ones drive a full cluster under randomized crash/recovery
schedules and assert the SMR safety invariants always hold.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import SMRConfig
from repro.sim.trace import trimmed_mean

from tests.helpers import kv_ops, make_cluster, station_with_clients


class TestOrderingInvariants:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_total_order_holds_for_any_seed(self, seed):
        sim, network, view, replicas, apps = make_cluster(seed=seed)
        station = station_with_clients(sim, network, lambda: view, 3,
                                       lambda i: kv_ops(f"c{i}", 8))
        station.start_all()
        sim.run(until=20.0)
        assert station.meter.total == 24
        logs = [[d.batch_hash for d in r.delivery.log] for r in replicas]
        assert logs[0] == logs[1] == logs[2] == logs[3]
        assert len({a.state_digest() for a in apps}) == 1

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        crash_victim=st.integers(min_value=0, max_value=3),
        crash_at=st.floats(min_value=0.01, max_value=0.4),
    )
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_safety_under_random_single_crash(self, seed, crash_victim,
                                              crash_at):
        """Whatever single replica crashes, whenever: no divergence, no
        duplicate execution, full completion."""
        config = SMRConfig(n=4, f=1, request_timeout=0.5)
        sim, network, view, replicas, apps = make_cluster(seed=seed,
                                                          config=config)
        station = station_with_clients(sim, network, lambda: view, 4,
                                       lambda i: kv_ops(f"c{i}", 10))
        station.start_all()
        sim.schedule(crash_at, replicas[crash_victim].crash)
        sim.run(until=40.0)
        assert station.meter.total == 40
        alive = [r for r in replicas if not r.crashed]
        logs = [[d.batch_hash for d in r.delivery.log] for r in alive]
        for log in logs[1:]:
            assert log == logs[0]
        for replica in alive:
            keys = [req.key for d in replica.delivery.log for req in d.batch]
            assert len(keys) == len(set(keys))

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        victim=st.integers(min_value=0, max_value=3),
        downtime=st.floats(min_value=0.2, max_value=1.5),
    )
    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_crash_recover_convergence(self, seed, victim, downtime):
        """A crashed-and-recovered replica always converges back to the
        group state."""
        config = SMRConfig(n=4, f=1, request_timeout=0.5)
        sim, network, view, replicas, apps = make_cluster(seed=seed,
                                                          config=config)
        station = station_with_clients(sim, network, lambda: view, 4,
                                       lambda i: kv_ops(f"c{i}", 12))
        station.start_all()
        sim.schedule(0.05, replicas[victim].crash)
        sim.schedule(0.05 + downtime, lambda: replicas[victim].recover())
        sim.run(until=60.0)
        assert station.meter.total == 48
        # Give the recovered replica a quiet moment to finish catching up.
        sim.run(until=sim.now + 10.0)
        assert not replicas[victim].crashed
        assert apps[victim].state_digest() == apps[(victim + 1) % 4].state_digest()


class TestChainInvariants:
    @given(seed=st.integers(min_value=0, max_value=10_000),
           txs=st.integers(min_value=5, max_value=30))
    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_chain_always_verifies(self, seed, txs):
        from repro.ledger import ChainVerifier
        from tests.helpers import make_consortium, run_coin_traffic
        consortium = make_consortium(seed=seed, checkpoint_period=7)
        run_coin_traffic(consortium, txs=txs)
        verifier = ChainVerifier(consortium.registry, consortium.genesis,
                                 uncertified_tail=1)
        report = verifier.verify_records(consortium.node(0).chain_records())
        assert report.total_transactions >= txs

    @given(values=st.lists(st.floats(min_value=0, max_value=1e6,
                                     allow_nan=False), max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_trimmed_mean_bounded_by_extremes(self, values):
        result = trimmed_mean(values)
        if values:
            assert min(values) - 1e-9 <= result <= max(values) + 1e-9
        else:
            assert result == 0.0


class TestCrossShardConservation:
    """Cross-shard value conservation under randomized seeds.

    The two-phase transfer burns coins on the source shard and mints them
    on the destination; whatever the interleaving of locks, certificate
    fetches and redemptions a seed produces, total value is conserved:
    coins held + value locked in transit == total ever minted.
    """

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=5, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_value_conserved_for_any_seed(self, seed):
        from repro.bench.harness import Scenario, run

        result = run(Scenario(shards=2, cross_shard_fraction=0.3,
                              clients=60, duration=1.5, seed=seed,
                              audit=True))
        multichain = result.handle.system
        # Every replica of a shard agrees on the cross-shard ledger
        # extensions (compare at equal chain heights only).
        by_height = {}
        for shard in range(multichain.shards):
            for node in multichain.group(shard).nodes.values():
                key = (shard, node.chain.height)
                by_height.setdefault(key, set()).add(
                    node.app.state_digest())
        assert all(len(digests) == 1 for digests in by_height.values())
        held = locked_out = minted_in = minted = 0
        for shard in range(multichain.shards):
            app = multichain.apps(shard)[0]
            held += sum(value for _owner, value in app.coins.values())
            locked_out += app.xlock_value_out
            minted_in += app.xmint_value_in
            minted += app.minted_total
        assert held + locked_out - minted_in == minted
        # A fault-free run never presents a bad or replayed certificate.
        assert not result.handle.obs.events.of_kind("cert-rejected")
