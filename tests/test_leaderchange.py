"""Synchronization-phase (leader change) tests."""

import pytest

from repro.config import SMRConfig, VerificationMode
from repro.net.network import NetworkConfig
from repro.net.network import Network
from repro.sim.engine import Simulator
from repro.sim.trace import TraceLog

from tests.helpers import kv_ops, make_cluster, station_with_clients


def cluster_with_timeout(seed=1, request_timeout=0.5, trace=None, n=4):
    config = SMRConfig(n=n, f=(n - 1) // 3, request_timeout=request_timeout)
    return make_cluster(n=n, seed=seed, config=config, trace=trace)


class TestLeaderCrash:
    def test_progress_resumes_after_leader_crash(self):
        trace = TraceLog()
        sim, network, view, replicas, apps = cluster_with_timeout(
            seed=21, trace=trace)
        station = station_with_clients(sim, network, lambda: view, 10,
                                       lambda i: kv_ops(f"c{i}", 20))
        station.start_all()
        sim.schedule(0.05, replicas[0].crash)
        sim.run(until=30.0)
        assert station.meter.total == 200
        survivors = replicas[1:]
        assert all(r.regency >= 1 for r in survivors)
        assert len({a.state_digest() for a in apps[1:]}) == 1
        assert trace.count("regency-installed") >= 3

    def test_two_successive_leader_crashes(self):
        from repro.clients.client import Client
        from repro.clients.client import ClientStation
        sim, network, view, replicas, apps = cluster_with_timeout(seed=22, n=7)
        station = ClientStation(sim, network, 900, lambda: view,
                                send_window=0.0005)
        # Slow drip so traffic spans both crashes.
        for i in range(10):
            Client(station, kv_ops(f"c{i}", 15), think_time=0.2)
        station.start_all()
        sim.schedule(0.05, replicas[0].crash)  # leader of regency 0
        sim.schedule(2.0, replicas[1].crash)   # leader of regency 1
        sim.run(until=40.0)
        assert station.meter.total == 150
        assert all(r.regency >= 2 for r in replicas[2:])

    def test_no_decision_lost_across_change(self):
        """Safety: every request completed before, during or after a change
        is executed exactly once on every surviving replica."""
        sim, network, view, replicas, apps = cluster_with_timeout(seed=23)
        station = station_with_clients(sim, network, lambda: view, 5,
                                       lambda i: kv_ops(f"c{i}", 30))
        station.start_all()
        sim.schedule(0.06, replicas[0].crash)
        sim.run(until=40.0)
        assert station.meter.total == 150
        for replica in replicas[1:]:
            keys = [request.key for decision in replica.delivery.log
                    for request in decision.batch]
            assert len(keys) == len(set(keys))
        logs = [[d.batch_hash for d in r.delivery.log] for r in replicas[1:]]
        assert logs[0] == logs[1] == logs[2]

    def test_idle_system_does_not_rotate_leaders(self):
        trace = TraceLog()
        sim, network, view, replicas, apps = cluster_with_timeout(
            seed=24, trace=trace)
        sim.run(until=10.0)
        assert trace.count("regency-installed") == 0
        assert all(r.regency == 0 for r in replicas)

    def test_change_preserves_vouched_value(self):
        """If the crashed leader's batch reached the ACCEPT stage anywhere,
        the new leader re-proposes it (the STOPDATA writeset rule)."""
        trace = TraceLog()
        sim, network, view, replicas, apps = cluster_with_timeout(
            seed=25, trace=trace)
        station = station_with_clients(sim, network, lambda: view, 2,
                                       lambda i: kv_ops(f"c{i}", 10))
        station.start_all()
        # Crash the leader mid-run: whatever was in flight must not fork.
        sim.schedule(0.03, replicas[0].crash)
        sim.run(until=30.0)
        assert station.meter.total == 20
        logs = [[d.batch_hash for d in r.delivery.log] for r in replicas[1:]]
        assert logs[0] == logs[1] == logs[2]


class TestExponentialBackoff:
    def _sync(self, request_timeout=0.5, backoff=2.0, timeout_max=4.0,
              policy="exponential"):
        config = SMRConfig(n=4, f=1, request_timeout=request_timeout,
                           synchronizer=policy, timeout_backoff=backoff,
                           timeout_max=timeout_max)
        _, _, _, replicas, _ = make_cluster(config=config)
        return replicas[0].synchronizer

    def test_timeout_doubles_per_failed_change_and_caps(self):
        sync = self._sync()
        assert sync.current_timeout == 0.5
        expected = [1.0, 2.0, 4.0, 4.0, 4.0]  # capped at timeout_max
        for failures, timeout in enumerate(expected, start=1):
            sync._failed_changes = failures
            assert sync.current_timeout == timeout

    def test_fixed_policy_never_grows(self):
        sync = self._sync(policy="fixed")
        sync._failed_changes = 10
        assert sync.current_timeout == 0.5

    def test_fast_progress_decays_one_step(self):
        sync = self._sync()
        sync._failed_changes = 3
        sync._last_decision = sync.replica.sim.now  # gap 0 <= base
        sync.on_progress()
        assert sync._failed_changes == 2

    def test_slow_progress_holds_the_backoff(self):
        # A decision that took longer than the base timeout is no evidence
        # the base would suffice: the backoff must not decay below need.
        sync = self._sync(request_timeout=0.5)
        sync._failed_changes = 3
        sync._last_decision = -1.0  # gap of 1.0 > base 0.5 at sim.now == 0
        sync.on_progress()
        assert sync._failed_changes == 3

    def test_install_records_backed_off_timeout(self):
        trace = TraceLog()
        sim, network, view, replicas, apps = cluster_with_timeout(
            seed=21, trace=trace)
        station = station_with_clients(sim, network, lambda: view, 10,
                                       lambda i: kv_ops(f"c{i}", 20))
        station.start_all()
        sim.schedule(0.05, replicas[0].crash)
        sim.run(until=30.0)
        assert station.meter.total == 200
        survivor = replicas[1].synchronizer
        assert survivor.regency_changes >= 1
        assert survivor.watchdog_fires >= 1
        # Every installed regency logged the timeout then in effect, and a
        # first change always installs with one doubling applied.
        assert set(survivor.timeout_history) == {
            r for r in range(1, replicas[1].regency + 1)}
        assert survivor.timeout_history[1] == 1.0

    def test_fault_free_run_never_leaves_base_timeout(self):
        sim, network, view, replicas, apps = cluster_with_timeout(seed=30)
        station = station_with_clients(sim, network, lambda: view, 10,
                                       lambda i: kv_ops(f"c{i}", 20))
        station.start_all()
        sim.run(until=20.0)
        assert station.meter.total == 200
        for replica in replicas:
            assert replica.synchronizer.current_timeout == 0.5
            assert replica.synchronizer.timeout_history == {}

    def test_config_rejects_bad_synchronizer_settings(self):
        with pytest.raises(ValueError):
            SMRConfig(n=4, f=1, synchronizer="adaptive")
        with pytest.raises(ValueError):
            SMRConfig(n=4, f=1, timeout_backoff=0.5)


class TestAsynchrony:
    def test_progress_despite_pre_gst_chaos(self):
        """Before GST messages are delayed arbitrarily; the system may churn
        through regencies but must deliver everything after GST."""
        sim = Simulator(26)
        from repro.config import CostModel
        costs = CostModel()
        costs.network.gst = 1.5
        costs.network.asynchrony_max = 0.4
        from repro.crypto.keys import KeyRegistry
        from repro.smr.keydir import KeyDirectory
        from repro.smr.replica import ModSmartReplica
        from repro.smr.service import MemoryDelivery
        from repro.smr.views import View
        from repro.apps.kvstore import KVStore

        network = Network(sim, costs.network)
        registry = KeyRegistry(26)
        keydir = KeyDirectory()
        view = View(0, (0, 1, 2, 3))
        config = SMRConfig(n=4, f=1, request_timeout=0.5)
        apps = [KVStore() for _ in view.members]
        replicas = [ModSmartReplica(sim, network, registry, keydir, rid, view,
                                    config, costs, MemoryDelivery(apps[rid]))
                    for rid in view.members]
        station = station_with_clients(sim, network, lambda: view, 5,
                                       lambda i: kv_ops(f"a{i}", 10))
        station.start_all()
        sim.run(until=60.0)
        assert station.meter.total == 50
        assert len({a.state_digest() for a in apps}) == 1
