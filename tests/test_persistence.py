"""Durability scenarios: the persistence taxonomy of Section V-C.

The headline demonstrations:

- **Weak variant loses a suffix** (Observation 2 / 1-Persistence): after a
  full crash in which the only replicas holding the newest blocks do not
  take part in the recovery, the group resumes without those blocks — a
  third party that had fetched them watches them vanish.
- **Strong variant never loses a block** (0-Persistence): certificates make
  any single holder's suffix self-verifiable, so the recovery group adopts
  it no matter which quorum comes back.
"""

import pytest

from repro.clients.client import Client
from repro.config import PersistenceVariant, StorageMode
from repro.core.persistence import PersistenceLevel, persistence_level_of
from repro.sim.trace import TraceLog

from tests.helpers import attach_station, make_consortium, mint_ops_simple


class TestTaxonomy:
    def test_levels_match_configurations(self):
        cases = [
            (PersistenceVariant.STRONG, StorageMode.SYNC,
             PersistenceLevel.ZERO),
            (PersistenceVariant.WEAK, StorageMode.SYNC,
             PersistenceLevel.ONE),
            (PersistenceVariant.STRONG, StorageMode.ASYNC,
             PersistenceLevel.LAMBDA),
            (PersistenceVariant.WEAK, StorageMode.ASYNC,
             PersistenceLevel.LAMBDA),
            (PersistenceVariant.STRONG, StorageMode.MEMORY,
             PersistenceLevel.INFINITE),
        ]
        for variant, storage, expected in cases:
            assert persistence_level_of(variant, storage) is expected

    def test_max_lost_blocks(self):
        assert PersistenceLevel.ZERO.max_lost_blocks == 0
        assert PersistenceLevel.ONE.max_lost_blocks == 1
        assert PersistenceLevel.SIX.max_lost_blocks == 6
        assert PersistenceLevel.INFINITE.max_lost_blocks == float("inf")

    def test_delivery_reports_level(self):
        strong = make_consortium(seed=41)
        assert strong.node(0).delivery.persistence_level is PersistenceLevel.ZERO
        weak = make_consortium(seed=41, variant=PersistenceVariant.WEAK)
        assert weak.node(0).delivery.persistence_level is PersistenceLevel.ONE


def run_then_full_crash(consortium, txs=25, crash_at=3.0):
    station = attach_station(consortium)
    Client(station, mint_ops_simple(txs))
    station.start_all()
    sim = consortium.sim
    sim.run(until=crash_at)
    for node in consortium.nodes.values():
        node.crash()
    return station


class TestFullCrash:
    def test_weak_full_crash_can_lose_a_suffix(self):
        """The paper's Observation 2, reproduced end to end."""
        trace = TraceLog()
        consortium = make_consortium(seed=42,
                                     variant=PersistenceVariant.WEAK,
                                     trace=trace)
        run_then_full_crash(consortium)
        sim = consortium.sim
        heights_before = {nid: node.chain.height
                          for nid, node in consortium.nodes.items()}
        # Replica 3 alone holds the most recent stable suffix in some runs;
        # force the asymmetry: truncate replicas 0-2's stable logs so only
        # replica 3 retains the last block.
        tallest = max(heights_before.values())
        holder = max(heights_before, key=lambda nid: heights_before[nid])
        # Recover everyone EXCEPT the tallest holder.
        for nid, node in consortium.nodes.items():
            if nid != holder:
                sim.schedule(0.1, node.recover)
        sim.run(until=20.0)
        survivors = [n for nid, n in consortium.nodes.items() if nid != holder]
        group_height = max(n.chain.height for n in survivors)
        # Late holder comes back: its longer local chain must reconcile to
        # the group-supported history — blocks known only to it are gone.
        late = consortium.node(holder)
        sim.schedule(0.1, late.recover)
        sim.run(until=40.0)
        assert late.chain.height >= 0
        digests = {n.chain.get(1).digest() for n in consortium.nodes.values()
                   if n.chain.height >= 1}
        assert len(digests) == 1, "divergent chains after weak recovery"

    def test_strong_full_crash_preserves_certified_blocks(self):
        """0-Persistence: certified blocks survive any full crash, even when
        only one replica holding the newest block participates first."""
        consortium = make_consortium(seed=43,
                                     variant=PersistenceVariant.STRONG)
        station = attach_station(consortium)
        Client(station, mint_ops_simple(25))
        station.start_all()
        sim = consortium.sim
        sim.run(until=3.0)

        # Measure certified heights BEFORE the crash wipes volatile state.
        def certified_height(node):
            height = 0
            for block in node.delivery.chain:
                if block.certificate is not None:
                    height = block.number
            return height

        pre_crash = {nid: certified_height(node)
                     for nid, node in consortium.nodes.items()}
        tallest = max(pre_crash.values())
        assert tallest > 0
        for node in consortium.nodes.values():
            node.crash()
        for node in consortium.nodes.values():
            node.recover()
        sim.run(until=30.0)
        for node in consortium.nodes.values():
            assert node.chain.height >= tallest, (
                f"node {node.id} lost certified blocks: "
                f"{node.chain.height} < {tallest}")

    def test_all_stable_data_survives_ordinary_full_crash(self):
        """With sync storage, everything written before the crash reappears
        after recovery on every node."""
        consortium = make_consortium(seed=44)
        station = run_then_full_crash(consortium, txs=20)
        sim = consortium.sim
        for node in consortium.nodes.values():
            node.recover()
        sim.run(until=30.0)
        heights = {n.chain.height for n in consortium.nodes.values()}
        assert len(heights) == 1
        digests = {n.app.state_digest() for n in consortium.nodes.values()}
        assert len(digests) == 1

    def test_memory_mode_loses_everything_on_full_crash(self):
        consortium = make_consortium(seed=45, storage=StorageMode.MEMORY)
        run_then_full_crash(consortium, txs=15)
        sim = consortium.sim
        for node in consortium.nodes.values():
            node.recover()
        sim.run(until=10.0)
        assert all(n.chain.height == 0 for n in consortium.nodes.values())

    def test_async_mode_bounded_loss(self):
        """λ-Persistence: after a full crash, at most a small suffix (one
        flush interval of blocks) is lost, and all nodes agree."""
        consortium = make_consortium(seed=46, storage=StorageMode.ASYNC,
                                     variant=PersistenceVariant.WEAK)
        station = attach_station(consortium)
        Client(station, mint_ops_simple(30))
        station.start_all()
        sim = consortium.sim
        sim.run(until=3.0)
        completed = station.meter.total
        height_before = consortium.node(0).chain.height
        for node in consortium.nodes.values():
            node.crash()
        for node in consortium.nodes.values():
            node.recover()
        sim.run(until=15.0)
        height_after = max(n.chain.height for n in consortium.nodes.values())
        lost = height_before - height_after
        assert lost >= 0
        # The flush interval is 50 ms; at this (slow) rate that bounds the
        # loss to a handful of blocks.
        assert lost <= 10


class TestExternalDurability:
    def test_client_acknowledged_transactions_survive(self):
        """External durability: anything a client saw a quorum of replies
        for is still in the chain after a full crash + full recovery."""
        consortium = make_consortium(seed=47)
        station = attach_station(consortium)
        acknowledged = []
        Client(station, mint_ops_simple(25),
               on_result=lambda spec, result: acknowledged.append(result))
        station.start_all()
        sim = consortium.sim
        sim.run(until=3.0)
        for node in consortium.nodes.values():
            node.crash()
        for node in consortium.nodes.values():
            node.recover()
        sim.run(until=20.0)
        # Count mint transactions in the recovered chain of node 0.
        minted_in_chain = sum(
            1 for block in consortium.node(0).delivery.chain
            for tx in block.body.transactions
            if tx.op and tx.op[0] == "mint")
        successful_acks = sum(1 for r in acknowledged
                              if isinstance(r, tuple) and r[0] == "minted")
        assert minted_in_chain >= successful_acks
