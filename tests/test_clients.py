"""Client station tests: quorum matching, resends, closed-loop pacing."""

import pytest

from repro.clients.client import Client, ClientStation, OpSpec
from repro.smr.requests import ReplyBatchMsg
from repro.crypto.hashing import hash_obj

from tests.helpers import kv_ops, make_cluster, station_with_clients


class TestQuorumMatching:
    def test_request_completes_at_reply_quorum(self):
        """3 matching replies (of n=4, f=1) complete an invocation; fewer
        do not."""
        sim, network, view, replicas, apps = make_cluster(seed=121)
        station = ClientStation(sim, network, 900, lambda: view)
        done = []
        client = Client(station, iter([OpSpec(("get", "x"))]),
                        on_result=lambda s, r: done.append(r))
        client.start()
        key = next(iter(station.outstanding))
        digest = hash_obj("match")
        for replica_id in (0, 1):
            station._on_message(replica_id, ReplyBatchMsg(
                replica_id=replica_id, results={key: ("v", digest)}))
        assert not done  # 2 < quorum 3
        station._on_message(2, ReplyBatchMsg(
            replica_id=2, results={key: ("v", digest)}))
        assert done == ["v"]

    def test_divergent_replies_do_not_complete(self):
        """A Byzantine replica sending a different result cannot make the
        client accept it."""
        sim, network, view, replicas, apps = make_cluster(seed=122)
        station = ClientStation(sim, network, 900, lambda: view)
        done = []
        client = Client(station, iter([OpSpec(("get", "x"))]),
                        on_result=lambda s, r: done.append(r))
        client.start()
        key = next(iter(station.outstanding))
        for replica_id in range(3):
            station._on_message(replica_id, ReplyBatchMsg(
                replica_id=replica_id,
                results={key: (f"evil-{replica_id}",
                               hash_obj(f"evil-{replica_id}"))}))
        assert not done

    def test_duplicate_replies_from_same_replica_ignored(self):
        sim, network, view, replicas, apps = make_cluster(seed=123)
        station = ClientStation(sim, network, 900, lambda: view)
        done = []
        client = Client(station, iter([OpSpec(("get", "x"))]),
                        on_result=lambda s, r: done.append(r))
        client.start()
        key = next(iter(station.outstanding))
        digest = hash_obj("v")
        for _ in range(5):
            station._on_message(0, ReplyBatchMsg(
                replica_id=0, results={key: ("v", digest)}))
        assert not done

    def test_late_replies_after_completion_ignored(self):
        sim, network, view, replicas, apps = make_cluster(seed=124)
        station = ClientStation(sim, network, 900, lambda: view)
        client = Client(station, iter([OpSpec(("get", "x"))]))
        client.start()
        key = next(iter(station.outstanding))
        digest = hash_obj("v")
        for replica_id in range(4):
            station._on_message(replica_id, ReplyBatchMsg(
                replica_id=replica_id, results={key: ("v", digest)}))
        assert key not in station.outstanding  # no crash on the 4th


class TestClosedLoop:
    def test_one_outstanding_request_per_client(self):
        sim, network, view, replicas, apps = make_cluster(seed=125)
        station = station_with_clients(sim, network, lambda: view, 1,
                                       lambda i: kv_ops("c", 10))
        station.start_all()
        max_outstanding = [0]

        def watch():
            max_outstanding[0] = max(max_outstanding[0],
                                     len(station.outstanding))
            sim.schedule(0.001, watch)

        sim.schedule(0.0, watch)
        sim.run(until=5.0)
        assert station.meter.total == 10
        assert max_outstanding[0] == 1

    def test_think_time_paces_clients(self):
        sim, network, view, replicas, apps = make_cluster(seed=126)
        station = ClientStation(sim, network, 900, lambda: view)
        Client(station, kv_ops("t", 5), think_time=0.5)
        station.start_all()
        sim.run(until=10.0)
        assert station.meter.total == 5
        assert sim.now >= 2.0  # 4 think gaps of 0.5 s

    def test_latency_recorded_per_request(self):
        sim, network, view, replicas, apps = make_cluster(seed=127)
        station = station_with_clients(sim, network, lambda: view, 2,
                                       lambda i: kv_ops(f"l{i}", 5))
        station.start_all()
        sim.run(until=5.0)
        assert station.latency.count == 10
        assert station.latency.mean() > 0

    def test_all_done_flag(self):
        sim, network, view, replicas, apps = make_cluster(seed=128)
        station = station_with_clients(sim, network, lambda: view, 3,
                                       lambda i: kv_ops(f"d{i}", 2))
        assert not station.all_done
        station.start_all()
        sim.run(until=5.0)
        assert station.all_done


class TestResend:
    def test_resend_recovers_lost_requests(self):
        """If the initial request batch is lost, the resend timer pushes it
        again and the request still completes."""
        sim, network, view, replicas, apps = make_cluster(seed=129)
        station = ClientStation(sim, network, 900, lambda: view,
                                resend_timeout=0.5)
        Client(station, kv_ops("r", 3))
        # Drop ALL station traffic for the first 0.3 s.
        for replica_id in view.members:
            network.set_drop_probability(900, replica_id, 1.0)
        sim.schedule(0.3, lambda: [
            network.set_drop_probability(900, rid, 0.0)
            for rid in view.members])
        station.start_all()
        sim.run(until=10.0)
        assert station.meter.total == 3
