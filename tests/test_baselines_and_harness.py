"""Baseline comparators, workload generators and harness smoke tests."""

import pytest

from repro.apps.smartcoin import SmartCoin, Wallet
from repro.baselines.fabric import FabricCluster, FabricConfig
from repro.baselines.tendermint import TendermintCluster, TendermintConfig
from repro.bench.harness import Scenario, run, run_smartchain
from repro.clients.client import Client, ClientStation
from repro.config import CostModel, PersistenceVariant, VerificationMode
from repro.net.network import Network
from repro.sim.engine import Simulator
from repro.workloads.coingen import (
    all_minter_addresses,
    client_address,
    deploy_clients,
    mint_ops,
    mint_then_spend,
    spend_ops,
)

from tests.helpers import MINTER, mint_ops_simple


class TestTendermintBaseline:
    def _run(self, txs=30, seed=131):
        sim = Simulator(seed)
        costs = CostModel()
        network = Network(sim, costs.network)
        cluster = TendermintCluster(sim, network, TendermintConfig(), costs,
                                    lambda: SmartCoin(minters=[MINTER]))
        view = cluster.view()
        station = ClientStation(sim, network, 900, lambda: view)
        Client(station, mint_ops_simple(txs))
        station.start_all()
        sim.run(until=60.0)
        return cluster, station

    def test_transactions_complete(self):
        cluster, station = self._run()
        assert station.meter.total == 30

    def test_states_converge_across_validators(self):
        cluster, station = self._run(seed=132)
        digests = {app.state_digest() for app in cluster.apps.values()}
        assert len(digests) == 1

    def test_proposer_rotates(self):
        cluster, station = self._run(seed=133)
        assert cluster.nodes[0].blocks_committed >= 2
        # Heights advanced, so the proposer role visited several validators.
        assert cluster.nodes[0].height > 2

    def test_double_write_happens(self):
        cluster, station = self._run(seed=134)
        entries = cluster.nodes[0].store.read_log("blocks")
        kinds = [e[0] for e in entries]
        assert "pre" in kinds and "post" in kinds
        assert kinds.count("pre") == kinds.count("post")


class TestFabricBaseline:
    def _run(self, txs=20, seed=141):
        sim = Simulator(seed)
        costs = CostModel()
        network = Network(sim, costs.network)
        cluster = FabricCluster(sim, network, FabricConfig(), costs,
                                lambda: SmartCoin(minters=[MINTER]))
        view = cluster.view()
        station = ClientStation(sim, network, 900, lambda: view)
        Client(station, mint_ops_simple(txs))
        station.start_all()
        sim.run(until=120.0)
        return cluster, station

    def test_transactions_complete_through_three_phases(self):
        cluster, station = self._run()
        assert station.meter.total == 20
        assert cluster.peers[0].blocks_committed >= 1

    def test_peers_converge(self):
        cluster, station = self._run(seed=142)
        digests = {app.state_digest() for app in cluster.apps.values()}
        assert len(digests) == 1

    def test_ledger_written(self):
        cluster, station = self._run(seed=143)
        assert cluster.peers[0].store.log_length("ledger") >= 1


class TestWorkloads:
    def test_mint_then_spend_chains_phases(self):
        wallet = Wallet(client_address(0))
        specs = list(mint_ops(wallet, 3))
        assert len(specs) == 3
        assert all(s.op[0] == "mint" for s in specs)
        # Simulate results so spends have coins to consume.
        for index, spec in enumerate(specs):
            wallet.note_result(spec.op, ("minted", (f"c{index}",)))
        spends = list(spend_ops(wallet, "other"))
        assert len(spends) == 3
        assert all(s.op[0] == "spend" for s in spends)

    def test_paper_sizes_on_specs(self):
        wallet = Wallet("a")
        mint = next(iter(mint_ops(wallet, 1)))
        assert (mint.size, mint.reply_size) == (180, 270)
        wallet.note_result(mint.op, ("minted", ("c",)))
        spend = next(iter(spend_ops(wallet, "b")))
        assert (spend.size, spend.reply_size) == (310, 380)

    def test_deploy_clients_spreads_over_stations(self):
        sim = Simulator(1)
        costs = CostModel()
        network = Network(sim, costs.network)
        from repro.smr.views import View
        view = View(0, (0,))
        network.register(0, lambda s, m: None)
        stations, wallets = deploy_clients(sim, network, lambda: view, 40,
                                           num_stations=4)
        assert len(stations) == 4
        assert len(wallets) == 40
        assert all(len(st.clients) == 10 for st in stations)

    def test_minter_addresses_cover_clients(self):
        addresses = all_minter_addresses(10)
        assert client_address(9) in addresses
        assert len(addresses) == 10


class TestHarness:
    def test_smartchain_run_produces_metrics(self):
        result = run(Scenario(variant=PersistenceVariant.WEAK, clients=200,
                              duration=1.5, seed=151))
        assert result.throughput > 500
        assert result.latency_mean > 0
        assert result.completed > 0
        assert result.metrics["blocks"] > 0

    def test_naive_run(self):
        result = run(Scenario(system="naive",
                              verification=VerificationMode.PARALLEL,
                              clients=200, duration=1.5, seed=152))
        assert result.throughput > 200

    def test_dura_run(self):
        result = run(Scenario(system="dura", clients=200, duration=1.5,
                              seed=153))
        assert result.throughput > 500

    def test_ordering_matches_paper(self):
        """The headline shape at reduced scale: naive-sequential < dura,
        and strong ≲ weak."""
        seq = run(Scenario(system="naive",
                           verification=VerificationMode.SEQUENTIAL,
                           clients=400, duration=2.0, seed=154))
        dura = run(Scenario(system="dura", clients=400, duration=2.0,
                            seed=154))
        assert dura.throughput > 2 * seq.throughput

    def test_result_row_formatting(self):
        result = run(Scenario(variant=PersistenceVariant.WEAK, clients=100,
                              duration=1.0, seed=155))
        row = result.row()
        assert "tx/s" in row and "ms" in row

    def test_seed_era_wrappers_deprecated_but_working(self):
        """The run_* entry points still work (byte-identical Scenario
        construction) but announce their deprecation."""
        with pytest.warns(DeprecationWarning, match="run_smartchain"):
            wrapped = run_smartchain(PersistenceVariant.WEAK, clients=100,
                                     duration=1.0, seed=155)
        direct = run(Scenario(variant=PersistenceVariant.WEAK, clients=100,
                              duration=1.0, seed=155))
        assert wrapped.throughput == direct.throughput
        assert wrapped.completed == direct.completed


class TestCalibration:
    def test_anchors_within_band(self):
        """The calibrated cost model stays within ±35% of every paper anchor
        at reduced scale (the benchmarks pin the shapes; this pins the fit)."""
        from repro.bench.calibration import calibration_report
        rows = calibration_report(clients=600, duration=2.0)
        for label, paper, measured, ratio in rows:
            assert 0.65 <= ratio <= 1.35, (
                f"{label}: measured {measured:.0f} vs paper {paper:.0f} "
                f"(ratio {ratio:.2f})")

    def test_cli_smoke(self):
        from repro.bench.__main__ import main
        assert main(["smartchain", "--clients", "200",
                     "--duration", "1.0"]) == 0
