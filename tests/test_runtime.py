"""Unit tests for the NodeRuntime interceptor pipeline."""

from dataclasses import dataclass

from repro.net.message import Message
from repro.net.network import Network, NetworkConfig
from repro.sim.engine import Simulator
from repro.smr.runtime import Interceptor, NodeRuntime


@dataclass
class Ping(Message):
    pass


@dataclass
class Pong(Message):
    pass


def build(node_id=1, peers=(2, 3)):
    """A runtime on node_id plus plain inbox endpoints for the peers."""
    sim = Simulator(1)
    net = Network(sim, NetworkConfig(latency=0.0, jitter=0.0))
    inboxes = {p: [] for p in peers}
    for p in peers:
        net.register(p, lambda s, m, p=p: inboxes[p].append((s, m)))
    runtime = NodeRuntime(sim, net, node_id)
    net.register(node_id, runtime.deliver)
    return sim, net, runtime, inboxes


class TestDispatch:
    def test_typed_handler_receives_matching_messages(self):
        sim, net, rt, _ = build()
        seen = []
        rt.register_handler(Ping, lambda s, m: seen.append((s, m)))
        net.send(2, 1, Ping(size=10))
        sim.run()
        assert len(seen) == 1 and seen[0][0] == 2
        assert isinstance(seen[0][1], Ping)

    def test_unhandled_type_is_ignored_without_fallback(self):
        sim, net, rt, _ = build()
        seen = []
        rt.register_handler(Ping, lambda s, m: seen.append(m))
        net.send(2, 1, Pong(size=10))
        sim.run()
        assert seen == []

    def test_fallback_catches_unhandled_types(self):
        sim, net, rt, _ = build()
        seen = []
        rt.register_handler(Ping, lambda s, m: None)
        rt.fallback = lambda s, m: seen.append(m)
        net.send(2, 1, Pong(size=10))
        sim.run()
        assert len(seen) == 1 and isinstance(seen[0], Pong)

    def test_dispatch_is_exact_type_not_subclass(self):
        # Ping subclasses Message; a Message handler must not catch Ping.
        sim, net, rt, _ = build()
        seen = []
        rt.register_handler(Message, lambda s, m: seen.append(m))
        net.send(2, 1, Ping(size=10))
        sim.run()
        assert seen == []

    def test_gate_blocks_all_delivery(self):
        sim, net, rt, _ = build()
        seen = []
        rt.register_handler(Ping, lambda s, m: seen.append(m))
        rt.gate = lambda: False
        net.send(2, 1, Ping(size=10))
        sim.run()
        assert seen == []


class _Drop(Interceptor):
    def on_inbound(self, src, msg):
        return None if isinstance(msg, Ping) else msg


class _Swap(Interceptor):
    def on_inbound(self, src, msg):
        return Pong(size=msg.size) if isinstance(msg, Ping) else msg


class TestInboundChain:
    def test_interceptor_can_drop(self):
        sim, net, rt, _ = build()
        seen = []
        rt.register_handler(Ping, lambda s, m: seen.append(m))
        rt.register_handler(Pong, lambda s, m: seen.append(m))
        rt.add_inbound(_Drop())
        net.send(2, 1, Ping(size=10))
        net.send(2, 1, Pong(size=10))
        sim.run()
        assert len(seen) == 1 and isinstance(seen[0], Pong)

    def test_interceptor_can_replace(self):
        sim, net, rt, _ = build()
        seen = []
        rt.register_handler(Pong, lambda s, m: seen.append(m))
        rt.add_inbound(_Swap())
        net.send(2, 1, Ping(size=10))
        sim.run()
        assert len(seen) == 1 and isinstance(seen[0], Pong)

    def test_chain_runs_in_installation_order(self):
        # Swap then Drop: the Ping becomes a Pong before Drop sees it,
        # so it survives.  Reversed order kills it first.
        for order, survives in ((_Swap(), _Drop()), True), ((_Drop(), _Swap()), False):
            sim, net, rt, _ = build()
            seen = []
            rt.register_handler(Pong, lambda s, m: seen.append(m))
            for interceptor in order:
                rt.add_inbound(interceptor)
            net.send(2, 1, Ping(size=10))
            sim.run()
            assert bool(seen) is survives


class _Redirect(Interceptor):
    def __init__(self, target):
        self.target = target

    def on_outbound(self, dst, msg):
        return [(self.target, msg)]


class _FanOut(Interceptor):
    def __init__(self, targets):
        self.targets = targets

    def on_outbound(self, dst, msg):
        return [(t, msg) for t in self.targets]


class _Mute(Interceptor):
    def on_outbound(self, dst, msg):
        return []


class TestOutboundChain:
    def test_rewrite_redirects_transmission(self):
        sim, net, rt, inboxes = build()
        rt.add_outbound(_Redirect(3))
        rt.send(2, Ping(size=10))
        sim.run()
        assert inboxes[2] == []
        assert len(inboxes[3]) == 1

    def test_fan_out_duplicates_transmission(self):
        sim, net, rt, inboxes = build()
        rt.add_outbound(_FanOut([2, 3]))
        rt.send(2, Ping(size=10))
        sim.run()
        assert len(inboxes[2]) == 1 and len(inboxes[3]) == 1

    def test_empty_rewrite_mutes_the_node(self):
        sim, net, rt, inboxes = build()
        rt.add_outbound(_Mute())
        rt.send(2, Ping(size=10))
        rt.broadcast([2, 3], Ping(size=10))
        sim.run()
        assert inboxes[2] == [] and inboxes[3] == []
        assert net.messages_sent == 0

    def test_broadcast_runs_chain_per_destination(self):
        sim, net, rt, inboxes = build()
        rt.add_outbound(_Redirect(3))
        rt.broadcast([2, 3], Ping(size=10))
        sim.run()
        assert inboxes[2] == []
        assert len(inboxes[3]) == 2

    def test_send_raw_bypasses_the_chain(self):
        sim, net, rt, inboxes = build()
        rt.add_outbound(_Mute())
        rt.send_raw(2, Ping(size=10))
        sim.run()
        assert len(inboxes[2]) == 1

    def test_no_interceptors_is_plain_network_send(self):
        sim, net, rt, inboxes = build()
        rt.send(2, Ping(size=10))
        rt.broadcast([2, 3], Ping(size=10))
        sim.run()
        assert len(inboxes[2]) == 2 and len(inboxes[3]) == 1
        assert net.messages_sent == 3


class _Recorder(Interceptor):
    def __init__(self):
        self.events = []

    def on_event(self, kind, fields):
        self.events.append((kind, fields))


class TestEventTaps:
    def test_observing_reflects_taps_and_recording(self):
        sim, net, rt, _ = build()
        assert rt.observing is False
        tap = _Recorder()
        rt.add_tap(tap)
        assert rt.observing is True
        rt.remove(tap)
        assert rt.observing is False
        sim.obs.record_events = True
        assert rt.observing is True

    def test_notify_fans_to_taps(self):
        _sim, _net, rt, _ = build()
        tap = _Recorder()
        rt.add_tap(tap)
        rt.notify("view-change", view=3)
        assert tap.events == [("view-change", {"view": 3})]

    def test_notify_records_in_event_log_when_enabled(self):
        sim, _net, rt, _ = build()
        sim.obs.record_events = True
        rt.notify("view-change", view=3)
        events = sim.obs.events.of_kind("view-change")
        assert len(events) == 1 and events[0].node == rt.id

    def test_notify_skips_event_log_when_disabled(self):
        sim, _net, rt, _ = build()
        rt.notify("view-change", view=3)
        assert len(sim.obs.events) == 0


class TestLifecycle:
    def test_install_attaches_everywhere_and_remove_detaches(self):
        sim, net, rt, inboxes = build()
        seen = []
        rt.register_handler(Ping, lambda s, m: seen.append(m))

        class Chaos(_Recorder):
            def on_inbound(self, src, msg):
                return None

            def on_outbound(self, dst, msg):
                return []

        chaos = Chaos()
        rt.install(chaos)
        assert rt.interceptors == [chaos]
        rt.send(2, Ping(size=10))
        net.send(2, 1, Ping(size=10))
        rt.notify("tick")
        sim.run()
        assert seen == [] and inboxes[2] == []
        assert chaos.events == [("tick", {})]

        rt.remove(chaos)
        assert rt.interceptors == []
        rt.send(2, Ping(size=10))
        net.send(2, 1, Ping(size=10))
        sim.run()
        assert len(seen) == 1 and len(inboxes[2]) == 1
