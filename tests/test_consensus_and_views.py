"""Unit tests for the consensus instance state machine and views."""

import pytest

from repro.consensus.instance import ConsensusInstance, Phase
from repro.crypto.keys import KeyRegistry
from repro.errors import ViewError
from repro.smr.views import View


def make_instance(quorum=3):
    return ConsensusInstance(cid=1, quorum=quorum)


def sig(registry, label, payload=b"x"):
    return registry.generate(label).sign(payload)


class TestInstance:
    def test_initial_phase_idle(self):
        instance = make_instance()
        assert instance.phase is Phase.IDLE
        assert not instance.decided

    def test_propose_triggers_write(self):
        instance = make_instance()
        assert instance.on_propose(0, ["req"], b"h1") is True
        assert instance.phase is Phase.PROPOSED

    def test_duplicate_propose_ignored(self):
        instance = make_instance()
        instance.on_propose(0, ["req"], b"h1")
        assert instance.on_propose(0, ["req"], b"h1") is False

    def test_conflicting_propose_ignored(self):
        """A Byzantine leader equivocating does not confuse the instance."""
        instance = make_instance()
        instance.on_propose(0, ["a"], b"h1")
        assert instance.on_propose(0, ["b"], b"h2") is False
        assert instance.batch_hash == b"h1"

    def test_write_quorum_triggers_accept(self):
        instance = make_instance(quorum=3)
        instance.on_propose(0, ["req"], b"h1")
        assert instance.on_write(0, b"h1") is False
        assert instance.on_write(1, b"h1") is False
        assert instance.on_write(2, b"h1") is True
        assert instance.phase is Phase.ACCEPTED

    def test_duplicate_writes_not_counted(self):
        instance = make_instance(quorum=3)
        instance.on_propose(0, ["req"], b"h1")
        for _ in range(5):
            assert instance.on_write(0, b"h1") is False

    def test_writes_for_other_hash_do_not_advance(self):
        instance = make_instance(quorum=3)
        instance.on_propose(0, ["req"], b"h1")
        for sender in range(3):
            assert instance.on_write(sender, b"other") is False
        assert instance.phase is Phase.PROPOSED

    def test_write_quorum_without_proposal_waits(self):
        instance = make_instance(quorum=3)
        for sender in range(3):
            instance.on_write(sender, b"h1")
        assert instance.phase is Phase.IDLE  # no batch yet

    def test_accept_quorum_decides(self):
        registry = KeyRegistry(1)
        instance = make_instance(quorum=3)
        instance.on_propose(0, ["req"], b"h1")
        decisions = []
        for sender in range(3):
            decided = instance.on_accept(sender, b"h1",
                                         sig(registry, f"r{sender}"))
            decisions.append(decided)
        assert decisions == [False, False, True]
        assert instance.decided
        assert instance.decided_hash == b"h1"

    def test_decision_proof_has_quorum_signatures(self):
        registry = KeyRegistry(1)
        instance = make_instance(quorum=3)
        instance.on_propose(0, ["req"], b"h1")
        for sender in range(3):
            instance.on_accept(sender, b"h1", sig(registry, f"r{sender}"))
        proof = instance.decision_proof()
        assert len(proof) == 3
        assert set(proof) == {0, 1, 2}

    def test_accepts_for_minority_hash_never_decide(self):
        registry = KeyRegistry(1)
        instance = make_instance(quorum=3)
        instance.on_propose(0, ["req"], b"h1")
        instance.on_accept(0, b"evil", sig(registry, "e0"))
        instance.on_accept(1, b"evil", sig(registry, "e1"))
        assert not instance.decided

    def test_writeset_recorded_on_accept_sent(self):
        instance = make_instance(quorum=3)
        instance.on_propose(2, ["req"], b"h1")
        instance.record_accept_sent(2)
        assert instance.writeset == (2, b"h1", ["req"])

    def test_reset_for_regency_preserves_writeset(self):
        instance = make_instance(quorum=3)
        instance.on_propose(1, ["req"], b"h1")
        instance.record_accept_sent(1)
        for sender in range(2):
            instance.on_write(sender, b"h1")
        instance.reset_for_regency(2)
        assert instance.phase is Phase.IDLE
        assert instance.batch is None
        assert instance.writeset == (1, b"h1", ["req"])
        assert instance.write_count(b"h1") == 0

    def test_no_decision_after_reset_until_requorum(self):
        registry = KeyRegistry(1)
        instance = make_instance(quorum=3)
        instance.on_propose(0, ["req"], b"h1")
        instance.on_accept(0, b"h1", sig(registry, "a"))
        instance.reset_for_regency(1)
        instance.on_propose(1, ["req"], b"h1")
        instance.on_accept(1, b"h1", sig(registry, "b"))
        instance.on_accept(2, b"h1", sig(registry, "c"))
        assert not instance.decided  # needs a fresh quorum of 3


class TestView:
    def test_failure_threshold(self):
        assert View(0, (0, 1, 2, 3)).f == 1
        assert View(0, tuple(range(7))).f == 2
        assert View(0, tuple(range(10))).f == 3

    def test_quorums_match_paper(self):
        # ⌈(n+f+1)/2⌉: 3 of 4, 5 of 7, 7 of 10.
        assert View(0, tuple(range(4))).quorum == 3
        assert View(0, tuple(range(7))).quorum == 5
        assert View(0, tuple(range(10))).quorum == 7

    def test_stop_quorum_is_2f_plus_1(self):
        assert View(0, tuple(range(4))).stop_quorum == 3
        assert View(0, tuple(range(10))).stop_quorum == 7

    def test_leader_rotation(self):
        view = View(0, (10, 20, 30, 40))
        assert view.leader(0) == 10
        assert view.leader(1) == 20
        assert view.leader(4) == 10

    def test_with_member(self):
        view = View(0, (0, 1, 2, 3))
        bigger = view.with_member(9)
        assert bigger.view_id == 1
        assert bigger.members == (0, 1, 2, 3, 9)
        with pytest.raises(ViewError):
            bigger.with_member(9)

    def test_without_member(self):
        view = View(3, (0, 1, 2, 3))
        smaller = view.without_member(2)
        assert smaller.view_id == 4
        assert smaller.members == (0, 1, 3)
        with pytest.raises(ViewError):
            smaller.without_member(2)

    def test_duplicate_members_rejected(self):
        with pytest.raises(ViewError):
            View(0, (1, 1, 2))

    def test_empty_view_rejected(self):
        with pytest.raises(ViewError):
            View(0, ())

    def test_contains(self):
        view = View(0, (5, 6))
        assert view.contains(5)
        assert not view.contains(7)

    def test_views_are_immutable_and_hashable(self):
        view = View(0, (0, 1, 2, 3))
        assert hash(view) == hash(View(0, (0, 1, 2, 3)))
        with pytest.raises(Exception):
            view.view_id = 5
