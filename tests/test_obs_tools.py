"""repro.obs v2 tooling: event log, trace export, report comparison, CLI.

Covers the deterministic-export guarantee (same seed → byte-identical
JSONL and trace JSON), the Chrome trace-event schema, the p99 quantiles,
the baseline comparison with tolerance bands, and the new bench CLI flags
(``--list``, ``--trace``, ``--events``, ``--check-against``, ``--audit``).
"""

import copy
import json
import pathlib

import pytest

from repro.bench.__main__ import main
from repro.bench.harness import Scenario, run
from repro.bench.wallclock import WALLCLOCK_SCHEMA
from repro.bench.wallclock import main as wallclock_main
from repro.config import StorageMode, VerificationMode
from repro.crypto.hashing import set_caches_enabled
from repro.obs.compare import (
    DEFAULT_LATENCY_TOLERANCE,
    DEFAULT_THROUGHPUT_TOLERANCE,
    ComparisonResult,
    compare_reports,
    compare_wallclock,
)
from repro.obs.events import EVENT_KINDS, EventLog
from repro.obs.metrics import Histogram
from repro.obs.traceview import TRACE_PHASES, build_trace, validate_trace
from repro.obs.report import validate_bench_report


def _observed(seed: int = 77):
    return run(Scenario(system="smartchain", clients=300, duration=2.0,
                        seed=seed, observe=True))


@pytest.fixture(scope="module")
def observed_run():
    return _observed()


class TestEventLog:
    def test_unknown_kind_rejected(self):
        log = EventLog()
        with pytest.raises(ValueError):
            log.emit("made-up-kind", 0, 0.0)

    def test_capacity_bound_counts_drops(self):
        log = EventLog(capacity=3)
        for index in range(5):
            log.emit("decide", 0, float(index), cid=index)
        assert len(log) == 3
        assert log.dropped == 2

    def test_run_records_only_known_kinds(self, observed_run):
        kinds = set(observed_run.handle.obs.events.counts())
        assert kinds
        assert kinds <= EVENT_KINDS

    def test_jsonl_lines_parse_and_are_ordered(self, observed_run):
        lines = observed_run.handle.obs.events.to_jsonl().splitlines()
        records = [json.loads(line) for line in lines]
        assert len(records) == len(observed_run.handle.obs.events)
        keys = [(r["time"], r["seq"]) for r in records]
        assert keys == sorted(keys)

    def test_disabled_run_records_nothing(self):
        result = run(Scenario(system="smartchain", clients=300, duration=2.0,
                              seed=77))
        assert len(result.handle.obs.events) == 0


class TestDeterminism:
    def test_same_seed_exports_are_byte_identical(self, observed_run):
        again = _observed()
        first, second = observed_run.handle.obs, again.handle.obs
        assert first.events.to_jsonl() == second.events.to_jsonl()
        trace_a = json.dumps(build_trace(first, horizon=3.0), sort_keys=True)
        trace_b = json.dumps(build_trace(second, horizon=3.0), sort_keys=True)
        assert trace_a == trace_b

    def test_different_seed_differs(self, observed_run):
        other = _observed(seed=78)
        assert (observed_run.handle.obs.events.to_jsonl()
                != other.handle.obs.events.to_jsonl())


class TestDeterminismUnderCaching:
    """The crypto caches are pure optimization: disabling them via the
    escape hatch must leave every export byte and every reported number
    unchanged (docs/performance.md)."""

    def test_cache_off_exports_and_summary_identical(self, observed_run):
        set_caches_enabled(False)
        try:
            uncached = _observed()
        finally:
            set_caches_enabled(True)
        assert (observed_run.handle.obs.events.to_jsonl()
                == uncached.handle.obs.events.to_jsonl())
        assert observed_run.report["summary"] == uncached.report["summary"]

    def test_table1_row_numbers_identical_cache_on_and_off(self):
        def row():
            return run(Scenario(
                system="naive", verification=VerificationMode.SEQUENTIAL,
                storage=StorageMode.SYNC, clients=300, duration=1.0, seed=5))

        cached = row()
        set_caches_enabled(False)
        try:
            uncached = row()
        finally:
            set_caches_enabled(True)
        assert cached.throughput == uncached.throughput
        assert cached.completed == uncached.completed
        assert cached.latency_mean == uncached.latency_mean
        assert cached.latency_p95 == uncached.latency_p95
        # The cached run saw real cache traffic; the uncached run none.
        assert cached.metrics["digest_cache_hits"] > 0
        assert uncached.metrics["digest_cache_hits"] == 0
        assert uncached.metrics["digest_cache_misses"] == 0

    def test_steady_state_digest_hit_rate(self):
        result = run(Scenario(
            system="naive", verification=VerificationMode.SEQUENTIAL,
            storage=StorageMode.SYNC, clients=1200, duration=2.5, seed=1))
        hits = result.metrics["digest_cache_hits"]
        misses = result.metrics["digest_cache_misses"]
        assert hits + misses > 10_000  # the run actually exercised the cache
        # Every unique payload is derived once per replica, so with n=4 the
        # structural ceiling on the hit rate is (n-1)/n = 75%; steady state
        # sits essentially at it.  A collapse below 70% means the memo keys
        # stopped matching (a regression in payload shapes or eviction).
        assert hits / (hits + misses) > 0.70
        assert result.metrics["verify_cache_hits"] > 0
        assert result.metrics["heap_compactions"] >= 0


class TestTraceExport:
    def test_trace_validates_and_covers_nodes(self, observed_run):
        obs = observed_run.handle.obs
        trace = validate_trace(build_trace(obs, horizon=3.0))
        events = trace["traceEvents"]
        assert {e["ph"] for e in events} <= set(TRACE_PHASES)
        instants = [e for e in events if e["ph"] == "i"]
        assert len(instants) == len(obs.events)
        slices = [e for e in events if e["ph"] == "X"]
        assert slices and all(e["dur"] >= 0 for e in slices)
        # One named process track per replica.
        names = {e["args"]["name"] for e in events
                 if e["ph"] == "M" and e["name"] == "process_name"}
        assert {"node-0", "node-1", "node-2", "node-3"} <= names

    def test_trace_round_trips_json(self, observed_run):
        trace = build_trace(observed_run.handle.obs, horizon=3.0)
        validate_trace(json.loads(json.dumps(trace)))

    def test_request_flow_arrows_pair_up(self, observed_run):
        # Every completed request gets one "s" → "f" flow pair sharing an
        # id, anchored at its submit/reply instants on the station track.
        trace = validate_trace(build_trace(observed_run.handle.obs,
                                           horizon=3.0))
        starts = {e["id"]: e for e in trace["traceEvents"]
                  if e["ph"] == "s"}
        ends = {e["id"]: e for e in trace["traceEvents"] if e["ph"] == "f"}
        assert starts and set(starts) == set(ends)
        for flow_id, start in starts.items():
            end = ends[flow_id]
            assert start["ts"] <= end["ts"]
            assert end["bp"] == "e"
            assert start["args"] == end["args"]

    def test_validator_rejects_malformed_trace(self, observed_run):
        trace = json.loads(json.dumps(
            build_trace(observed_run.handle.obs, horizon=3.0)))
        trace["traceEvents"][0]["ph"] = "Z"
        with pytest.raises(ValueError):
            validate_trace(trace)
        with pytest.raises(ValueError):
            validate_trace({"traceEvents": []})
        flow = dict(next(e for e in trace["traceEvents"]
                         if e["ph"] == "s"))
        del flow["id"]
        with pytest.raises(ValueError):
            validate_trace({"traceEvents": [flow]})


class TestQuantiles:
    def test_histogram_reports_p99(self):
        histogram = Histogram()
        for value in range(1, 101):
            histogram.observe(float(value))
        summary = histogram.summary()
        assert summary["p50"] <= summary["p95"] <= summary["p99"]
        assert summary["p99"] >= 99.0

    def test_report_carries_p99_latency_and_phases(self, observed_run):
        summary = observed_run.report["summary"]
        assert summary["latency_p99_s"] >= summary["latency_p95_s"]
        for stats in observed_run.report["phases"].values():
            assert stats["p99_s"] >= stats["p95_s"]


class TestCompareReports:
    @pytest.fixture()
    def bench_report(self, observed_run):
        return {"schema": "repro.obs/bench-report/v1", "experiment": "x",
                "options": {"clients": 300, "seed": 77},
                "runs": [observed_run.report]}

    def test_identical_reports_match(self, bench_report):
        result = compare_reports(bench_report, bench_report)
        assert isinstance(result, ComparisonResult)
        assert result.ok and result.matched_runs == 1
        assert "OK" in result.format()

    def test_throughput_drift_beyond_tolerance_flagged(self, bench_report):
        tampered = copy.deepcopy(bench_report)
        tampered["runs"][0]["summary"]["throughput_tx_s"] *= 2.0
        result = compare_reports(bench_report, tampered)
        assert not result.ok
        assert any(d.metric == "throughput_tx_s" for d in result.deviations)

    def test_drift_within_tolerance_passes(self, bench_report):
        tampered = copy.deepcopy(bench_report)
        tampered["runs"][0]["summary"]["throughput_tx_s"] *= 1.05
        assert compare_reports(bench_report, tampered).ok

    def test_missing_run_and_option_mismatch_flagged(self, bench_report):
        current = copy.deepcopy(bench_report)
        current["runs"] = []
        current["options"]["seed"] = 99
        result = compare_reports(bench_report, current)
        assert not result.ok
        metrics = {d.metric for d in result.deviations}
        assert "presence" in metrics
        assert any(m.startswith("options.") for m in metrics)

    def test_drift_exactly_at_band_edge_passes(self, bench_report):
        # The band is inclusive: |current - baseline| <= tol * |baseline|.
        # Binary-exact values (0.5 baseline, 0.25 tolerance) pin the edge
        # without float rounding deciding the outcome.
        assert DEFAULT_LATENCY_TOLERANCE == 0.25
        baseline = copy.deepcopy(bench_report)
        baseline["runs"][0]["summary"]["latency_mean_s"] = 0.5
        tampered = copy.deepcopy(baseline)
        tampered["runs"][0]["summary"]["latency_mean_s"] = 0.625  # +25%
        assert compare_reports(baseline, tampered).ok
        tampered["runs"][0]["summary"]["latency_mean_s"] = 0.375  # -25%
        assert compare_reports(baseline, tampered).ok

    def test_drift_just_beyond_band_edge_fails(self, bench_report):
        baseline = copy.deepcopy(bench_report)
        baseline["runs"][0]["summary"]["latency_mean_s"] = 0.5
        tampered = copy.deepcopy(baseline)
        tampered["runs"][0]["summary"]["latency_mean_s"] = 0.6251
        result = compare_reports(baseline, tampered)
        assert not result.ok
        assert [d.metric for d in result.deviations] == ["latency_mean_s"]
        tampered["runs"][0]["summary"]["latency_mean_s"] = 0.3749
        assert not compare_reports(baseline, tampered).ok

    def test_throughput_band_uses_its_own_tolerance(self, bench_report):
        tampered = copy.deepcopy(bench_report)
        summary = tampered["runs"][0]["summary"]
        base = bench_report["runs"][0]["summary"]["throughput_tx_s"]
        summary["throughput_tx_s"] = base * (
            1.0 + DEFAULT_THROUGHPUT_TOLERANCE - 0.01)
        assert compare_reports(bench_report, tampered).ok
        summary["throughput_tx_s"] = base * (
            1.0 + DEFAULT_THROUGHPUT_TOLERANCE + 0.01)
        result = compare_reports(bench_report, tampered)
        assert [d.metric for d in result.deviations] == ["throughput_tx_s"]

    def test_zero_baseline_requires_zero_current(self, bench_report):
        zeroed = copy.deepcopy(bench_report)
        zeroed["runs"][0]["summary"]["throughput_tx_s"] = 0.0
        tampered = copy.deepcopy(zeroed)
        assert compare_reports(zeroed, tampered).ok
        tampered["runs"][0]["summary"]["throughput_tx_s"] = 0.001
        assert not compare_reports(zeroed, tampered).ok

    def test_missing_metric_is_skipped_not_flagged(self, bench_report):
        # A baseline predating a metric must not fail against newer reports
        # (and vice versa): absent values are skipped, not treated as drift.
        older = copy.deepcopy(bench_report)
        del older["runs"][0]["summary"]["latency_p95_s"]
        assert compare_reports(older, bench_report).ok
        assert compare_reports(bench_report, older).ok


class TestCompareWallclock:
    @pytest.fixture()
    def wallclock_report(self):
        return {"schema": WALLCLOCK_SCHEMA, "mode": "quick", "seed": 1,
                "reps": 2, "clients": 300, "duration": 1.0,
                "rows": [
                    {"label": "naive seq sync", "wall_s": 0.10, "events": 6407},
                    {"label": "dura-smart", "wall_s": 0.50, "events": 20266},
                ],
                "total_wall_s": 0.60}

    def test_self_comparison_ok(self, wallclock_report):
        result = compare_wallclock(wallclock_report, wallclock_report)
        assert result.ok and result.matched_runs == 2

    def test_speedup_never_fails(self, wallclock_report):
        faster = copy.deepcopy(wallclock_report)
        for row in faster["rows"]:
            row["wall_s"] /= 10.0
        assert compare_wallclock(wallclock_report, faster).ok

    def test_budget_exceeded_flagged(self, wallclock_report):
        slower = copy.deepcopy(wallclock_report)
        slower["rows"][1]["wall_s"] *= 4.0  # past the default 3x budget
        result = compare_wallclock(wallclock_report, slower)
        assert not result.ok
        assert [d.metric for d in result.deviations] == ["wall_s"]
        assert result.deviations[0].label == "dura-smart"

    def test_event_drift_flagged(self, wallclock_report):
        drifted = copy.deepcopy(wallclock_report)
        drifted["rows"][0]["events"] = int(
            drifted["rows"][0]["events"] * 1.5)
        result = compare_wallclock(wallclock_report, drifted)
        assert not result.ok
        assert [d.metric for d in result.deviations] == ["events"]

    def test_mode_and_missing_row_flagged(self, wallclock_report):
        current = copy.deepcopy(wallclock_report)
        current["mode"] = "full"
        current["rows"] = current["rows"][:1]
        result = compare_wallclock(wallclock_report, current)
        metrics = {d.metric for d in result.deviations}
        assert "mode" in metrics
        assert "presence" in metrics


class TestWallclockCLI:
    def test_quick_suite_report_and_self_check(self, tmp_path, capsys):
        out = tmp_path / "wallclock.json"
        assert wallclock_main(["--quick", "--reps", "1",
                               "--out", str(out)]) == 0
        report = json.loads(out.read_text(encoding="utf-8"))
        assert report["schema"] == WALLCLOCK_SCHEMA
        assert len(report["rows"]) == 5
        for row in report["rows"]:
            assert row["wall_s"] > 0
            assert row["events"] > 0
            assert 0 < row["digest_cache_hit_rate"] <= 1
        assert report["total_wall_s"] > 0
        # Same seed, same machine: a self-check is within any budget.
        assert wallclock_main(["--quick", "--reps", "1",
                               "--check-against", str(out)]) == 0
        capsys.readouterr()

    def test_committed_baseline_matches_current_code(self, capsys):
        # The CI gate: event counts in the committed baseline must match
        # what the code produces today (wall time has the 3x budget).
        baseline = (pathlib.Path(__file__).resolve().parents[1]
                    / "benchmarks" / "results" / "BENCH_wallclock.json")
        assert wallclock_main(["--quick", "--reps", "1",
                               "--check-against", str(baseline)]) == 0
        capsys.readouterr()

    def test_profile_attaches_entries(self, tmp_path, capsys):
        out = tmp_path / "wallclock.json"
        assert wallclock_main(["--quick", "--reps", "1", "--profile",
                               "--out", str(out)]) == 0
        report = json.loads(out.read_text(encoding="utf-8"))
        assert report["profile"]
        entry = report["profile"][0]
        assert {"function", "ncalls", "tottime_s", "cumtime_s"} <= set(entry)
        assert "cumulative" in capsys.readouterr().err


class TestCLI:
    def test_list_exits_cleanly(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in ("table1", "table2", "calibration", "smartchain"):
            assert name in out
        assert "observe" in out  # Scenario defaults are printed

    def test_smoke_with_exports_and_audit(self, tmp_path, capsys):
        report = tmp_path / "report.json"
        trace = tmp_path / "trace.json"
        events = tmp_path / "events.jsonl"
        code = main(["--smoke", "--audit", "--report", str(report),
                     "--trace", str(trace), "--events", str(events)])
        assert code == 0
        capsys.readouterr()
        bench = validate_bench_report(
            json.loads(report.read_text(encoding="utf-8")))
        assert bench["runs"][0]["audit"]["violations"] == []
        validate_trace(json.loads(trace.read_text(encoding="utf-8")))
        lines = events.read_text(encoding="utf-8").splitlines()
        assert lines and all(json.loads(line) for line in lines)
        # The exported stream matches the report's event count.
        assert len(lines) == bench["runs"][0]["events"]["count"]

    def test_smoke_profile_prints_and_attaches_top_functions(self, tmp_path,
                                                             capsys):
        report = tmp_path / "report.json"
        assert main(["--smoke", "--profile", "--report", str(report)]) == 0
        assert "cumulative" in capsys.readouterr().err
        data = json.loads(report.read_text(encoding="utf-8"))
        assert data["profile"]
        assert "function" in data["profile"][0]

    def test_check_against_self_passes_and_tamper_fails(self, tmp_path,
                                                        capsys):
        baseline = tmp_path / "baseline.json"
        assert main(["--smoke", "--report", str(baseline)]) == 0
        assert main(["--smoke", "--check-against", str(baseline)]) == 0
        data = json.loads(baseline.read_text(encoding="utf-8"))
        data["runs"][0]["summary"]["throughput_tx_s"] *= 2.0
        tampered = tmp_path / "tampered.json"
        tampered.write_text(json.dumps(data), encoding="utf-8")
        assert main(["--smoke", "--check-against", str(tampered)]) == 1
        err = capsys.readouterr().err
        assert "deviation" in err

    def test_flags_accepted_after_experiment_name(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        code = main(["smartchain", "--clients", "300", "--duration", "2.0",
                     "--trace", str(trace)])
        assert code == 0
        capsys.readouterr()
        validate_trace(json.loads(trace.read_text(encoding="utf-8")))
