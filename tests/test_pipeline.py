"""Pipelined consensus and parallel deterministic execution.

Covers the ``pipeline_depth``/``exec_cores`` knobs end to end: the
dependency scheduler (:mod:`repro.smr.scheduler`), decision sequencing
across an in-flight window, the leader's stall watchdog under withheld
votes, the double-propose guard, and the committed ``BENCH_pipeline.json``
baseline (including the depth=1/cores=1 row matching Table I).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.kvstore import KVStore
from repro.apps.smartcoin import SmartCoin, coin_id
from repro.bench.harness import Scenario, run
from repro.config import SMRConfig
from repro.faults.plan import BehaviorSpec, FaultPlan
from repro.obs.compare import compare_reports
from repro.smr import scheduler
from repro.smr.requests import ClientRequest, Decision
from tests.helpers import (
    MINTER,
    kv_ops,
    make_cluster,
    mint_ops_simple,
    station_with_clients,
)

RESULTS = Path(__file__).resolve().parent.parent / "benchmarks" / "results"
DURA_LABEL = "Durable-SMaRt (parallel verify, sync writes, n=4)"


def load_baseline(name: str) -> dict:
    with open(RESULTS / name, encoding="utf-8") as fh:
        return json.load(fh)


def mint_request(client_id: int, req_id: int, outputs: int = 1) -> ClientRequest:
    op = ("mint", MINTER, tuple((1, i) for i in range(outputs)))
    return ClientRequest(client_id=client_id, req_id=req_id, op=op,
                         signed=False)


def level_of(plan: scheduler.ExecutionPlan) -> dict:
    return {req.key: index
            for index, level in enumerate(plan.levels)
            for req in level}


# ======================================================================
# Dependency scheduler (plan_batch / parallel_execution)
# ======================================================================

class TestPlanBatch:
    def test_disjoint_mints_share_one_level(self):
        app = SmartCoin(minters=[MINTER])
        batch = [mint_request(client, 1) for client in range(1, 9)]
        plan = scheduler.plan_batch(app, batch)
        assert plan.critical_path == 1
        assert plan.n_ops == 8
        assert plan.barrier_ops == 0

    def test_spend_of_minted_coin_lands_on_a_later_level(self):
        app = SmartCoin(minters=[MINTER])
        mint = mint_request(1, 1)
        spend = ClientRequest(
            client_id=2, req_id=1,
            op=("spend", "alice", (coin_id(1, 1, 0),), (("bob", 1),)),
            signed=False)
        unrelated = mint_request(3, 1)
        plan = scheduler.plan_batch(app, [mint, spend, unrelated])
        levels = level_of(plan)
        assert levels[spend.key] == levels[mint.key] + 1
        assert levels[unrelated.key] == levels[mint.key]

    def test_footprint_free_op_is_a_barrier(self):
        app = SmartCoin(minters=[MINTER])
        before = mint_request(1, 1)
        balance = ClientRequest(client_id=2, req_id=1,
                                op=("balance", "alice"), signed=False)
        after = mint_request(3, 1)
        plan = scheduler.plan_batch(app, [before, balance, after])
        assert plan.barrier_ops == 1
        levels = level_of(plan)
        assert levels[before.key] < levels[balance.key] < levels[after.key]

    def test_plan_preserves_batch_order_within_levels(self):
        app = SmartCoin(minters=[MINTER])
        batch = [mint_request(client, 1) for client in range(1, 6)]
        plan = scheduler.plan_batch(app, batch)
        assert [req.key for req in plan.levels[0]] == [r.key for r in batch]


class TestParallelExecutionGate:
    def test_requires_pool_and_conflict_declarations(self):
        _, _, _, serial, _ = make_cluster(config=SMRConfig(n=4, f=1))
        assert serial[0].exec_pool is None
        assert not scheduler.parallel_execution(
            serial[0], SmartCoin(minters=[MINTER]))

        _, _, _, pooled, apps = make_cluster(
            config=SMRConfig(n=4, f=1, exec_cores=4),
            app_factory=lambda: SmartCoin(minters=[MINTER]))
        assert pooled[0].exec_pool is not None
        assert scheduler.parallel_execution(pooled[0], apps[0])
        # KVStore declares no footprints: stays on the serial path even
        # when an execution pool exists.
        assert not scheduler.parallel_execution(pooled[0], KVStore())

    def test_knobs_reject_non_positive_values(self):
        with pytest.raises(ValueError):
            SMRConfig(n=4, f=1, pipeline_depth=0)
        with pytest.raises(ValueError):
            SMRConfig(n=4, f=1, exec_cores=0)
        with pytest.raises(ValueError):
            Scenario(pipeline_depth=0)
        with pytest.raises(ValueError):
            Scenario(exec_cores=-1)


# ======================================================================
# Determinism: exec_cores must not change any replicated outcome
# ======================================================================

def run_coin_cluster(seed: int, cores: int):
    sim, network, view, replicas, apps = make_cluster(
        seed=seed,
        config=SMRConfig(n=4, f=1, exec_cores=cores),
        app_factory=lambda: SmartCoin(minters=[MINTER]))
    station = station_with_clients(sim, network, lambda: view, 4,
                                   lambda index: mint_ops_simple(4))
    station.start_all()
    sim.run(until=3.0)
    assert station.meter.total == 16
    logs = {tuple(d.batch_hash for d in r.delivery.log) for r in replicas}
    assert len(logs) == 1, "replicas diverged within one run"
    digests = {app.state_digest() for app in apps}
    assert len(digests) == 1, "application state diverged within one run"
    app = apps[0]
    assert app.rejected == 0
    assert len(app.coins) == 16, "not every mint executed"
    return digests.pop()


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=5, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_exec_cores_never_change_replicated_state(seed):
    """The core count is a pure timing model: the replicated state digest
    is byte-identical for exec_cores in {1, 2, 4} on the same seed."""
    digests = {cores: run_coin_cluster(seed, cores) for cores in (1, 2, 4)}
    assert digests[1] == digests[2] == digests[4]


# ======================================================================
# Pipelined ordering
# ======================================================================

def test_pipelined_ordering_converges():
    sim, network, view, replicas, apps = make_cluster(
        config=SMRConfig(n=4, f=1, pipeline_depth=4, batch_size=4))
    assert replicas[0].pipeline_window == 4
    station = station_with_clients(sim, network, lambda: view, 8,
                                   lambda index: kv_ops(f"c{index}", 5))
    station.start_all()
    sim.run(until=5.0)
    assert station.meter.total == 40
    logs = {tuple(d.batch_hash for d in r.delivery.log) for r in replicas}
    assert len(logs) == 1
    digests = {app.state_digest() for app in apps}
    assert len(digests) == 1
    assert len({r.last_decided for r in replicas}) == 1
    # 40 puts at batch_size=4: the window ordered many instances.
    assert replicas[0].last_decided >= 9
    assert all(len(app.data) == 40 for app in apps)


def test_decision_buffer_heals_gaps_across_the_window():
    """Out-of-order decisions spanning several in-flight instances buffer
    until the gap closes, then deliver in cid order exactly once."""
    sim, _, _, replicas, _ = make_cluster(
        config=SMRConfig(n=4, f=1, pipeline_depth=4))
    follower = replicas[2]

    def decision(cid: int) -> Decision:
        batch = [ClientRequest(client_id=50 + cid, req_id=i,
                               op=("put", f"k{cid}-{i}", i), signed=False)
                 for i in range(3)]
        return Decision(cid=cid, batch=batch, proof={},
                        batch_hash=bytes([65 + cid]) * 8, regency=0,
                        decided_at=0.0)

    decisions = [decision(cid) for cid in range(3)]
    follower.handle_decision(decisions[2])
    follower.handle_decision(decisions[1])
    assert follower.last_decided == -1
    assert set(follower.decision_buffer) == {1, 2}
    follower.handle_decision(decisions[0])
    assert follower.last_decided == 2
    assert not follower.decision_buffer
    sim.run(until=0.5)
    assert [d.cid for d in follower.delivery.log] == [0, 1, 2]
    # Stale redelivery is ignored.
    follower.handle_decision(decisions[1])
    sim.run(until=1.0)
    assert [d.cid for d in follower.delivery.log] == [0, 1, 2]


def test_double_propose_guard_keeps_requests_flowing():
    """Re-arming the proposer inside the PROPOSE loopback window (before
    the leader's self-addressed copy opens the instance) must not propose
    the same cid twice — that would strand the second batch's requests in
    ``inflight`` forever."""
    sim, _, _, replicas, apps = make_cluster(
        config=SMRConfig(n=4, f=1, batch_size=8))
    requests = [ClientRequest(client_id=60, req_id=i, op=("put", f"r{i}", i),
                              signed=False) for i in range(16)]
    for replica in replicas:
        replica.ingest_requests(list(requests))
    leader = replicas[0]
    # Simulate the re-arm race: a second trigger while the first PROPOSE
    # is still in flight and a full batch is still ready.
    leader.maybe_propose()
    sim.run(until=2.0)
    assert all(r.last_decided == 1 for r in replicas)
    assert all(len(app.data) == 16 for app in apps)
    assert not leader.inflight
    assert not leader.pending


# ======================================================================
# Stall watchdog under withheld votes
# ======================================================================

def test_withheld_votes_emit_pipeline_stalled_event():
    plan = FaultPlan(
        name="withhold-quorum",
        behaviors=(BehaviorSpec("withhold-votes", nodes=(1, 2), after=0.5),),
        protocol={"request_timeout": 0.5},
    )
    result = run(Scenario(clients=300, duration=2.0, seed=1, observe=True,
                          faults=plan, pipeline_depth=4))
    counts = result.handle.obs.events.counts()
    assert counts.get("pipeline-stalled", 0) >= 1


# ======================================================================
# Committed baselines
# ======================================================================

def sub_report(report: dict, label: str) -> dict:
    runs = [r for r in report["runs"] if r["label"] == label]
    assert len(runs) == 1, f"expected exactly one {label!r} run"
    return {"experiment": "pipeline", "options": report["options"],
            "runs": runs}


def test_pipeline_baseline_depth1_row_matches_table1():
    """The committed depth=1/cores=1 sweep corner is the Table I
    Durable-SMaRt row — same label, same summary within tolerance."""
    pipeline = load_baseline("BENCH_pipeline.json")
    table1 = load_baseline("BENCH_table1.json")
    assert pipeline["options"] == table1["options"]
    comparison = compare_reports(sub_report(table1, DURA_LABEL),
                                 sub_report(pipeline, DURA_LABEL))
    assert comparison.ok, comparison.format()


def test_pipeline_baseline_records_required_speedup():
    pipeline = load_baseline("BENCH_pipeline.json")
    throughput = {r["label"]: r["summary"]["throughput_tx_s"]
                  for r in pipeline["runs"]}
    base = throughput[DURA_LABEL]
    deep = throughput[DURA_LABEL[:-1] + ", depth=4, cores=2)"]
    assert deep >= 1.5 * base


def test_default_knobs_check_against_committed_baselines():
    """Acceptance gate: a fresh depth=1/cores=1 run of the Table I
    Durable-SMaRt row passes ``--check-against`` both committed baselines
    (the sweep's own corner and the original Table I report)."""
    result = run(Scenario(system="dura", clients=1200, duration=2.5, seed=1,
                          observe=True, pipeline_depth=1, exec_cores=1))
    assert result.label == DURA_LABEL
    assert result.report is not None
    options = {"clients": 1200, "duration": 2.5, "seed": 1}
    current = {"experiment": "pipeline", "options": options,
               "runs": [result.report]}
    for name in ("BENCH_pipeline.json", "BENCH_table1.json"):
        committed = load_baseline(name)
        comparison = compare_reports(sub_report(committed, DURA_LABEL),
                                     current)
        assert comparison.ok, f"{name}: {comparison.format()}"
