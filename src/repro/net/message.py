"""Wire message base class and size accounting.

Throughput in the reproduced testbed is sensitive to message size (the paper
stresses that 310-byte SPEND transactions cap plain BFT-SMART at 33k tx/s
versus 80k tx/s for tiny requests), so every message carries an explicit
wire size used by the network's bandwidth model.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

__all__ = ["Message", "HEADER_OVERHEAD_BYTES"]

#: Fixed per-message framing overhead (TCP/IP + session headers), applied by
#: the network on top of the declared payload size.
HEADER_OVERHEAD_BYTES = 66

_message_ids = itertools.count(1)


@dataclass
class Message:
    """Base class for everything sent through :class:`repro.net.Network`.

    Subclasses add payload fields and must pass a realistic ``size`` —
    the serialized payload size in bytes.
    """

    size: int = field(default=64, kw_only=True)
    msg_id: int = field(default_factory=lambda: next(_message_ids), kw_only=True)

    # Computed lazily on first wire_size() call; a broadcast shares one
    # Message object across all destinations, so the sum is reused per hop.
    _wire: int | None = field(default=None, init=False, repr=False, compare=False)

    @property
    def kind(self) -> str:
        """Short type tag used by traces and tests."""
        return type(self).__name__

    def wire_size(self) -> int:
        """Bytes occupying the link, including framing overhead.

        Cached after the first call — ``size`` is fixed at construction."""
        wire = self._wire
        if wire is None:
            wire = self._wire = self.size + HEADER_OVERHEAD_BYTES
        return wire
