"""Simulated authenticated point-to-point network."""

from repro.net.message import HEADER_OVERHEAD_BYTES, Message
from repro.net.network import Endpoint, Network, NetworkConfig

__all__ = [
    "HEADER_OVERHEAD_BYTES",
    "Message",
    "Endpoint",
    "Network",
    "NetworkConfig",
]
