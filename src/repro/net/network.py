"""Simulated point-to-point network.

Models the paper's testbed: a 1 Gbps switched LAN connecting every pair of
machines, with authenticated fair links and an *eventually synchronous*
timing model (asynchronous until an unknown global stabilization time GST,
synchronous afterwards).

Model
-----
- Each endpoint owns an egress NIC modelled as a single-server
  :class:`~repro.sim.resource.Resource`: outgoing messages serialize at
  ``wire_size / bandwidth`` — a leader broadcasting 512-transaction batches
  to nine replicas is bandwidth-bound exactly as on real hardware.
- Propagation adds a base latency plus uniform jitter.
- Before GST, deliveries suffer additional random delay (bounded by
  ``asynchrony_max``), which exercises timeout/leader-change paths.
- Links are reliable by default (BFT-SMART runs over TCP); tests inject
  drops, delays and partitions explicitly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Iterable

from repro.errors import NetworkError
from repro.net.message import Message
from repro.sim.engine import Simulator
from repro.sim.resource import Resource

__all__ = ["NetworkConfig", "Network", "Endpoint"]

Handler = Callable[[Hashable, Message], None]


@dataclass
class NetworkConfig:
    """Timing parameters of the simulated LAN.

    Defaults approximate the paper's 1 Gbps switched network of Section VI-A.
    """

    latency: float = 0.00025           # one-way propagation, seconds
    jitter: float = 0.00005            # uniform [0, jitter] extra delay
    bandwidth_bps: float = 1e9         # per-NIC egress bandwidth, bits/s
    gst: float = 0.0                   # global stabilization time
    asynchrony_max: float = 0.05       # max extra delay before GST


class Endpoint:
    """A registered network participant (replica, client station, ...)."""

    def __init__(self, network: "Network", node_id: Hashable, handler: Handler):
        self.network = network
        self.node_id = node_id
        self.handler = handler
        self.nic = Resource(network.sim, servers=1, name=f"nic:{node_id}")
        self.up = True

    def send(self, dst: Hashable, msg: Message) -> None:
        self.network.send(self.node_id, dst, msg)

    def broadcast(self, dsts: Iterable[Hashable], msg: Message) -> None:
        self.network.broadcast(self.node_id, dsts, msg)


class Network:
    """The switched LAN connecting all processes.

    Example
    -------
    >>> from repro.sim import Simulator
    >>> sim = Simulator()
    >>> net = Network(sim)
    >>> seen = []
    >>> _ = net.register("a", lambda src, m: None)
    >>> _ = net.register("b", lambda src, m: seen.append((src, m.kind)))
    >>> net.send("a", "b", Message(size=100))
    >>> sim.run()
    >>> seen
    [('a', 'Message')]
    """

    def __init__(self, sim: Simulator, config: NetworkConfig | None = None):
        self.sim = sim
        self.config = config or NetworkConfig()
        self._endpoints: dict[Hashable, Endpoint] = {}
        self._blocked: set[tuple[Hashable, Hashable]] = set()
        self._drop_prob: dict[tuple[Hashable, Hashable], float] = {}
        self._extra_delay: dict[tuple[Hashable, Hashable], float] = {}
        # Dedicated child RNG stream for network randomness (jitter, drop
        # decisions, pre-GST asynchrony), derived from the sim seed.  Keeping
        # these draws off the global ``sim.rng`` means toggling network
        # faults (or injecting extra Byzantine traffic) leaves every
        # non-network random draw in the run byte-identical.
        self._rng = random.Random(f"net:{sim.seed}")
        # Statistics.
        self.messages_sent = 0
        self.messages_delivered = 0
        self.dropped_partition = 0
        self.dropped_prob = 0
        self.dropped_detached = 0
        self.bytes_sent = 0
        # Observability: per-message-kind traffic counters when observed.
        self._obs = sim.obs
        sim.obs.networks.append(self)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def register(self, node_id: Hashable, handler: Handler) -> Endpoint:
        """Attach a process to the network; returns its endpoint."""
        if node_id in self._endpoints:
            raise NetworkError(f"endpoint {node_id!r} already registered")
        endpoint = Endpoint(self, node_id, handler)
        self._endpoints[node_id] = endpoint
        return endpoint

    def unregister(self, node_id: Hashable) -> None:
        """Detach a process (crash).  In-flight messages to it are dropped."""
        endpoint = self._endpoints.pop(node_id, None)
        if endpoint is not None:
            endpoint.up = False

    def is_registered(self, node_id: Hashable) -> bool:
        return node_id in self._endpoints

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def partition(self, *groups: Iterable[Hashable]) -> None:
        """Split nodes into isolated groups; traffic across groups is blocked."""
        sets = [set(g) for g in groups]
        for i, group_a in enumerate(sets):
            for group_b in sets[i + 1:]:
                for a in group_a:
                    for b in group_b:
                        self._blocked.add((a, b))
                        self._blocked.add((b, a))

    def heal(self) -> None:
        """Remove all partitions."""
        self._blocked.clear()

    def set_drop_probability(self, src: Hashable, dst: Hashable, p: float) -> None:
        """Make the directed link ``src -> dst`` lossy with probability ``p``."""
        self._drop_prob[(src, dst)] = p

    def set_extra_delay(self, src: Hashable, dst: Hashable, delay: float) -> None:
        """Add a fixed extra delay to the directed link ``src -> dst``."""
        self._extra_delay[(src, dst)] = delay

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def send(self, src: Hashable, dst: Hashable, msg: Message) -> None:
        """Transmit ``msg`` from ``src`` to ``dst``.

        The message first serializes on the sender's NIC, then propagates;
        delivery invokes the destination handler (if still registered).
        """
        sender = self._endpoints.get(src)
        if sender is None or not sender.up:
            return  # a crashed process sends nothing
        self.messages_sent += 1
        wire = msg.wire_size()
        self.bytes_sent += wire
        if self._obs.enabled:
            self._obs.metrics.counter("net.messages", kind=msg.kind).inc()
            self._obs.metrics.counter("net.bytes", kind=msg.kind).inc(wire)
        serialize = wire * 8 / self.config.bandwidth_bps
        sender.nic.submit(serialize, self._propagate, src, dst, msg)

    def broadcast(self, src: Hashable, dsts: Iterable[Hashable], msg: Message) -> None:
        """Send ``msg`` to every destination (self-sends deliver too)."""
        for dst in dsts:
            self.send(src, dst, msg)

    def _propagate(self, src: Hashable, dst: Hashable, msg: Message) -> None:
        if (src, dst) in self._blocked:
            self.dropped_partition += 1
            return
        drop = self._drop_prob.get((src, dst), 0.0)
        if drop > 0.0 and self._rng.random() < drop:
            self.dropped_prob += 1
            return
        cfg = self.config
        delay = cfg.latency + self._rng.uniform(0.0, cfg.jitter)
        delay += self._extra_delay.get((src, dst), 0.0)
        if self.sim.now < cfg.gst:
            # Before GST the network may behave asynchronously: messages can
            # be delayed by an arbitrary (bounded here) amount and reordered.
            delay += self._rng.uniform(0.0, cfg.asynchrony_max)
        if src == dst:
            delay = 0.0  # loopback skips the wire
        self.sim.schedule(delay, self._deliver, src, dst, msg)

    def _deliver(self, src: Hashable, dst: Hashable, msg: Message) -> None:
        receiver = self._endpoints.get(dst)
        if receiver is None or not receiver.up:
            self.dropped_detached += 1
            return
        self.messages_delivered += 1
        receiver.handler(src, msg)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    @property
    def messages_dropped(self) -> int:
        """Total drops across all causes (back-compat aggregate)."""
        return (self.dropped_partition + self.dropped_prob
                + self.dropped_detached)

    def stats(self) -> dict:
        """JSON-ready traffic summary for the run report."""
        return {
            "messages_sent": self.messages_sent,
            "messages_delivered": self.messages_delivered,
            "messages_dropped": self.messages_dropped,
            "dropped_partition": self.dropped_partition,
            "dropped_prob": self.dropped_prob,
            "dropped_detached": self.dropped_detached,
            "bytes_sent": self.bytes_sent,
        }
