"""Benchmark harness: experiment runners and result formatting."""

from repro.bench.harness import (
    ExperimentResult,
    run_dura_smart,
    run_fabric,
    run_naive_smartcoin,
    run_smartchain,
    run_tendermint,
)

__all__ = [
    "ExperimentResult",
    "run_dura_smart",
    "run_fabric",
    "run_naive_smartcoin",
    "run_smartchain",
    "run_tendermint",
]
