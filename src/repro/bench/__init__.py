"""Benchmark harness: experiment runners and result formatting."""

from repro.bench.harness import (
    DEFAULT_WARMUP,
    ExperimentResult,
    RunHandle,
    Scenario,
    run,
    run_dura_smart,
    run_fabric,
    run_naive_smartcoin,
    run_smartchain,
    run_tendermint,
)

__all__ = [
    "DEFAULT_WARMUP",
    "ExperimentResult",
    "RunHandle",
    "Scenario",
    "run",
    "run_dura_smart",
    "run_fabric",
    "run_naive_smartcoin",
    "run_smartchain",
    "run_tendermint",
]
