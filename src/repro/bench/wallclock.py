"""Wall-clock benchmark of the simulator itself (``benchmarks/bench_wallclock.py``).

Everything else in ``repro.bench`` measures *simulated* quantities —
throughput and latency inside the model, which are deterministic per seed.
This module measures the one thing that is not: how long the host takes to
run the five Table I rows.  It is the regression gate for the hot-path
optimizations documented in docs/performance.md (digest/signature caching,
canonical-encoding fast paths, event-heap hygiene): a report row carries
the row's wall and CPU time, the number of simulated events processed, and
the crypto-cache hit/miss deltas, so a regression shows up both as time
(slower) and as mechanism (hit rate collapsed, compactions exploded).

Wall time on a shared machine is noisy (±30% under load), so each row is
run ``reps`` times and the fastest repetition is kept — the minimum is the
least-noise estimator for CPU-bound work.  The committed baseline in
``benchmarks/results/BENCH_wallclock.json`` is compared with a generous
multiplicative budget (:data:`repro.obs.compare.DEFAULT_WALLCLOCK_BUDGET`)
for exactly that reason: the gate catches order-of-magnitude regressions,
not percent-level drift.  Event counts, by contrast, are deterministic per
seed and checked with a tight band.

``--profile`` wraps the whole suite in :mod:`cProfile` and prints the top
functions by cumulative time — the same profile view ``python -m
repro.bench <experiment> --profile`` gives for a single experiment.
"""

from __future__ import annotations

import argparse
import cProfile
import json
import pstats
import sys
import time
from typing import Any, Callable

from repro.bench.harness import ExperimentResult, Scenario, run
from repro.config import StorageMode, VerificationMode
from repro.obs.compare import (
    DEFAULT_WALLCLOCK_BUDGET,
    compare_wallclock,
)

__all__ = [
    "WALLCLOCK_SCHEMA",
    "table1_rows",
    "run_wallclock_suite",
    "profile_stats",
    "format_profile",
    "format_row",
    "main",
]

WALLCLOCK_SCHEMA = "repro.obs/wallclock/v1"

#: Row-level cache metrics copied from the run's metrics into the report.
_CACHE_METRICS = ("digest_cache_hits", "digest_cache_misses",
                  "verify_cache_hits", "verify_cache_misses",
                  "heap_compactions")

#: quick mode (CI): small enough to finish in a couple of seconds per rep.
_QUICK = {"clients": 300, "duration": 1.0}
#: full mode: the real Table I configuration.
_FULL = {"clients": 1200, "duration": 2.5}


def table1_rows(
    clients: int, duration: float, seed: int,
) -> list[tuple[str, Callable[[], ExperimentResult]]]:
    """The five Table I rows as (label, runner) pairs."""
    kwargs = dict(clients=clients, duration=duration, seed=seed)

    def naive(verification: VerificationMode, storage: StorageMode):
        return lambda: run(Scenario(system="naive", verification=verification,
                                    storage=storage, **kwargs))

    return [
        ("naive seq sync",
         naive(VerificationMode.SEQUENTIAL, StorageMode.SYNC)),
        ("naive seq async",
         naive(VerificationMode.SEQUENTIAL, StorageMode.ASYNC)),
        ("naive par sync",
         naive(VerificationMode.PARALLEL, StorageMode.SYNC)),
        ("naive par async",
         naive(VerificationMode.PARALLEL, StorageMode.ASYNC)),
        ("dura-smart",
         lambda: run(Scenario(system="dura", **kwargs))),
    ]


def run_wallclock_suite(
    quick: bool = False,
    seed: int = 1,
    reps: int | None = None,
) -> dict[str, Any]:
    """Run the Table I rows, timing the host; returns the wallclock report.

    Each row runs ``reps`` times (default 2 quick / 3 full) and the fastest
    repetition is kept.  Simulated outputs (events, throughput) are
    identical across repetitions — only the host timing varies.
    """
    config = _QUICK if quick else _FULL
    if reps is None:
        reps = 2 if quick else 3
    rows: list[dict[str, Any]] = []
    total_wall = 0.0
    total_events = 0
    for label, runner in table1_rows(seed=seed, **config):
        best_wall = best_cpu = float("inf")
        result: ExperimentResult | None = None
        for _ in range(reps):
            wall0 = time.perf_counter()
            cpu0 = time.process_time()
            candidate = runner()
            cpu = time.process_time() - cpu0
            wall = time.perf_counter() - wall0
            if wall < best_wall:
                best_wall, best_cpu, result = wall, cpu, candidate
        assert result is not None
        events = result.handle.sim.executed if result.handle else 0
        row: dict[str, Any] = {
            "label": label,
            "wall_s": round(best_wall, 4),
            "cpu_s": round(best_cpu, 4),
            "events": events,
            "events_per_s": round(events / best_wall) if best_wall else 0,
            "completed_tx": result.completed,
            "throughput_tx_s": round(result.throughput, 1),
        }
        for metric in _CACHE_METRICS:
            if metric in result.metrics:
                row[metric] = result.metrics[metric]
        hits = row.get("digest_cache_hits", 0)
        misses = row.get("digest_cache_misses", 0)
        if hits + misses:
            row["digest_cache_hit_rate"] = round(hits / (hits + misses), 4)
        rows.append(row)
        total_wall += best_wall
        total_events += events
    return {
        "schema": WALLCLOCK_SCHEMA,
        "mode": "quick" if quick else "full",
        "seed": seed,
        "reps": reps,
        "clients": config["clients"],
        "duration": config["duration"],
        "rows": rows,
        "total_wall_s": round(total_wall, 4),
        "total_events": total_events,
        "events_per_s": round(total_events / total_wall) if total_wall else 0,
    }


# ----------------------------------------------------------------------
# Profiling helpers (shared with ``python -m repro.bench --profile``)
# ----------------------------------------------------------------------
def profile_stats(
    profiler: cProfile.Profile, top_n: int = 25,
) -> list[dict[str, Any]]:
    """Top ``top_n`` functions by cumulative time as JSON-able dicts."""
    stats = pstats.Stats(profiler)
    entries = []
    for (filename, lineno, name), row in stats.stats.items():  # type: ignore[attr-defined]
        cc, ncalls, tottime, cumtime, _callers = row
        entries.append({
            "function": f"{filename}:{lineno}({name})",
            "ncalls": ncalls,
            "tottime_s": round(tottime, 4),
            "cumtime_s": round(cumtime, 4),
        })
    entries.sort(key=lambda entry: -entry["cumtime_s"])
    return entries[:top_n]


def format_profile(entries: list[dict[str, Any]]) -> str:
    lines = [f"top {len(entries)} functions by cumulative time:",
             f"  {'cumtime':>8} {'tottime':>8} {'ncalls':>10}  function"]
    for entry in entries:
        lines.append(f"  {entry['cumtime_s']:>8.3f} {entry['tottime_s']:>8.3f} "
                     f"{entry['ncalls']:>10}  {entry['function']}")
    return "\n".join(lines)


def format_row(row: dict[str, Any]) -> str:
    rate = row.get("digest_cache_hit_rate")
    rate_text = f" hit-rate {rate:.1%}" if rate is not None else ""
    return (f"{row['label']:<18} {row['wall_s']:>7.3f}s wall "
            f"{row['cpu_s']:>7.3f}s cpu {row['events']:>9,} events "
            f"({row['events_per_s']:>9,}/s){rate_text}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="benchmarks/bench_wallclock.py",
        description="Wall-clock benchmark of the five Table I rows.")
    parser.add_argument("--quick", action="store_true",
                        help="small CI configuration "
                             f"({_QUICK['clients']} clients, "
                             f"{_QUICK['duration']}s) instead of the full "
                             f"Table I one ({_FULL['clients']} clients, "
                             f"{_FULL['duration']}s)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--reps", type=int, default=None,
                        help="repetitions per row; the fastest is kept "
                             "(default: 2 quick / 3 full)")
    parser.add_argument("--out", metavar="PATH", default=None,
                        help="write the wallclock report JSON to PATH")
    parser.add_argument("--check-against", metavar="BASELINE", default=None,
                        dest="check_against",
                        help="compare against a saved wallclock report; "
                             "exit 1 if any row is slower than the budget "
                             "or event counts drift")
    parser.add_argument("--budget", type=float,
                        default=DEFAULT_WALLCLOCK_BUDGET,
                        help="wall-clock regression budget as a multiple of "
                             "the baseline (default %(default)s)")
    parser.add_argument("--profile", action="store_true",
                        help="profile the suite with cProfile and print the "
                             "top functions by cumulative time to stderr")
    args = parser.parse_args(argv)

    baseline = None
    if args.check_against is not None:
        try:
            with open(args.check_against, encoding="utf-8") as fh:
                baseline = json.load(fh)
        except (OSError, ValueError) as exc:
            parser.error(f"cannot load baseline {args.check_against}: {exc}")
        if baseline.get("schema") != WALLCLOCK_SCHEMA:
            parser.error(f"{args.check_against} is not a wallclock report "
                         f"(schema {baseline.get('schema')!r})")

    profiler = cProfile.Profile() if args.profile else None
    if profiler is not None:
        profiler.enable()
    try:
        report = run_wallclock_suite(quick=args.quick, seed=args.seed,
                                     reps=args.reps)
    finally:
        if profiler is not None:
            profiler.disable()
    if profiler is not None:
        top = profile_stats(profiler)
        report["profile"] = top
        print(format_profile(top), file=sys.stderr)

    for row in report["rows"]:
        print(format_row(row))
    print(f"{'TOTAL':<18} {report['total_wall_s']:>7.3f}s wall "
          f"{report['total_events']:>28,} events "
          f"({report['events_per_s']:>9,}/s)")

    if args.out is not None:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"report written to {args.out}", file=sys.stderr)

    if baseline is not None:
        comparison = compare_wallclock(baseline, report, budget=args.budget)
        print(comparison.format(), file=sys.stderr)
        if not comparison.ok:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
