"""Command-line experiment runner: ``python -m repro.bench <experiment>``.

Examples::

    python -m repro.bench table1                # Table I rows
    python -m repro.bench table2                # Table II rows
    python -m repro.bench calibration           # anchor fit report
    python -m repro.bench smartchain --variant weak --clients 600

For the figure sweeps (6, 7, 8) use the pytest benchmarks, which also assert
the shapes: ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.calibration import calibration_report
from repro.bench.harness import (
    run_dura_smart,
    run_fabric,
    run_naive_smartcoin,
    run_smartchain,
    run_tendermint,
)
from repro.config import PersistenceVariant, StorageMode, VerificationMode


def _common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--clients", type=int, default=1200)
    parser.add_argument("--duration", type=float, default=2.5)
    parser.add_argument("--seed", type=int, default=1)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.bench",
                                     description=__doc__)
    sub = parser.add_subparsers(dest="experiment", required=True)

    for name in ("table1", "table2", "calibration"):
        p = sub.add_parser(name)
        _common(p)

    p = sub.add_parser("smartchain")
    _common(p)
    p.add_argument("--variant", choices=["strong", "weak"], default="strong")
    p.add_argument("--storage", choices=["sync", "async", "memory"],
                   default="sync")
    p.add_argument("--n", type=int, default=4)

    args = parser.parse_args(argv)
    kwargs = dict(clients=args.clients, duration=args.duration,
                  seed=args.seed)

    if args.experiment == "calibration":
        print(f"{'anchor':<36} {'paper':>8} {'measured':>9} {'ratio':>6}")
        for label, paper, measured, ratio in calibration_report(**kwargs):
            print(f"{label:<36} {paper:>8.0f} {measured:>9.0f} "
                  f"{ratio:>5.2f}x")
        return 0

    if args.experiment == "table1":
        rows = [
            run_naive_smartcoin(VerificationMode.SEQUENTIAL,
                                StorageMode.SYNC, **kwargs),
            run_naive_smartcoin(VerificationMode.SEQUENTIAL,
                                StorageMode.ASYNC, **kwargs),
            run_naive_smartcoin(VerificationMode.PARALLEL,
                                StorageMode.SYNC, **kwargs),
            run_naive_smartcoin(VerificationMode.PARALLEL,
                                StorageMode.ASYNC, **kwargs),
            run_dura_smart(**kwargs),
        ]
    elif args.experiment == "table2":
        rows = [
            run_smartchain(PersistenceVariant.STRONG, **kwargs),
            run_smartchain(PersistenceVariant.WEAK, **kwargs),
            run_tendermint(**{**kwargs,
                              "duration": max(8.0, args.duration)}),
            run_fabric(**{**kwargs, "duration": max(8.0, args.duration)}),
        ]
    else:  # smartchain
        rows = [run_smartchain(
            PersistenceVariant(args.variant), StorageMode(args.storage),
            n=args.n, **kwargs)]

    for result in rows:
        print(result.row())
    return 0


if __name__ == "__main__":
    sys.exit(main())
