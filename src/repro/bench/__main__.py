"""Command-line experiment runner: ``python -m repro.bench <experiment>``.

Examples::

    python -m repro.bench table1                # Table I rows
    python -m repro.bench table2                # Table II rows
    python -m repro.bench calibration           # anchor fit report
    python -m repro.bench smartchain --variant weak --clients 600
    python -m repro.bench table1 --report table1.json   # observed run + JSON
    python -m repro.bench --smoke --report /tmp/r.json  # CI schema check

``--report PATH`` runs every row with observability enabled and writes a
machine-readable bench report (schema ``repro.obs/bench-report/v1``): the
throughput/latency summary, the per-phase pipeline latency breakdown and the
per-resource busy fractions of each row.  ``--smoke`` runs one short
observed SMARTCHAIN row and validates the report schema (at least six
pipeline phases must appear) — the CI smoke target.

For the figure sweeps (6, 7, 8) use the pytest benchmarks, which also assert
the shapes: ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.bench.calibration import calibration_report
from repro.bench.harness import (
    run_dura_smart,
    run_fabric,
    run_naive_smartcoin,
    run_smartchain,
    run_tendermint,
)
from repro.config import PersistenceVariant, StorageMode, VerificationMode
from repro.obs.report import build_bench_report, validate_bench_report


def _common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--clients", type=int, default=1200)
    parser.add_argument("--duration", type=float, default=2.5)
    parser.add_argument("--seed", type=int, default=1)
    # Accepted both before and after the experiment name; SUPPRESS keeps
    # the subparser from clobbering a value given at the top level.
    parser.add_argument("--report", metavar="PATH",
                        default=argparse.SUPPRESS,
                        help=argparse.SUPPRESS)
    parser.add_argument("--smoke", action="store_true",
                        default=argparse.SUPPRESS,
                        help=argparse.SUPPRESS)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.bench",
                                     description=__doc__)
    parser.add_argument("--report", metavar="PATH", default=None,
                        help="enable observability and write a JSON bench "
                             "report to PATH ('-' for stdout)")
    parser.add_argument("--smoke", action="store_true",
                        help="run one short observed row and validate the "
                             "report schema (CI smoke target)")
    parser.set_defaults(clients=1200, duration=2.5, seed=1)
    sub = parser.add_subparsers(dest="experiment")

    for name in ("table1", "table2", "calibration"):
        p = sub.add_parser(name)
        _common(p)

    p = sub.add_parser("smartchain")
    _common(p)
    p.add_argument("--variant", choices=["strong", "weak"], default="strong")
    p.add_argument("--storage", choices=["sync", "async", "memory"],
                   default="sync")
    p.add_argument("--n", type=int, default=4)

    args = parser.parse_args(argv)
    if args.experiment is None and not args.smoke:
        parser.error("an experiment is required (or use --smoke)")
    if args.smoke and args.experiment is not None:
        parser.error("--smoke runs its own fixed row; drop the "
                     "experiment name")
    if args.report not in (None, "-"):
        try:  # fail before the run, not after minutes of simulation
            with open(args.report, "a", encoding="utf-8"):
                pass
        except OSError as exc:
            parser.error(f"cannot write report to {args.report}: {exc}")

    observe = args.report is not None or args.smoke
    kwargs = dict(clients=args.clients, duration=args.duration,
                  seed=args.seed, observe=observe)

    options = {"clients": args.clients, "duration": args.duration,
               "seed": args.seed}
    if args.smoke:
        experiment = "smoke"
        options = {"clients": 300, "duration": 2.0, "seed": args.seed}
        rows = [run_smartchain(PersistenceVariant.STRONG, StorageMode.SYNC,
                               observe=True, **options)]
    elif args.experiment == "calibration":
        print(f"{'anchor':<36} {'paper':>8} {'measured':>9} {'ratio':>6}")
        for label, paper, measured, ratio in calibration_report(
                clients=args.clients, duration=args.duration,
                seed=args.seed):
            print(f"{label:<36} {paper:>8.0f} {measured:>9.0f} "
                  f"{ratio:>5.2f}x")
        if args.report is not None:
            print("(calibration has no report output; "
                  "use table1/table2/smartchain)", file=sys.stderr)
        return 0
    elif args.experiment == "table1":
        experiment = "table1"
        rows = [
            run_naive_smartcoin(VerificationMode.SEQUENTIAL,
                                StorageMode.SYNC, **kwargs),
            run_naive_smartcoin(VerificationMode.SEQUENTIAL,
                                StorageMode.ASYNC, **kwargs),
            run_naive_smartcoin(VerificationMode.PARALLEL,
                                StorageMode.SYNC, **kwargs),
            run_naive_smartcoin(VerificationMode.PARALLEL,
                                StorageMode.ASYNC, **kwargs),
            run_dura_smart(**kwargs),
        ]
    elif args.experiment == "table2":
        experiment = "table2"
        rows = [
            run_smartchain(PersistenceVariant.STRONG, **kwargs),
            run_smartchain(PersistenceVariant.WEAK, **kwargs),
            run_tendermint(**{**kwargs,
                              "duration": max(8.0, args.duration)}),
            run_fabric(**{**kwargs, "duration": max(8.0, args.duration)}),
        ]
    else:  # smartchain
        experiment = "smartchain"
        rows = [run_smartchain(
            PersistenceVariant(args.variant), StorageMode(args.storage),
            n=args.n, **kwargs)]

    # With the report going to stdout, keep stdout pure JSON and move the
    # human-readable rows to stderr.
    rows_stream = sys.stderr if args.report in ("-", None) and observe \
        else sys.stdout
    for result in rows:
        print(result.row(), file=rows_stream)

    if observe:
        report = build_bench_report(
            experiment,
            [result.report for result in rows],
            options=options,
        )
        validate_bench_report(report, min_phases=6 if args.smoke else 0)
        payload = json.dumps(report, indent=2, sort_keys=True)
        if args.report in (None, "-"):
            print(payload)
        else:
            with open(args.report, "w", encoding="utf-8") as fh:
                fh.write(payload + "\n")
            print(f"report written to {args.report}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
