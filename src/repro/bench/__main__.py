"""Command-line experiment runner: ``python -m repro.bench <experiment>``.

Examples::

    python -m repro.bench table1                # Table I rows
    python -m repro.bench table2                # Table II rows
    python -m repro.bench calibration           # anchor fit report
    python -m repro.bench smartchain --variant weak --clients 600
    python -m repro.bench table1 --report table1.json   # observed run + JSON
    python -m repro.bench --smoke --report /tmp/r.json  # CI schema check
    python -m repro.bench --list                        # experiments + defaults
    python -m repro.bench smartchain --trace out.json   # Perfetto trace
    python -m repro.bench table1 --audit                # online safety auditor
    python -m repro.bench table1 --check-against benchmarks/results/BENCH_table1.json
    python -m repro.bench --engine fastbft              # engines head-to-head
    python -m repro.bench smartchain --engine fastbft --faults equivocate --audit
    python -m repro.bench smartchain --faults leader-delay --audit-liveness
    python -m repro.bench shards                        # sharded scaling sweep
    python -m repro.bench smartchain --shards 2 --cross-shard-fraction 0.1
    python -m repro.bench pipeline                      # depth x cores sweep
    python -m repro.bench smartchain --pipeline-depth 4 --exec-cores 2

``--report PATH`` runs every row with observability enabled and writes a
machine-readable bench report (schema ``repro.obs/bench-report/v1``): the
throughput/latency summary, the per-phase pipeline latency breakdown and the
per-resource busy fractions of each row.  ``--smoke`` runs one short
observed SMARTCHAIN row and validates the report schema (at least six
pipeline phases must appear) — the CI smoke target.

repro.obs v2 additions: ``--audit`` runs the online safety auditor over the
protocol event stream (exit code 2 on any invariant violation);
``--trace PATH`` writes the first row as Chrome trace-event JSON (open in
https://ui.perfetto.dev); ``--events PATH`` writes the raw protocol event
stream as JSONL; ``--check-against BASELINE`` compares the fresh report
against a saved baseline report with tolerance bands (exit code 1 on
drift beyond tolerance).

``--profile`` wraps the simulation runs in :mod:`cProfile`, prints the top
functions by cumulative time to stderr and attaches them to the report
(``report["profile"]``) — see docs/performance.md.  The host-time
counterpart of these simulated-time benchmarks lives in
``benchmarks/bench_wallclock.py``.

For the figure sweeps (6, 7, 8) use the pytest benchmarks, which also assert
the shapes: ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import argparse
import cProfile
import json
import sys

import dataclasses

from repro.bench.calibration import calibration_report
from repro.bench.harness import Scenario, run
from repro.config import PersistenceVariant, StorageMode, VerificationMode
from repro.consensus.engine import engine_names
from repro.obs.audit import AuditError
from repro.obs.compare import compare_reports
from repro.bench.wallclock import format_profile, profile_stats
from repro.obs.report import build_bench_report, validate_bench_report
from repro.obs.traceview import build_trace, write_trace

#: Experiment registry for ``--list``: name -> (rows, what it reproduces).
EXPERIMENTS = {
    "table1": ("5 rows", "Table I — naive SMaRt-based coin vs Dura-SMaRt"),
    "table2": ("4 rows", "Table II — SMARTCHAIN vs Tendermint vs Fabric"),
    "calibration": ("text", "anchor fit against the paper's numbers"),
    "smartchain": ("1 row", "one SMARTCHAIN config (--variant/--storage/--n)"),
    "engines": ("2+ rows", "consensus engines head-to-head (--engine picks "
                "the challenger)"),
    "shards": ("6 rows", "sharded scaling sweep — shard count x cross-shard "
               "fraction (see docs/sharding.md)"),
    "pipeline": ("6 rows", "pipelining sweep — consensus pipeline depth x "
                 "modeled exec cores on the Table I Durable-SMaRt row "
                 "(see docs/performance.md)"),
    "recovery": ("3 rows", "storage-fault recovery sweep — bit-rot / "
                 "torn-write / gray-disk under crash-recover storms, "
                 "audited (see docs/faults.md)"),
}


def _common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--clients", type=int, default=1200)
    parser.add_argument("--duration", type=float, default=2.5)
    parser.add_argument("--seed", type=int, default=1)
    # Accepted both before and after the experiment name; SUPPRESS keeps
    # the subparser from clobbering a value given at the top level.
    for flag, kwargs in (
            ("--report", {"metavar": "PATH"}),
            ("--smoke", {"action": "store_true"}),
            ("--audit", {"action": "store_true"}),
            ("--audit-liveness", {"action": "store_true",
                                  "dest": "audit_liveness"}),
            ("--trace", {"metavar": "PATH"}),
            ("--events", {"metavar": "PATH"}),
            ("--faults", {"metavar": "PLAN"}),
            ("--engine", {"metavar": "ENGINE"}),
            ("--profile", {"action": "store_true"}),
            ("--check-against", {"metavar": "BASELINE",
                                 "dest": "check_against"})):
        parser.add_argument(flag, default=argparse.SUPPRESS,
                            help=argparse.SUPPRESS, **kwargs)


def _print_experiment_list() -> None:
    print("experiments:")
    for name, (rows, what) in EXPERIMENTS.items():
        print(f"  {name:<12} {rows:<7} {what}")
    print()
    print("scenario defaults (repro.bench.harness.Scenario):")
    for spec in dataclasses.fields(Scenario):
        default = spec.default
        if default is dataclasses.MISSING:
            default = "(required)"
        print(f"  {spec.name:<22} {default}")


def main(argv: list[str] | None = None) -> int:
    try:
        return _main(argv)
    except AuditError as exc:
        print(exc, file=sys.stderr)
        return 2


def _main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.bench",
                                     description=__doc__)
    parser.add_argument("--report", metavar="PATH", default=None,
                        help="enable observability and write a JSON bench "
                             "report to PATH ('-' for stdout)")
    parser.add_argument("--smoke", action="store_true",
                        help="run one short observed row and validate the "
                             "report schema (CI smoke target)")
    parser.add_argument("--list", action="store_true", dest="list_experiments",
                        help="list experiments and Scenario defaults, "
                             "then exit")
    parser.add_argument("--audit", action="store_true",
                        help="run the online safety auditor over the "
                             "protocol event stream (exit 2 on violation)")
    parser.add_argument("--audit-liveness", action="store_true",
                        dest="audit_liveness",
                        help="run the online liveness auditor: bounded "
                             "post-GST request latency plus wedge detection "
                             "over the regency timeline (exit 2 on "
                             "violation; bound/GST come from the fault "
                             "plan's liveness hints)")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="write the first row's run as Chrome "
                             "trace-event JSON (open in Perfetto)")
    parser.add_argument("--events", metavar="PATH", default=None,
                        help="write the first row's protocol event stream "
                             "as JSONL")
    parser.add_argument("--faults", metavar="PLAN", default=None,
                        help="inject a Byzantine fault plan into the run: a "
                             "named plan (see repro.faults.NAMED_PLANS), a "
                             "JSON file path, or inline JSON (smartchain/"
                             "engines experiments only; combine with --audit)")
    parser.add_argument("--engine", metavar="ENGINE", default=None,
                        help="consensus engine key (one of: "
                             f"{', '.join(engine_names())}); with no "
                             "experiment, runs the engines head-to-head "
                             "comparison against modsmart")
    parser.add_argument("--check-against", metavar="BASELINE", default=None,
                        dest="check_against",
                        help="compare the report against a saved baseline "
                             "bench report (exit 1 on drift beyond "
                             "tolerance)")
    parser.add_argument("--profile", action="store_true",
                        help="profile the experiment with cProfile; print "
                             "the top functions by cumulative time to "
                             "stderr and attach them to the report")
    parser.set_defaults(clients=1200, duration=2.5, seed=1)
    sub = parser.add_subparsers(dest="experiment")

    for name in ("table1", "table2", "calibration", "engines", "shards",
                 "pipeline", "recovery"):
        p = sub.add_parser(name)
        _common(p)
        if name == "shards":
            # Scaling only shows once a single group saturates its
            # ordering pipeline; the default client population is the
            # paper's full closed-loop count, not the lighter bench one.
            p.set_defaults(clients=2400)
        if name == "recovery":
            # Recovery runs measure fault handling, not peak throughput:
            # a light client load keeps them fast while the duration
            # covers the plans' full crash-recover storms.
            p.set_defaults(clients=300, duration=3.0)

    p = sub.add_parser("smartchain")
    _common(p)
    p.add_argument("--variant", choices=["strong", "weak"], default="strong")
    p.add_argument("--storage", choices=["sync", "async", "memory"],
                   default="sync")
    p.add_argument("--n", type=int, default=4)
    p.add_argument("--shards", type=int, default=1,
                   help="number of independent replica groups")
    p.add_argument("--cross-shard-fraction", type=float, default=0.0,
                   dest="cross_shard_fraction",
                   help="fraction of SPENDs that become two-phase "
                        "cross-shard transfers")
    p.add_argument("--pipeline-depth", type=int, default=1,
                   dest="pipeline_depth",
                   help="consensus instances the leader keeps in flight "
                        "(1 = classic sequential ordering)")
    p.add_argument("--exec-cores", type=int, default=1, dest="exec_cores",
                   help="modeled cores for parallel deterministic "
                        "execution (1 = execute on the SM thread)")

    args = parser.parse_args(argv)
    if args.list_experiments:
        _print_experiment_list()
        return 0
    if args.engine is not None and args.engine not in engine_names():
        parser.error(f"unknown engine {args.engine!r}; registered engines: "
                     f"{', '.join(engine_names())}")
    if args.experiment is None and not args.smoke:
        if args.engine is not None:
            # ``python -m repro.bench --engine fastbft``: the head-to-head
            # engine comparison is the natural thing to run.
            args.experiment = "engines"
        else:
            parser.error("an experiment is required "
                         "(or use --smoke/--list/--engine)")
    if args.smoke and args.experiment is not None:
        parser.error("--smoke runs its own fixed row; drop the "
                     "experiment name")
    for path in (args.report, args.trace, args.events):
        if path not in (None, "-"):
            try:  # fail before the run, not after minutes of simulation
                with open(path, "a", encoding="utf-8"):
                    pass
            except OSError as exc:
                parser.error(f"cannot write to {path}: {exc}")
    baseline = None
    if args.check_against is not None:
        try:
            with open(args.check_against, encoding="utf-8") as fh:
                baseline = validate_bench_report(json.load(fh))
        except (OSError, ValueError) as exc:
            parser.error(
                f"cannot load baseline {args.check_against}: {exc}")
    fault_plan = None
    if args.faults is not None:
        if args.experiment not in ("smartchain", "engines", "pipeline",
                                   "recovery"):
            parser.error("--faults needs the smartchain, engines, pipeline "
                         "or recovery experiment (the comparators have no "
                         "replica runtimes to compromise)")
        from repro.faults import FaultPlanError, load_plan
        try:  # resolve now so typos fail before the simulation starts
            fault_plan = load_plan(args.faults)
        except FaultPlanError as exc:
            parser.error(str(exc))

    observe = (args.report is not None or args.smoke
               or args.trace is not None or args.events is not None
               or baseline is not None)
    engine = args.engine or "modsmart"
    kwargs = dict(clients=args.clients, duration=args.duration,
                  seed=args.seed, observe=observe, audit=args.audit,
                  audit_liveness=args.audit_liveness)

    options = {"clients": args.clients, "duration": args.duration,
               "seed": args.seed}
    # The profile covers the simulation runs (the branch below); the
    # try/finally prints it even on calibration's early return.
    profiler = cProfile.Profile() if args.profile else None
    profile_top: list | None = None
    if profiler is not None:
        profiler.enable()
    try:
        if args.smoke:
            experiment = "smoke"
            options = {"clients": 300, "duration": 2.0, "seed": args.seed}
            rows = [run(Scenario(
                system="smartchain", variant=PersistenceVariant.STRONG,
                storage=StorageMode.SYNC, engine=engine,
                observe=True, audit=args.audit,
                audit_liveness=args.audit_liveness, **options))]
        elif args.experiment == "calibration":
            print(f"{'anchor':<36} {'paper':>8} {'measured':>9} {'ratio':>6}")
            for label, paper, measured, ratio in calibration_report(
                    clients=args.clients, duration=args.duration,
                    seed=args.seed):
                print(f"{label:<36} {paper:>8.0f} {measured:>9.0f} "
                      f"{ratio:>5.2f}x")
            if args.report is not None:
                print("(calibration has no report output; "
                      "use table1/table2/smartchain)", file=sys.stderr)
            return 0
        elif args.experiment == "table1":
            experiment = "table1"
            rows = [
                run(Scenario(system="naive",
                             verification=VerificationMode.SEQUENTIAL,
                             storage=StorageMode.SYNC, engine=engine,
                             **kwargs)),
                run(Scenario(system="naive",
                             verification=VerificationMode.SEQUENTIAL,
                             storage=StorageMode.ASYNC, engine=engine,
                             **kwargs)),
                run(Scenario(system="naive",
                             verification=VerificationMode.PARALLEL,
                             storage=StorageMode.SYNC, engine=engine,
                             **kwargs)),
                run(Scenario(system="naive",
                             verification=VerificationMode.PARALLEL,
                             storage=StorageMode.ASYNC, engine=engine,
                             **kwargs)),
                run(Scenario(system="dura", engine=engine, **kwargs)),
            ]
        elif args.experiment == "table2":
            experiment = "table2"
            long = {**kwargs, "duration": max(8.0, args.duration)}
            rows = [
                run(Scenario(system="smartchain", engine=engine,
                             variant=PersistenceVariant.STRONG, **kwargs)),
                run(Scenario(system="smartchain", engine=engine,
                             variant=PersistenceVariant.WEAK, **kwargs)),
                run(Scenario(system="tendermint", **long)),
                run(Scenario(system="fabric", **long)),
            ]
        elif args.experiment == "engines":
            # Table-II-style head-to-head: the same SMARTCHAIN scenario on
            # each engine, only the agreement protocol differing.
            experiment = "engines"
            contenders = (engine_names() if engine == "modsmart"
                          else ["modsmart", engine])
            rows = [run(Scenario(system="smartchain", engine=contender,
                                 variant=PersistenceVariant.STRONG,
                                 storage=StorageMode.SYNC,
                                 faults=fault_plan, **kwargs))
                    for contender in contenders]
        elif args.experiment == "shards":
            # Scaling sweep: independent groups should scale aggregate
            # throughput near-linearly at 0% cross-shard traffic; the 10%
            # columns price the two-phase transfer protocol.
            experiment = "shards"
            rows = [run(Scenario(system="smartchain", engine=engine,
                                 shards=shards, cross_shard_fraction=fraction,
                                 label=f"SmartChain shards={shards} "
                                       f"x={fraction:g}",
                                 **kwargs))
                    for shards in (1, 2, 4)
                    for fraction in (0.0, 0.1)]
        elif args.experiment == "recovery":
            # Storage-fault sweep on the Table I Durable-SMaRt row: each
            # named plan damages one replica's stable storage under a
            # crash-recover storm, and every row runs with the safety +
            # recovery auditors attached — verified recovery must keep the
            # recovered replica on the canonical chain (docs/faults.md).
            experiment = "recovery"
            plans = ([fault_plan] if fault_plan is not None else
                     ["bitrot-recovery", "torn-write-recovery", "gray-disk"])
            rows = [run(Scenario(
                system="dura", engine=engine, faults=plan,
                label="Dura-SMaRt recovery "
                      f"[{getattr(plan, 'name', plan)}]",
                **{**kwargs, "audit": True}))
                    for plan in plans]
        elif args.experiment == "pipeline":
            # Pipelining sweep on the Table I Durable-SMaRt row: the
            # depth=1/cores=1 corner is byte-identical to the table1 dura
            # row; depth>=4 with cores>=2 is where the >=1.5x throughput
            # gain shows (docs/performance.md).
            experiment = "pipeline"
            rows = [run(Scenario(system="dura", engine=engine,
                                 pipeline_depth=depth, exec_cores=cores,
                                 faults=fault_plan, **kwargs))
                    for depth in (1, 4)
                    for cores in (1, 2, 4)]
        else:  # smartchain
            experiment = "smartchain"
            rows = [run(Scenario(
                system="smartchain", variant=PersistenceVariant(args.variant),
                storage=StorageMode(args.storage), n=args.n, engine=engine,
                shards=args.shards,
                cross_shard_fraction=args.cross_shard_fraction,
                pipeline_depth=args.pipeline_depth,
                exec_cores=args.exec_cores,
                faults=fault_plan, **kwargs))]
    finally:
        if profiler is not None:
            profiler.disable()
            profile_top = profile_stats(profiler)
            print(format_profile(profile_top), file=sys.stderr)

    # With the report going to stdout, keep stdout pure JSON and move the
    # human-readable rows to stderr.
    print_report = args.report is not None or args.smoke
    report_to_stdout = print_report and args.report in (None, "-")
    rows_stream = sys.stderr if report_to_stdout else sys.stdout
    for result in rows:
        print(result.row(), file=rows_stream)

    if observe:
        report = build_bench_report(
            experiment,
            [result.report for result in rows],
            options=options,
        )
        validate_bench_report(report, min_phases=6 if args.smoke else 0)
        if profile_top is not None:
            # Extra top-level keys are tolerated by the report schema.
            report["profile"] = profile_top
        if args.trace is not None:
            handle = rows[0].handle
            trace = build_trace(handle.obs, horizon=handle.sim.now,
                                label=rows[0].label)
            write_trace(trace, args.trace)
            print(f"trace written to {args.trace}", file=sys.stderr)
        if args.events is not None:
            rows[0].handle.obs.events.write_jsonl(args.events)
            print(f"events written to {args.events}", file=sys.stderr)
        if print_report:
            payload = json.dumps(report, indent=2, sort_keys=True)
            if report_to_stdout:
                print(payload)
            else:
                with open(args.report, "w", encoding="utf-8") as fh:
                    fh.write(payload + "\n")
                print(f"report written to {args.report}", file=sys.stderr)
        if baseline is not None:
            comparison = compare_reports(baseline, report)
            print(comparison.format(), file=sys.stderr)
            if not comparison.ok:
                return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
