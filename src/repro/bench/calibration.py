"""Calibration: how the cost model's constants were fixed, and a self-check.

DESIGN.md's rule: constants are fitted **once** against the n=4 column of
Table I, then held fixed for every other experiment.  This module documents
each constant's provenance and provides :func:`calibration_report`, which
re-runs the anchor experiments and reports the measured-to-paper ratios —
the benchmark suite asserts the shapes, this reports the absolute fit.

Provenance of every constant (see ``repro.config.CostModel``):

===========================  =========================================================
constant                      provenance
===========================  =========================================================
crypto.verify_time (330 µs)   fitted: Table I sequential-verification rows
                              (~1.75k tx/s ceiling on one 2.27 GHz core);
                              consistent with RSA-1024 verify on that CPU
crypto.sign_time (450 µs)     RSA/ECDSA sign-to-verify ratio on the same core
network (1 Gbps, 0.25 ms)     the paper's testbed (Section VI-A)
disk.sync_latency (2.5 ms)    fitted: sync-vs-async deltas of Table I and the
                              Si+Sy vs Si columns of Figure 6
disk.snapshot (45 MB/s)       Figure 7: a 1 GB checkpoint takes ≈23 s
state_serialize (20 MB/s)     Figure 7: a 1 GB state transfer takes ≈60 s
exec/reply (14+14 µs)         fitted: Dura-SMaRt row of Table I (≈15k tx/s)
signed_tx_sm_overhead (30 µs) fitted: the signatures-on/off gap of Figure 6
naive_ledger (200 µs/tx)      fitted: Table I parallel-verification rows —
                              Observation 1's application-level block building
block_build (2.2 ms/block)    fitted: SmartChain weak vs Durable-SMaRt gap
persist_handling (3 ms/block) fitted: the strong-vs-weak ≈13% gap of Table II
replay_time (8 µs/tx)         Figure 8: no-checkpoint update of 10k blocks ≈45 s
===========================  =========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import CostModel, PersistenceVariant, StorageMode, VerificationMode

__all__ = ["CalibrationAnchor", "ANCHORS", "calibration_report"]


@dataclass(frozen=True)
class CalibrationAnchor:
    """One paper number the model is anchored to."""

    label: str
    paper_tx_s: float
    system: str                      # Scenario system key
    kwargs: tuple = ()               # frozen (key, value) Scenario fields


ANCHORS = (
    CalibrationAnchor(
        "Table I: naive sequential+sync", 1729, "naive",
        (("verification", VerificationMode.SEQUENTIAL),
         ("storage", StorageMode.SYNC))),
    CalibrationAnchor(
        "Table I: naive parallel+sync", 3881, "naive",
        (("verification", VerificationMode.PARALLEL),
         ("storage", StorageMode.SYNC))),
    CalibrationAnchor(
        "Table I: Dura-SMaRt", 14829, "dura",
        (("verification", VerificationMode.PARALLEL),)),
    CalibrationAnchor(
        "Table II: SmartChain weak", 14547, "smartchain",
        (("variant", PersistenceVariant.WEAK),)),
    CalibrationAnchor(
        "Table II: SmartChain strong", 12560, "smartchain",
        (("variant", PersistenceVariant.STRONG),)),
)


def calibration_report(clients: int = 1200, duration: float = 2.5,
                       seed: int = 1, costs: CostModel | None = None) -> list:
    """Re-run the anchors; returns [(label, paper, measured, ratio), ...].

    Used by tests to pin the calibration (each anchor must stay within
    ±35% of the paper at reduced scale) and by operators after touching
    any constant.
    """
    from repro.bench.harness import Scenario, run

    rows = []
    for anchor in ANCHORS:
        kwargs = dict(anchor.kwargs)
        result = run(Scenario(system=anchor.system, clients=clients,
                              duration=duration, seed=seed, costs=costs,
                              **kwargs))
        ratio = result.throughput / anchor.paper_tx_s
        rows.append((anchor.label, anchor.paper_tx_s, result.throughput,
                     ratio))
    return rows
