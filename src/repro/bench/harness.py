"""Experiment harness: one function per system configuration.

Each ``run_*`` function builds a fresh simulation, deploys the paper's
client population, runs for a simulated duration and returns an
:class:`ExperimentResult` with throughput measured the way the paper
measures it (fixed intervals, 20% highest-variance intervals discarded,
average — Section VI-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.apps.kvstore import KVStore
from repro.apps.naive import NaiveBlockchainDelivery
from repro.apps.smartcoin import SmartCoin
from repro.baselines.fabric import FabricCluster, FabricConfig
from repro.baselines.tendermint import TendermintCluster, TendermintConfig
from repro.clients.client import ClientStation
from repro.config import (
    CostModel,
    PersistenceVariant,
    SMRConfig,
    SmartChainConfig,
    StorageMode,
    VerificationMode,
)
from repro.core.node import bootstrap
from repro.crypto.keys import KeyRegistry
from repro.net.network import Network
from repro.sim.engine import Simulator
from repro.sim.trace import trimmed_mean
from repro.smr.durability import DuraSmartDelivery
from repro.smr.keydir import KeyDirectory
from repro.smr.replica import ModSmartReplica
from repro.smr.views import View
from repro.workloads.coingen import all_minter_addresses, deploy_clients

__all__ = [
    "ExperimentResult",
    "run_smartchain",
    "run_naive_smartcoin",
    "run_dura_smart",
    "run_tendermint",
    "run_fabric",
]

#: Default steady-state measurement window (simulated seconds).
WARMUP = 1.0


@dataclass
class ExperimentResult:
    """Outcome of one experiment run."""

    label: str
    throughput: float              # tx/s, trimmed-mean of intervals
    latency_mean: float            # seconds
    latency_p95: float
    completed: int
    duration: float
    interval_rates: list[float] = field(default_factory=list)
    extra: dict[str, Any] = field(default_factory=dict)

    def row(self) -> str:
        return (f"{self.label:<42} {self.throughput:>9.0f} tx/s   "
                f"{self.latency_mean * 1000:>7.1f} ms")


def _measure(stations: list[ClientStation], duration: float,
             label: str, op_window: int = 2000,
             warmup: float = WARMUP, extra: dict | None = None) -> ExperimentResult:
    # The paper's method: throughput per fixed operation-count interval,
    # discard the 20% with the greatest deviation, average the rest.
    merged = sorted((when, count)
                    for st in stations for when, count in st.meter._stamps)
    in_window = [(when, count) for when, count in merged
                 if warmup <= when < duration]
    total_in_window = sum(count for _, count in in_window)
    # Short runs shrink the window so at least a few intervals form — but a
    # window must still span several reply bursts (blocks complete up to
    # 512 transactions at one instant), or burst-local rates explode.
    op_window = max(1100, min(op_window, total_in_window // 3 or 1100))
    rates: list[float] = []
    window_start = None
    accumulated = 0
    for when, count in in_window:
        if window_start is None:
            window_start = when
            continue
        accumulated += count
        if accumulated >= op_window:
            elapsed = when - window_start
            if elapsed > 0:
                rates.append(accumulated / elapsed)
            window_start = when
            accumulated = 0
    if rates:
        throughput = trimmed_mean(rates)
    elif duration > warmup:
        throughput = total_in_window / (duration - warmup)
    else:
        throughput = 0.0
    latencies = [lat for st in stations for lat in st.latency.samples]
    mean = sum(latencies) / len(latencies) if latencies else 0.0
    p95 = sorted(latencies)[int(0.95 * len(latencies))] if latencies else 0.0
    completed = sum(st.meter.total for st in stations)
    return ExperimentResult(
        label=label,
        throughput=throughput,
        latency_mean=mean,
        latency_p95=p95,
        completed=completed,
        duration=duration,
        interval_rates=rates,
        extra=extra or {},
    )


def _signed(verification: VerificationMode) -> bool:
    return verification is not VerificationMode.NONE


# ----------------------------------------------------------------------
# SMARTCHAIN (Table II, Figure 6, Figure 7)
# ----------------------------------------------------------------------
def run_smartchain(
    variant: PersistenceVariant = PersistenceVariant.STRONG,
    storage: StorageMode = StorageMode.SYNC,
    verification: VerificationMode = VerificationMode.PARALLEL,
    n: int = 4,
    clients: int = 2400,
    duration: float = 4.0,
    seed: int = 1,
    checkpoint_period: int = 10_000,
    costs: CostModel | None = None,
    workload: str = "spend",
    label: str | None = None,
) -> ExperimentResult:
    """One SMARTCHAIN configuration under the SMaRtCoin workload."""
    sim = Simulator(seed)
    costs = costs or CostModel()
    f = (n - 1) // 3
    config = SmartChainConfig(
        smr=SMRConfig(n=n, f=f, verification=verification),
        variant=variant,
        storage=storage,
        checkpoint_period=checkpoint_period,
    )
    minters = all_minter_addresses(clients)
    consortium = bootstrap(sim, tuple(range(n)),
                           lambda: SmartCoin(minters=minters),
                           config, costs=costs)
    view_holder = [consortium.genesis.view]
    for node in consortium.nodes.values():
        node.view_listeners.append(
            lambda view: view_holder.__setitem__(0, view))
    stations, _wallets = deploy_clients(
        sim, consortium.network, lambda: view_holder[0], clients,
        workload=workload, signed=_signed(verification))
    for station in stations:
        station.start_all(stagger=0.002)
    sim.run(until=duration)
    name = label or (f"SmartChain {variant.value} "
                     f"({storage.value}, {verification.value}, n={n})")
    node0 = consortium.node(0)
    return _measure(stations, duration, name, extra={
        "blocks": node0.delivery.blocks_built,
        "certificates": node0.delivery.certs_completed,
        "consortium": consortium,
    })


# ----------------------------------------------------------------------
# SMaRtCoin on plain BFT-SMART (Table I left/middle columns)
# ----------------------------------------------------------------------
def _build_modsmart_cluster(sim, costs, n, verification, delivery_factory):
    registry = KeyRegistry(seed=sim.seed)
    network = Network(sim, costs.network)
    keydir = KeyDirectory()
    f = (n - 1) // 3
    view = View(0, tuple(range(n)))
    config = SMRConfig(n=n, f=f, verification=verification)
    replicas = []
    for replica_id in view.members:
        replicas.append(ModSmartReplica(
            sim, network, registry, keydir, replica_id, view, config, costs,
            delivery_factory()))
    return network, view, replicas


def run_naive_smartcoin(
    verification: VerificationMode = VerificationMode.SEQUENTIAL,
    storage: StorageMode = StorageMode.SYNC,
    n: int = 4,
    clients: int = 2400,
    duration: float = 4.0,
    seed: int = 1,
    costs: CostModel | None = None,
    workload: str = "spend",
    label: str | None = None,
) -> ExperimentResult:
    """The naive design of Section IV: app-level blockchain inside the SMR."""
    sim = Simulator(seed)
    costs = costs or CostModel()
    minters = all_minter_addresses(clients)
    network, view, replicas = _build_modsmart_cluster(
        sim, costs, n, verification,
        lambda: NaiveBlockchainDelivery(SmartCoin(minters=minters), storage))
    stations, _ = deploy_clients(sim, network, lambda: view, clients,
                                 workload=workload,
                                 signed=_signed(verification))
    for station in stations:
        station.start_all(stagger=0.002)
    sim.run(until=duration)
    name = label or (f"SMaRtCoin naive ({verification.value} verify, "
                     f"{storage.value} writes, n={n})")
    return _measure(stations, duration, name, extra={
        "blocks": replicas[0].delivery.blocks_built,
    })


def run_dura_smart(
    verification: VerificationMode = VerificationMode.PARALLEL,
    storage: StorageMode = StorageMode.SYNC,
    n: int = 4,
    clients: int = 2400,
    duration: float = 4.0,
    seed: int = 1,
    costs: CostModel | None = None,
    workload: str = "spend",
    label: str | None = None,
) -> ExperimentResult:
    """SMaRtCoin over the BFT-SMART durability layer (Dura-SMaRt)."""
    sim = Simulator(seed)
    costs = costs or CostModel()
    minters = all_minter_addresses(clients)
    network, view, replicas = _build_modsmart_cluster(
        sim, costs, n, verification,
        lambda: DuraSmartDelivery(SmartCoin(minters=minters), storage))
    stations, _ = deploy_clients(sim, network, lambda: view, clients,
                                 workload=workload,
                                 signed=_signed(verification))
    for station in stations:
        station.start_all(stagger=0.002)
    sim.run(until=duration)
    name = label or (f"Durable-SMaRt ({verification.value} verify, "
                     f"{storage.value} writes, n={n})")
    groups = replicas[0].delivery.group_sizes
    mean_group = sum(groups) / len(groups) if groups else 0
    return _measure(stations, duration, name,
                    extra={"mean_group_commit": mean_group})


# ----------------------------------------------------------------------
# Comparators (Table II)
# ----------------------------------------------------------------------
def run_tendermint(
    clients: int = 2400,
    duration: float = 6.0,
    seed: int = 1,
    costs: CostModel | None = None,
    config: TendermintConfig | None = None,
    label: str = "Tendermint",
) -> ExperimentResult:
    sim = Simulator(seed)
    costs = costs or CostModel()
    network = Network(sim, costs.network)
    config = config or TendermintConfig()
    minters = all_minter_addresses(clients)
    cluster = TendermintCluster(sim, network, config, costs,
                                lambda: SmartCoin(minters=minters))
    view = cluster.view()
    stations, _ = deploy_clients(sim, network, lambda: view, clients,
                                 workload="spend", signed=True)
    for station in stations:
        station.start_all(stagger=0.002)
    sim.run(until=duration)
    return _measure(stations, duration, label, warmup=min(2.0, duration / 3),
                    extra={"blocks": cluster.nodes[0].blocks_committed})


def run_fabric(
    clients: int = 2400,
    duration: float = 6.0,
    seed: int = 1,
    costs: CostModel | None = None,
    config: FabricConfig | None = None,
    label: str = "Hyperledger Fabric",
) -> ExperimentResult:
    sim = Simulator(seed)
    costs = costs or CostModel()
    network = Network(sim, costs.network)
    config = config or FabricConfig()
    minters = all_minter_addresses(clients)
    cluster = FabricCluster(sim, network, config, costs,
                            lambda: SmartCoin(minters=minters))
    view = cluster.view()
    stations, _ = deploy_clients(sim, network, lambda: view, clients,
                                 workload="spend", signed=True)
    for station in stations:
        station.start_all(stagger=0.002)
    sim.run(until=duration)
    return _measure(stations, duration, label, warmup=min(2.0, duration / 3),
                    extra={"blocks": cluster.peers[0].blocks_committed})
