"""Experiment harness: one :class:`Scenario` in, one :class:`ExperimentResult` out.

A :class:`Scenario` declares *what* to run — system, cluster size, client
population, duration, seed, warmup, workload, observability options — and
:func:`run` executes it: build a fresh simulation, deploy the paper's client
population, run for the simulated duration and measure throughput the way
the paper measures it (fixed operation-count intervals, 20% highest-variance
intervals discarded, average — Section VI-A).

The historical ``run_smartchain`` / ``run_naive_smartcoin`` / ``run_dura_smart``
/ ``run_tendermint`` / ``run_fabric`` entry points remain as deprecated thin
wrappers that construct the equivalent Scenario — byte-identical results,
plus a :class:`DeprecationWarning` pointing at ``Scenario``/``run``.

Results are plain data: every field of :class:`ExperimentResult` survives
``json.dumps`` (see :meth:`ExperimentResult.to_json`).  Live simulation
objects — the consortium, the stations, the simulator — are available on the
separate :attr:`ExperimentResult.handle`, which is deliberately *not* part
of the serialized result.
"""

from __future__ import annotations

import gc
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.apps.naive import NaiveBlockchainDelivery
from repro.apps.smartcoin import SmartCoin
from repro.baselines.fabric import FabricCluster, FabricConfig
from repro.baselines.tendermint import TendermintCluster, TendermintConfig
from repro.clients.client import ClientStation
from repro.config import (
    CostModel,
    PersistenceVariant,
    SMRConfig,
    SmartChainConfig,
    StorageMode,
    VerificationMode,
)
from repro.core.node import bootstrap
from repro.crypto import hashing as _hashing
from repro.crypto.keys import KeyRegistry
from repro.net.network import Network
from repro.obs import Observability, build_run_report
from repro.obs.audit import SafetyAuditor
from repro.sim.engine import Simulator
from repro.sim.trace import merge_stamps, op_window_rates, trimmed_mean
from repro.smr.durability import DuraSmartDelivery
from repro.smr.keydir import KeyDirectory
from repro.smr.replica import ModSmartReplica
from repro.smr.views import View
from repro.workloads.coingen import all_minter_addresses, deploy_clients

__all__ = [
    "DEFAULT_WARMUP",
    "Scenario",
    "RunHandle",
    "ExperimentResult",
    "run",
    "run_smartchain",
    "run_naive_smartcoin",
    "run_dura_smart",
    "run_tendermint",
    "run_fabric",
]

#: Simulated seconds excluded from the head of every measurement: the ramp
#: (staggered client starts, pipeline fill) settles within the first second
#: on every system modelled here, so a single default applies uniformly.
#: Historically the comparator runs (Tendermint, Fabric) used a different,
#: duration-dependent warmup than the SMARTCHAIN/BFT-SMART runs, which
#: skewed the Table II comparison; a Scenario now carries one explicit value.
DEFAULT_WARMUP = 1.0

#: Back-compat alias (pre-Scenario name).
WARMUP = DEFAULT_WARMUP

#: Systems a Scenario may name (the keys of ``_BUILDERS``, spelled out
#: here so :meth:`Scenario.__post_init__` can validate at construction).
_VALID_SYSTEMS = frozenset(
    {"smartchain", "naive", "dura", "tendermint", "fabric"})

#: Systems whose replicas host a pluggable consensus engine.
_ENGINE_SYSTEMS = frozenset({"smartchain", "naive", "dura"})

#: Workload generators :func:`repro.workloads.coingen.deploy_clients`
#: understands.
_VALID_WORKLOADS = frozenset({"mint", "spend", "mint_then_spend"})


# ----------------------------------------------------------------------
# Scenario: the single description of an experiment
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Scenario:
    """Declarative description of one experiment run.

    ``system`` selects the stack: ``smartchain`` (Algorithm 1 on Mod-SMaRt),
    ``naive`` (app-level blockchain on BFT-SMART), ``dura`` (Dura-SMaRt
    durability layer), ``tendermint`` or ``fabric`` (Table II comparators).
    The consensus-related fields (``variant``, ``storage``, ``verification``,
    ``checkpoint_period``) apply to the systems that have them; ``config``
    carries a :class:`TendermintConfig`/:class:`FabricConfig` override for
    the comparators.
    """

    system: str = "smartchain"
    #: Consensus engine key (see repro.consensus.engine_names()); applies
    #: to the engine-hosting systems (smartchain/naive/dura).
    engine: str = "modsmart"
    #: Number of independent replica groups (``system="smartchain"`` only).
    #: ``1`` is the classic single-group deployment, byte-identical to the
    #: pre-sharding harness.
    shards: int = 1
    #: Fraction of SPEND operations that become two-phase cross-shard
    #: transfers (LOCK-and-burn on the source shard, certificate-verified
    #: mint on the destination).  Ignored when ``shards == 1``.
    cross_shard_fraction: float = 0.0
    #: Consensus instances the leader keeps in flight at once
    #: (``SMRConfig.pipeline_depth``); 1 = classic sequential ordering,
    #: byte-identical to the pre-pipelining harness.  Engine-hosting
    #: systems only.
    pipeline_depth: int = 1
    #: Modeled execution cores (``SMRConfig.exec_cores``) for parallel
    #: deterministic execution; 1 = execute on the SM thread.
    exec_cores: int = 1
    n: int = 4
    clients: int = 2400
    duration: float = 4.0
    seed: int = 1
    warmup: float = DEFAULT_WARMUP
    workload: str = "spend"
    variant: PersistenceVariant = PersistenceVariant.STRONG
    storage: StorageMode = StorageMode.SYNC
    verification: VerificationMode = VerificationMode.PARALLEL
    checkpoint_period: int = 10_000
    costs: CostModel | None = None
    config: Any = None
    label: str | None = None
    op_window: int = 2000
    #: Record metrics, pipeline spans and resource utilization; the result
    #: then carries a machine-readable report (ExperimentResult.report).
    observe: bool = False
    #: Trace one request in this many (deterministic in the request key).
    trace_sample_every: int = 1
    #: Record the typed protocol event stream (defaults to ``observe``).
    record_events: bool | None = None
    #: Attach the online safety auditor (implies event recording); any
    #: invariant violation raises AuditError when the run finishes.
    audit: bool = False
    #: Attach the online liveness auditor (implies event recording): every
    #: request must be replied within ``liveness_bound`` of ``max(submit,
    #: liveness_gst)``, and ``wedge_k`` consecutive decisionless regency
    #: changes flag a wedge.  Violations raise AuditError when the run
    #: finishes, exactly like ``audit``.
    audit_liveness: bool = False
    #: Post-GST commit-latency bound in simulated seconds.  ``None`` defers
    #: to the fault plan's ``liveness`` hints, then to 1.0 s.
    liveness_bound: float | None = None
    #: Global stabilization time the bound is measured from.  ``None``
    #: defers to the fault plan's hints, then to the cost model's network
    #: GST.
    liveness_gst: float | None = None
    #: Consecutive decisionless regency changes that count as a wedge.
    #: ``None`` defers to the fault plan's hints, then to 4.
    wedge_k: int | None = None
    #: Bound on retained protocol events (oldest dropped and counted).
    event_capacity: int = 100_000
    #: Fault plan for adversarial runs: a :class:`repro.faults.FaultPlan`,
    #: a named plan (``"equivocate"``), a JSON file path, an inline JSON
    #: string, or ``None`` for a fault-free run.
    faults: Any = None

    def __post_init__(self) -> None:
        """Fail fast on unknown names and out-of-range sharding knobs.

        A typo'd system/engine/workload used to surface only deep inside
        :func:`run` (or worse, fall through to a default workload); here it
        raises at Scenario *construction*, before any simulation exists.
        """
        if self.system not in _VALID_SYSTEMS:
            raise ValueError(
                f"unknown system {self.system!r}; "
                f"expected one of {sorted(_VALID_SYSTEMS)}")
        if self.system in _ENGINE_SYSTEMS:
            from repro.consensus import engine_names
            names = engine_names()
            if self.engine not in names:
                raise ValueError(
                    f"unknown consensus engine {self.engine!r}; "
                    f"expected one of {sorted(names)}")
        if self.workload not in _VALID_WORKLOADS:
            raise ValueError(
                f"unknown workload {self.workload!r}; "
                f"expected one of {sorted(_VALID_WORKLOADS)}")
        from repro.core.multichain import MAX_SHARDS
        if not 1 <= self.shards <= MAX_SHARDS:
            raise ValueError(
                f"shards must be in 1..{MAX_SHARDS}, got {self.shards}")
        if self.shards > 1 and self.system != "smartchain":
            raise ValueError(
                f"sharding requires system='smartchain', "
                f"got {self.system!r}")
        if not 0.0 <= self.cross_shard_fraction <= 1.0:
            raise ValueError(
                f"cross_shard_fraction must be in [0, 1], "
                f"got {self.cross_shard_fraction}")
        if self.pipeline_depth < 1:
            raise ValueError(
                f"pipeline_depth must be >= 1, got {self.pipeline_depth}")
        if self.exec_cores < 1:
            raise ValueError(
                f"exec_cores must be >= 1, got {self.exec_cores}")
        if ((self.pipeline_depth != 1 or self.exec_cores != 1)
                and self.system not in _ENGINE_SYSTEMS):
            raise ValueError(
                "pipeline_depth/exec_cores apply only to the engine-hosting "
                f"systems {sorted(_ENGINE_SYSTEMS)}, got {self.system!r}")

    def describe(self) -> dict[str, Any]:
        """JSON-safe summary of the scenario (for bench reports)."""
        out = self._describe_base()
        if self.shards > 1:  # additive: single-group summaries unchanged
            out = {**out, "shards": self.shards,
                   "cross_shard_fraction": self.cross_shard_fraction}
        if self.pipeline_depth != 1 or self.exec_cores != 1:  # additive too
            out = {**out, "pipeline_depth": self.pipeline_depth,
                   "exec_cores": self.exec_cores}
        return out

    def _describe_base(self) -> dict[str, Any]:
        return {
            "system": self.system,
            "engine": self.engine,
            "n": self.n,
            "clients": self.clients,
            "duration": self.duration,
            "seed": self.seed,
            "warmup": self.warmup,
            "workload": self.workload,
            "variant": self.variant.value,
            "storage": self.storage.value,
            "verification": self.verification.value,
            "faults": self._fault_plan_name(),
        }

    def _fault_plan_name(self) -> str | None:
        if self.faults is None:
            return None
        name = getattr(self.faults, "name", None)
        if isinstance(name, str):
            return name
        if isinstance(self.faults, dict):
            return self.faults.get("name")
        return str(self.faults)


@dataclass
class RunHandle:
    """Live objects of a finished run (not serialized with the result).

    ``system`` is the stack's top-level object: the :class:`Consortium` for
    ``smartchain``, the replica list for ``naive``/``dura``, the cluster for
    the comparators.
    """

    scenario: Scenario
    sim: Simulator
    obs: Observability
    stations: list[ClientStation]
    system: Any


@dataclass
class ExperimentResult:
    """Outcome of one experiment run.  Every field except ``handle`` is
    plain data and survives ``json.dumps`` (see :meth:`to_json`)."""

    label: str
    throughput: float              # tx/s, trimmed-mean of intervals
    latency_mean: float            # seconds
    latency_p95: float
    completed: int
    duration: float
    latency_p99: float = 0.0
    warmup: float = DEFAULT_WARMUP
    interval_rates: list[float] = field(default_factory=list)
    #: Scalar outcome metrics (blocks built, certificates, group commit ...).
    metrics: dict[str, Any] = field(default_factory=dict)
    #: Machine-readable run report (observed runs only; see repro.obs.report).
    report: dict[str, Any] | None = None
    #: Live objects of the run; excluded from serialization.
    handle: RunHandle | None = field(default=None, repr=False, compare=False)

    def to_json(self) -> dict[str, Any]:
        """The result as a JSON-serializable dict (no live objects)."""
        return {
            "label": self.label,
            "throughput": self.throughput,
            "latency_mean": self.latency_mean,
            "latency_p95": self.latency_p95,
            "latency_p99": self.latency_p99,
            "completed": self.completed,
            "duration": self.duration,
            "warmup": self.warmup,
            "interval_rates": list(self.interval_rates),
            "metrics": dict(self.metrics),
            "report": self.report,
        }

    def row(self) -> str:
        return (f"{self.label:<42} {self.throughput:>9.0f} tx/s   "
                f"{self.latency_mean * 1000:>7.1f} ms")


def _measure(stations: list[ClientStation], duration: float,
             label: str, op_window: int = 2000,
             warmup: float = DEFAULT_WARMUP,
             extra: dict | None = None,
             metrics: dict | None = None) -> ExperimentResult:
    # The paper's method: throughput per fixed operation-count interval,
    # discard the 20% with the greatest deviation, average the rest.
    in_window = merge_stamps([st.meter for st in stations],
                             start=warmup, end=duration)
    total_in_window = sum(count for _, count in in_window)
    # Short runs shrink the window so at least a few intervals form — but a
    # window must still span several reply bursts (blocks complete up to
    # 512 transactions at one instant), or burst-local rates explode.
    op_window = max(1100, min(op_window, total_in_window // 3 or 1100))
    rates = op_window_rates(in_window, op_window)
    if rates:
        throughput = trimmed_mean(rates)
    elif duration > warmup:
        throughput = total_in_window / (duration - warmup)
    else:
        throughput = 0.0
    latencies = sorted(lat for st in stations for lat in st.latency.samples)
    mean = sum(latencies) / len(latencies) if latencies else 0.0
    p95 = latencies[min(len(latencies) - 1,
                        int(0.95 * len(latencies)))] if latencies else 0.0
    p99 = latencies[min(len(latencies) - 1,
                        int(0.99 * len(latencies)))] if latencies else 0.0
    completed = sum(st.meter.total for st in stations)
    return ExperimentResult(
        label=label,
        throughput=throughput,
        latency_mean=mean,
        latency_p95=p95,
        latency_p99=p99,
        completed=completed,
        duration=duration,
        warmup=warmup,
        interval_rates=rates,
        metrics={**(extra or {}), **(metrics or {})},
    )


def _signed(verification: VerificationMode) -> bool:
    return verification is not VerificationMode.NONE


# ----------------------------------------------------------------------
# System builders: Scenario -> (stations, label, system, metrics thunk)
# ----------------------------------------------------------------------
@dataclass
class _Built:
    stations: list[ClientStation]
    label: str
    system: Any
    metrics: Callable[[], dict[str, Any]]
    #: Fault-injection surface: the network plus ``{id: replica}`` (and,
    #: for SMARTCHAIN, ``{id: SmartChainNode}``).  Builders that cannot
    #: host Byzantine replicas (the comparators) leave these unset.
    network: Any = None
    replicas: dict[int, Any] | None = None
    nodes: dict[int, Any] | None = None


def _pipeline_suffix(label: str, sc: Scenario) -> str:
    """Append the pipelining knobs to a ``(...)`` label when non-default."""
    if sc.pipeline_depth != 1 or sc.exec_cores != 1:
        label = (f"{label[:-1]}, depth={sc.pipeline_depth}, "
                 f"cores={sc.exec_cores})")
    return label


def _build_smartchain(sim: Simulator, sc: Scenario,
                      costs: CostModel) -> _Built:
    if sc.shards > 1:
        return _build_multishard(sim, sc, costs)
    f = (sc.n - 1) // 3
    config = SmartChainConfig(
        smr=SMRConfig(n=sc.n, f=f, verification=sc.verification,
                      pipeline_depth=sc.pipeline_depth,
                      exec_cores=sc.exec_cores),
        variant=sc.variant,
        storage=sc.storage,
        checkpoint_period=sc.checkpoint_period,
    )
    minters = all_minter_addresses(sc.clients)
    consortium = bootstrap(sim, tuple(range(sc.n)),
                           lambda: SmartCoin(minters=minters),
                           config, costs=costs, engine=sc.engine)
    view_holder = [consortium.genesis.view]
    for node in consortium.nodes.values():
        node.view_listeners.append(
            lambda view: view_holder.__setitem__(0, view))
    stations, _wallets = deploy_clients(
        sim, consortium.network, lambda: view_holder[0], sc.clients,
        workload=sc.workload, signed=_signed(sc.verification))
    label = (f"SmartChain {sc.variant.value} "
             f"({sc.storage.value}, {sc.verification.value}, n={sc.n})")
    if sc.engine != "modsmart":
        label = f"{label[:-1]}, {sc.engine})"
    label = _pipeline_suffix(label, sc)
    node0 = consortium.node(0)
    return _Built(stations, label, consortium, lambda: {
        "blocks": node0.delivery.blocks_built,
        "certificates": node0.delivery.certs_completed,
    }, network=consortium.network,
        replicas={nid: node.replica
                  for nid, node in consortium.nodes.items()},
        nodes=dict(consortium.nodes))


def _event_app_hook(sim: Simulator, node_id: int) -> Callable[..., None]:
    """An application-level event emitter bound to one node's identity."""
    def hook(kind: str, **fields: Any) -> None:
        obs = sim.obs
        if obs.record_events:
            obs.events.emit(kind, node_id, sim.now, **fields)
    return hook


def _build_multishard(sim: Simulator, sc: Scenario,
                      costs: CostModel) -> _Built:
    """``sc.shards`` independent SMARTCHAIN groups on one substrate.

    Mirrors :func:`_build_smartchain` per group, then wires the pieces the
    single-group path has no use for: a :class:`TransferVerifier` per shard
    (so replicas can statelessly verify other shards' lock certificates),
    an application event hook per node (typed ``cert-redeemed`` /
    ``cert-rejected`` events for the cross-shard auditor) and the sharded
    client deployment with routed stations.
    """
    from repro.core.multichain import bootstrap_shards
    from repro.ledger.xshard import TransferVerifier
    from repro.workloads.coingen import deploy_sharded_clients

    f = (sc.n - 1) // 3
    minters = all_minter_addresses(sc.clients)

    def config_factory(shard: int) -> SmartChainConfig:
        return SmartChainConfig(
            smr=SMRConfig(n=sc.n, f=f, verification=sc.verification,
                          pipeline_depth=sc.pipeline_depth,
                          exec_cores=sc.exec_cores),
            variant=sc.variant,
            storage=sc.storage,
            checkpoint_period=sc.checkpoint_period,
        )

    multichain = bootstrap_shards(
        sim, sc.shards, sc.n,
        lambda shard: SmartCoin(minters=minters),
        config_factory, costs=costs, engine=sc.engine)
    genesis_by_shard = {shard: multichain.genesis_of(shard)
                        for shard in range(sc.shards)}
    record_events = sim.obs.record_events
    for shard in range(sc.shards):
        verifier = TransferVerifier(shard, multichain.registry,
                                    genesis_by_shard)
        for node in multichain.group(shard).nodes.values():
            node.app.transfer_verifier = verifier
            if record_events:
                node.app.event_hook = _event_app_hook(sim, node.id)
    stations, _wallets = deploy_sharded_clients(
        sim, multichain.network, multichain, sc.clients,
        cross_shard_fraction=sc.cross_shard_fraction,
        workload=sc.workload, signed=_signed(sc.verification))
    label = (f"SmartChain {sc.variant.value} "
             f"({sc.storage.value}, {sc.verification.value}, n={sc.n}, "
             f"shards={sc.shards}")
    if sc.cross_shard_fraction > 0:
        label = f"{label}, x={sc.cross_shard_fraction:g}"
    label = f"{label})"
    if sc.engine != "modsmart":
        label = f"{label[:-1]}, {sc.engine})"
    label = _pipeline_suffix(label, sc)

    def metrics() -> dict[str, Any]:
        per_shard: dict[str, dict[str, Any]] = {}
        blocks = certificates = redeemed = 0
        for shard, group in enumerate(multichain.groups):
            node0 = min(group.nodes.values(), key=lambda node: node.id)
            app = node0.app
            entry = {
                "blocks": node0.delivery.blocks_built,
                "certificates": node0.delivery.certs_completed,
                "redeemed": len(app.redeemed),
                "xlock_value_out": app.xlock_value_out,
                "xmint_value_in": app.xmint_value_in,
            }
            per_shard[str(shard)] = entry
            blocks += entry["blocks"]
            certificates += entry["certificates"]
            redeemed += entry["redeemed"]
        return {
            "blocks": blocks,
            "certificates": certificates,
            "transfers_redeemed": redeemed,
            "per_shard": per_shard,
        }

    return _Built(stations, label, multichain, metrics,
                  network=multichain.network,
                  replicas=multichain.replicas(),
                  nodes=multichain.nodes())


def _build_modsmart_cluster(sim, costs, n, verification, delivery_factory,
                            engine="modsmart", pipeline_depth=1,
                            exec_cores=1):
    registry = KeyRegistry(seed=sim.seed)
    network = Network(sim, costs.network)
    keydir = KeyDirectory()
    f = (n - 1) // 3
    view = View(0, tuple(range(n)))
    config = SMRConfig(n=n, f=f, verification=verification,
                       pipeline_depth=pipeline_depth, exec_cores=exec_cores)
    replicas = []
    for replica_id in view.members:
        replicas.append(ModSmartReplica(
            sim, network, registry, keydir, replica_id, view, config, costs,
            delivery_factory(), engine=engine))
    return network, view, replicas


def _build_naive(sim: Simulator, sc: Scenario, costs: CostModel) -> _Built:
    minters = all_minter_addresses(sc.clients)
    network, view, replicas = _build_modsmart_cluster(
        sim, costs, sc.n, sc.verification,
        lambda: NaiveBlockchainDelivery(SmartCoin(minters=minters),
                                        sc.storage),
        engine=sc.engine, pipeline_depth=sc.pipeline_depth,
        exec_cores=sc.exec_cores)
    stations, _ = deploy_clients(sim, network, lambda: view, sc.clients,
                                 workload=sc.workload,
                                 signed=_signed(sc.verification))
    label = (f"SMaRtCoin naive ({sc.verification.value} verify, "
             f"{sc.storage.value} writes, n={sc.n})")
    label = _pipeline_suffix(label, sc)
    return _Built(stations, label, replicas, lambda: {
        "blocks": replicas[0].delivery.blocks_built,
    }, network=network, replicas={r.id: r for r in replicas})


def _build_dura(sim: Simulator, sc: Scenario, costs: CostModel) -> _Built:
    minters = all_minter_addresses(sc.clients)
    network, view, replicas = _build_modsmart_cluster(
        sim, costs, sc.n, sc.verification,
        lambda: DuraSmartDelivery(SmartCoin(minters=minters), sc.storage),
        engine=sc.engine, pipeline_depth=sc.pipeline_depth,
        exec_cores=sc.exec_cores)
    stations, _ = deploy_clients(sim, network, lambda: view, sc.clients,
                                 workload=sc.workload,
                                 signed=_signed(sc.verification))
    label = (f"Durable-SMaRt ({sc.verification.value} verify, "
             f"{sc.storage.value} writes, n={sc.n})")
    label = _pipeline_suffix(label, sc)

    def metrics() -> dict[str, Any]:
        groups = replicas[0].delivery.group_sizes
        return {
            "group_commits": len(groups),
            "mean_group_commit": sum(groups) / len(groups) if groups else 0,
        }

    return _Built(stations, label, replicas, metrics,
                  network=network, replicas={r.id: r for r in replicas})


def _build_tendermint(sim: Simulator, sc: Scenario,
                      costs: CostModel) -> _Built:
    network = Network(sim, costs.network)
    config = sc.config or TendermintConfig()
    minters = all_minter_addresses(sc.clients)
    cluster = TendermintCluster(sim, network, config, costs,
                                lambda: SmartCoin(minters=minters))
    view = cluster.view()
    stations, _ = deploy_clients(sim, network, lambda: view, sc.clients,
                                 workload=sc.workload, signed=True)
    return _Built(stations, "Tendermint", cluster, lambda: {
        "blocks": cluster.nodes[0].blocks_committed,
    })


def _build_fabric(sim: Simulator, sc: Scenario, costs: CostModel) -> _Built:
    network = Network(sim, costs.network)
    config = sc.config or FabricConfig()
    minters = all_minter_addresses(sc.clients)
    cluster = FabricCluster(sim, network, config, costs,
                            lambda: SmartCoin(minters=minters))
    view = cluster.view()
    stations, _ = deploy_clients(sim, network, lambda: view, sc.clients,
                                 workload=sc.workload, signed=True)
    return _Built(stations, "Hyperledger Fabric", cluster, lambda: {
        "blocks": cluster.peers[0].blocks_committed,
    })


_BUILDERS: dict[str, Callable[[Simulator, Scenario, CostModel], _Built]] = {
    "smartchain": _build_smartchain,
    "naive": _build_naive,
    "dura": _build_dura,
    "tendermint": _build_tendermint,
    "fabric": _build_fabric,
}


# ----------------------------------------------------------------------
# The single entry point
# ----------------------------------------------------------------------
def run(scenario: Scenario) -> ExperimentResult:
    """Execute one scenario and measure it the paper's way.

    When ``scenario.observe`` is set, the run records metrics, pipeline
    spans and resource utilization, and the result carries a machine-
    readable report (:attr:`ExperimentResult.report`).  When
    ``scenario.audit`` is set, a :class:`~repro.obs.audit.SafetyAuditor`
    checks the protocol event stream online and the run fails with
    :class:`~repro.obs.audit.AuditError` on any invariant violation.
    """
    builder = _BUILDERS.get(scenario.system)
    if builder is None:
        raise ValueError(
            f"unknown system {scenario.system!r}; "
            f"expected one of {sorted(_BUILDERS)}")
    fault_plan = None
    if scenario.faults is not None:
        from repro.faults import load_plan
        # Resolve the plan up front: the liveness auditor reads the plan's
        # ``liveness`` hints (GST, bound) before the injector installs it.
        fault_plan = load_plan(scenario.faults)
    record_events = scenario.record_events
    if record_events is None:
        record_events = scenario.observe
    costs = scenario.costs or CostModel()
    obs = Observability(enabled=scenario.observe,
                        sample_every=scenario.trace_sample_every,
                        record_events=(record_events or scenario.audit
                                       or scenario.audit_liveness),
                        event_capacity=scenario.event_capacity)
    auditor = None
    if scenario.audit:
        if scenario.shards > 1:
            # One scoped safety auditor per shard (consensus ids and block
            # heights restart per group, so one global auditor would flag
            # phantom agreement violations), plus the cross-shard
            # no-double-mint invariant over cert-redemption events.
            from repro.core.multichain import shard_of_node
            from repro.obs.shard import (CrossShardAuditor, ShardAuditGroup,
                                         ShardScopedSafetyAuditor)
            auditor = ShardAuditGroup(
                [ShardScopedSafetyAuditor(shard, shard_of_node)
                 for shard in range(scenario.shards)],
                cross=CrossShardAuditor())
        else:
            auditor = SafetyAuditor()
        auditor.attach(obs)
    liveness = None
    if scenario.audit_liveness:
        from repro.obs.liveness import LivenessAuditor
        hints = dict(getattr(fault_plan, "liveness", None) or {})
        bound = scenario.liveness_bound
        if bound is None:
            bound = hints.get("bound", 1.0)
        gst = scenario.liveness_gst
        if gst is None:
            gst = hints.get("gst", costs.network.gst)
        wedge_k = scenario.wedge_k
        if wedge_k is None:
            wedge_k = hints.get("wedge_k", 4)
        if scenario.shards > 1:
            # Per-shard regency timelines: shard 1's leader changes must
            # not reset shard 0's wedge counter (and vice versa).
            from repro.core.multichain import shard_of_node
            from repro.obs.shard import (ShardLivenessGroup,
                                         ShardScopedLivenessAuditor)
            liveness = ShardLivenessGroup(
                [ShardScopedLivenessAuditor(shard, shard_of_node,
                                            bound=bound, gst=gst,
                                            wedge_k=wedge_k)
                 for shard in range(scenario.shards)])
        else:
            liveness = LivenessAuditor(bound=bound, gst=gst, wedge_k=wedge_k)
        liveness.attach(obs)
    recovery = None
    if scenario.audit:
        # Recovery evidence rides the same event stream the safety auditor
        # checks: every audited run also verifies that recovered replicas
        # rejoin on the canonical chain (docs/faults.md).
        from repro.obs.recovery import RecoveryAuditor
        if scenario.shards > 1:
            from repro.core.multichain import shard_of_node
            recovery = RecoveryAuditor(scope=shard_of_node)
        else:
            recovery = RecoveryAuditor()
        recovery.attach(obs)
    sim = Simulator(scenario.seed, obs=obs)
    built = builder(sim, scenario, costs)
    if fault_plan is not None:
        from repro.faults import FaultInjector
        if built.replicas is None:
            raise ValueError(
                f"system {scenario.system!r} does not support fault "
                "injection (no replica runtimes to compromise)")
        plan = fault_plan
        replicas = built.replicas
        nodes = built.nodes
        if plan.shard is not None:
            # Shard-scoped plan: translate its shard-relative node ids to
            # global ids and confine the injection surface to that shard's
            # runtimes, so protocol overrides, crashes and partitions
            # cannot leak into other groups.
            from repro.core.multichain import SHARD_STRIDE, shard_of_node
            if plan.shard >= scenario.shards:
                raise ValueError(
                    f"fault plan {plan.name!r} targets shard {plan.shard} "
                    f"but the scenario has {scenario.shards} shard(s)")
            plan = plan.scoped_to(plan.shard * SHARD_STRIDE)
            replicas = {nid: replica for nid, replica in replicas.items()
                        if shard_of_node(nid) == plan.shard}
            nodes = ({nid: node for nid, node in nodes.items()
                      if shard_of_node(nid) == plan.shard}
                     if nodes is not None else None)
        FaultInjector(plan).install(sim, built.network, replicas, nodes)
    for station in built.stations:
        station.start_all(stagger=0.002)
    # Start cold so the per-run cache deltas reported below are
    # deterministic regardless of what ran earlier in this process.
    _hashing.clear_caches()
    cache_before = _hashing.cache_stats()
    # The run allocates millions of short-lived, almost entirely acyclic
    # objects (heap entries, messages, payload tuples); generational cycle
    # collection is pure overhead while it executes, so pause the collector
    # for the duration (restored even if the run raises).
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        sim.run(until=scenario.duration)
    finally:
        if gc_was_enabled:
            gc.enable()
    metrics = built.metrics()
    cache_after = _hashing.cache_stats()
    for key, before in cache_before.items():
        metrics[key] = cache_after[key] - before
    metrics["heap_compactions"] = sim.compactions
    if built.replicas is not None:
        # Synchronizer health rollup: how often the cluster changed leader,
        # how often a progress watchdog fired, and the (possibly backed-off)
        # timeout each regency was installed with (cluster-wide max, keyed
        # by regency number as a string so the dict survives json.dumps).
        synchronizers = [replica.synchronizer
                         for replica in built.replicas.values()]
        metrics["regency_changes"] = sum(
            s.regency_changes for s in synchronizers)
        metrics["watchdog_fires"] = sum(
            s.watchdog_fires for s in synchronizers)
        timeouts: dict[str, float] = {}
        for sync in synchronizers:
            for regency, timeout in sync.timeout_history.items():
                key = str(regency)
                timeouts[key] = max(timeouts.get(key, 0.0), timeout)
        metrics["regency_timeouts"] = timeouts
        # Recovery/storage health rollup (docs/faults.md, "Storage faults
        # & verified recovery"): cluster-wide totals of what verified
        # recovery replayed, cut and fell back on, plus the storage-level
        # detections that triggered it.
        metrics["recovery.verified_entries"] = sum(
            getattr(r.delivery, "recovery_verified_entries", 0)
            for r in built.replicas.values())
        metrics["recovery.truncated_entries"] = sum(
            getattr(r.delivery, "recovery_truncated_entries", 0)
            for r in built.replicas.values())
        metrics["recovery.fallbacks"] = sum(
            getattr(r.delivery, "recovery_fallbacks", 0)
            for r in built.replicas.values())
        metrics["storage.bitrot_detected"] = sum(
            r.store.bitrot_detected for r in built.replicas.values())
        metrics["storage.gray_periods"] = sum(
            r.store.disk.gray_periods for r in built.replicas.values())
    if obs.enabled:
        for key, before in cache_before.items():
            obs.metrics.counter(f"crypto.{key}").inc(cache_after[key] - before)
        obs.metrics.counter("sim.heap_compactions").inc(sim.compactions)
        if built.replicas is not None:
            obs.metrics.counter("sync.regency_changes").inc(
                metrics["regency_changes"])
            obs.metrics.counter("sync.watchdog_fires").inc(
                metrics["watchdog_fires"])
            for key in ("recovery.verified_entries",
                        "recovery.truncated_entries", "recovery.fallbacks",
                        "storage.bitrot_detected", "storage.gray_periods"):
                obs.metrics.counter(key).inc(metrics[key])
        for shard, entry in metrics.get("per_shard", {}).items():
            obs.metrics.counter(f"shard.{shard}.blocks").inc(
                entry["blocks"])
            obs.metrics.counter(f"shard.{shard}.certificates").inc(
                entry["certificates"])
            obs.metrics.counter(f"shard.{shard}.transfers_redeemed").inc(
                entry["redeemed"])
    result = _measure(built.stations, scenario.duration,
                      scenario.label or built.label,
                      op_window=scenario.op_window,
                      warmup=scenario.warmup,
                      metrics=metrics)
    result.handle = RunHandle(scenario=scenario, sim=sim, obs=obs,
                              stations=built.stations, system=built.system)
    if liveness is not None:
        # Flag still-unreplied requests against the horizon before the
        # report snapshots the auditor's summary.
        liveness.finalize(scenario.duration)
    if scenario.observe:
        result.report = build_run_report(result, obs, scenario.duration)
    if auditor is not None:
        auditor.raise_if_violated()
    if liveness is not None:
        liveness.raise_if_violated()
    if recovery is not None:
        recovery.raise_if_violated()
    return result


# ----------------------------------------------------------------------
# Deprecated wrappers (thin Scenario constructors)
# ----------------------------------------------------------------------
def _deprecated_wrapper(name: str) -> None:
    warnings.warn(
        f"{name}() is deprecated; construct a Scenario and call run() "
        f"instead: run(Scenario(system=..., ...))",
        DeprecationWarning, stacklevel=3)


def run_smartchain(
    variant: PersistenceVariant = PersistenceVariant.STRONG,
    storage: StorageMode = StorageMode.SYNC,
    verification: VerificationMode = VerificationMode.PARALLEL,
    n: int = 4,
    clients: int = 2400,
    duration: float = 4.0,
    seed: int = 1,
    checkpoint_period: int = 10_000,
    costs: CostModel | None = None,
    workload: str = "spend",
    label: str | None = None,
    warmup: float = DEFAULT_WARMUP,
    observe: bool = False,
    audit: bool = False,
    faults: Any = None,
    engine: str = "modsmart",
) -> ExperimentResult:
    """One SMARTCHAIN configuration under the SMaRtCoin workload.

    .. deprecated:: construct a :class:`Scenario` and call :func:`run`.
    """
    _deprecated_wrapper("run_smartchain")
    return run(Scenario(
        system="smartchain", variant=variant, storage=storage,
        verification=verification, n=n, clients=clients, duration=duration,
        seed=seed, checkpoint_period=checkpoint_period, costs=costs,
        workload=workload, label=label, warmup=warmup, observe=observe,
        audit=audit, faults=faults, engine=engine))


def run_naive_smartcoin(
    verification: VerificationMode = VerificationMode.SEQUENTIAL,
    storage: StorageMode = StorageMode.SYNC,
    n: int = 4,
    clients: int = 2400,
    duration: float = 4.0,
    seed: int = 1,
    costs: CostModel | None = None,
    workload: str = "spend",
    label: str | None = None,
    warmup: float = DEFAULT_WARMUP,
    observe: bool = False,
    audit: bool = False,
) -> ExperimentResult:
    """The naive design of Section IV: app-level blockchain inside the SMR.

    .. deprecated:: construct a :class:`Scenario` and call :func:`run`.
    """
    _deprecated_wrapper("run_naive_smartcoin")
    return run(Scenario(
        system="naive", verification=verification, storage=storage, n=n,
        clients=clients, duration=duration, seed=seed, costs=costs,
        workload=workload, label=label, warmup=warmup, observe=observe, audit=audit))


def run_dura_smart(
    verification: VerificationMode = VerificationMode.PARALLEL,
    storage: StorageMode = StorageMode.SYNC,
    n: int = 4,
    clients: int = 2400,
    duration: float = 4.0,
    seed: int = 1,
    costs: CostModel | None = None,
    workload: str = "spend",
    label: str | None = None,
    warmup: float = DEFAULT_WARMUP,
    observe: bool = False,
    audit: bool = False,
) -> ExperimentResult:
    """SMaRtCoin over the BFT-SMART durability layer (Dura-SMaRt).

    .. deprecated:: construct a :class:`Scenario` and call :func:`run`.
    """
    _deprecated_wrapper("run_dura_smart")
    return run(Scenario(
        system="dura", verification=verification, storage=storage, n=n,
        clients=clients, duration=duration, seed=seed, costs=costs,
        workload=workload, label=label, warmup=warmup, observe=observe, audit=audit))


def run_tendermint(
    clients: int = 2400,
    duration: float = 6.0,
    seed: int = 1,
    costs: CostModel | None = None,
    config: TendermintConfig | None = None,
    label: str = "Tendermint",
    warmup: float = DEFAULT_WARMUP,
    observe: bool = False,
    audit: bool = False,
) -> ExperimentResult:
    """Tendermint comparator run.

    .. deprecated:: construct a :class:`Scenario` and call :func:`run`.
    """
    _deprecated_wrapper("run_tendermint")
    return run(Scenario(
        system="tendermint", clients=clients, duration=duration, seed=seed,
        costs=costs, config=config, label=label, warmup=warmup,
        observe=observe, audit=audit))


def run_fabric(
    clients: int = 2400,
    duration: float = 6.0,
    seed: int = 1,
    costs: CostModel | None = None,
    config: FabricConfig | None = None,
    label: str = "Hyperledger Fabric",
    warmup: float = DEFAULT_WARMUP,
    observe: bool = False,
    audit: bool = False,
) -> ExperimentResult:
    """Hyperledger Fabric comparator run.

    .. deprecated:: construct a :class:`Scenario` and call :func:`run`.
    """
    _deprecated_wrapper("run_fabric")
    return run(Scenario(
        system="fabric", clients=clients, duration=duration, seed=seed,
        costs=costs, config=config, label=label, warmup=warmup,
        observe=observe, audit=audit))
