"""Stable storage with explicit sync semantics.

This module is where the paper's durability distinctions become executable:

- data *appended* to a log lives in a volatile buffer (the OS page cache)
  until a **sync** completes — a crash before the sync loses it;
- data that a completed sync covers is **stable** — it survives any number of
  recoverable crashes (Section III: "any data successfully stored in such a
  device will not be lost in the advent of a recoverable crash fault");
- an :class:`AsyncFlusher` periodically syncs in the background, which is
  exactly the paper's *λ-Persistence*: a small, environment-dependent suffix
  of the history can be lost.

A :class:`StableStore` belongs to a *machine*, not to a replica object: when
a replica crashes and a new instance recovers on the same machine, it reads
the survivor state from the machine's store.  Byzantine replicas may truncate
or corrupt their own store (``corrupt_suffix``), which the model permits —
stable storage protects against crashes, not against the owner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import StorageError
from repro.sim.engine import Simulator
from repro.storage.disk import Disk, DiskConfig

__all__ = ["LogEntry", "StableStore", "AsyncFlusher"]


@dataclass
class LogEntry:
    """One record appended to a named log."""

    payload: Any
    nbytes: int
    seq: int = field(default=0)


class StableStore:
    """Named append-only logs and key cells with stable/volatile regions."""

    def __init__(self, sim: Simulator, disk: Disk | None = None,
                 disk_config: DiskConfig | None = None, name: str = "store"):
        self.sim = sim
        self.disk = disk or Disk(sim, disk_config, name=f"{name}.disk")
        self.name = name
        self._stable_logs: dict[str, list[LogEntry]] = {}
        self._volatile_logs: dict[str, list[LogEntry]] = {}
        self._stable_cells: dict[str, tuple[Any, int]] = {}
        self._volatile_cells: dict[str, tuple[Any, int]] = {}
        self._pending_bytes = 0
        self._seq = 0

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def append(self, log: str, payload: Any, nbytes: int) -> LogEntry:
        """Buffer an append to ``log``.  Volatile until a sync covers it."""
        if nbytes < 0:
            raise StorageError("entry size must be non-negative")
        self._seq += 1
        entry = LogEntry(payload, nbytes, self._seq)
        self._volatile_logs.setdefault(log, []).append(entry)
        self._pending_bytes += nbytes
        return entry

    def put(self, key: str, payload: Any, nbytes: int) -> None:
        """Buffer a write to a named cell (snapshot pointer, view file, ...)."""
        self._volatile_cells[key] = (payload, nbytes)
        self._pending_bytes += nbytes

    def sync(self, fn: Callable[..., Any] | None = None, *args: Any) -> None:
        """Write every buffered byte to stable media with one barrier.

        All appends and puts issued before this call are stable when ``fn``
        fires.  This is the group-commit primitive: cost is one sync latency
        plus the bandwidth term for the accumulated bytes.
        """
        # Snapshot the volatile sets now; later appends belong to the next sync.
        logs = {name: list(entries) for name, entries in self._volatile_logs.items()}
        cells = dict(self._volatile_cells)
        nbytes = self._pending_bytes
        self._volatile_logs.clear()
        self._volatile_cells.clear()
        self._pending_bytes = 0
        self.disk.write(nbytes, True, self._commit, logs, cells, fn, args)

    def write_snapshot(self, key: str, payload: Any, nbytes: int,
                       fn: Callable[..., Any] | None = None, *args: Any) -> None:
        """Write a large snapshot directly to stable media (own barrier)."""
        self.disk.write_snapshot(nbytes, self._commit,
                                 {}, {key: (payload, nbytes)}, fn, args)

    def _commit(self, logs: dict[str, list[LogEntry]],
                cells: dict[str, tuple[Any, int]],
                fn: Callable[..., Any] | None, args: tuple) -> None:
        for name, entries in logs.items():
            self._stable_logs.setdefault(name, []).extend(entries)
        self._stable_cells.update(cells)
        if fn is not None:
            fn(*args)

    # ------------------------------------------------------------------
    # Crash semantics
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Drop everything not yet covered by a completed sync."""
        self._volatile_logs.clear()
        self._volatile_cells.clear()
        self._pending_bytes = 0

    def corrupt_suffix(self, log: str, keep: int) -> list[LogEntry]:
        """Byzantine owner truncates its own stable log to ``keep`` entries.

        Returns the removed suffix (so adversarial tests can replay it).
        """
        entries = self._stable_logs.get(log, [])
        removed = entries[keep:]
        self._stable_logs[log] = entries[:keep]
        return removed

    # ------------------------------------------------------------------
    # Reads (recovery path — only stable data is visible)
    # ------------------------------------------------------------------
    def read_log(self, log: str) -> list[Any]:
        """Stable entries of ``log``, in append order."""
        return [entry.payload for entry in self._stable_logs.get(log, [])]

    def read_cell(self, key: str, default: Any = None) -> Any:
        if key in self._stable_cells:
            return self._stable_cells[key][0]
        return default

    def log_length(self, log: str) -> int:
        return len(self._stable_logs.get(log, []))

    def volatile_length(self, log: str) -> int:
        return len(self._volatile_logs.get(log, []))

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet scheduled for a sync."""
        return self._pending_bytes

    def stable_bytes(self) -> int:
        total = sum(e.nbytes for entries in self._stable_logs.values() for e in entries)
        total += sum(nbytes for _, nbytes in self._stable_cells.values())
        return total


class AsyncFlusher:
    """Background flusher implementing asynchronous (λ-Persistence) writes.

    Calls :meth:`StableStore.sync` every ``interval`` simulated seconds while
    there is buffered data.  The loss window after a full crash is therefore
    bounded by roughly one interval of appended blocks — the paper's small
    integer λ > 0.
    """

    def __init__(self, store: StableStore, interval: float = 0.05):
        self.store = store
        self.interval = interval
        self._timer = None
        self._running = False

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._timer = self.store.sim.schedule(self.interval, self._tick)

    def stop(self) -> None:
        self._running = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _tick(self) -> None:
        if not self._running:
            return
        if self.store.pending_bytes > 0:
            self.store.sync()
        self._timer = self.store.sim.schedule(self.interval, self._tick)
