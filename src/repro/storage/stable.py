"""Stable storage with explicit sync semantics.

This module is where the paper's durability distinctions become executable:

- data *appended* to a log lives in a volatile buffer (the OS page cache)
  until a **sync** completes — a crash before the sync loses it;
- data that a completed sync covers is **stable** — it survives any number of
  recoverable crashes (Section III: "any data successfully stored in such a
  device will not be lost in the advent of a recoverable crash fault");
- an :class:`AsyncFlusher` periodically syncs in the background, which is
  exactly the paper's *λ-Persistence*: a small, environment-dependent suffix
  of the history can be lost.

A :class:`StableStore` belongs to a *machine*, not to a replica object: when
a replica crashes and a new instance recovers on the same machine, it reads
the survivor state from the machine's store.  Byzantine replicas may truncate
or corrupt their own store (``corrupt_suffix``), which the model permits —
stable storage protects against crashes, not against the owner.

Stable media also fails in ways that are *not* crashes.  Every record
carries a content checksum computed at :meth:`StableStore.append` time, and
:meth:`StableStore.inject_fault` models the classic storage pathologies —
``bit-rot`` (a stable payload is silently corrupted, its checksum left
stale), ``torn-write`` (a sync barrier commits only a prefix of its group
while still reporting success), ``fsync-lie`` (the barrier reports success
but the data stays in the volatile cache) and ``gray-disk`` (sync latency
inflates by a factor over a window; see :meth:`Disk.degrade`).  Verified
recovery (``docs/faults.md``, "Storage faults & verified recovery") replays
only the longest checksum- and linkage-valid prefix.  Checksums are pure
host-side bookkeeping: they charge no simulated time, so fault-free runs
are byte-identical with or without them.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.crypto.hashing import hash_obj
from repro.errors import CryptoError, StorageError
from repro.sim.engine import Simulator
from repro.storage.disk import Disk, DiskConfig

__all__ = ["LogEntry", "StableStore", "AsyncFlusher", "STORAGE_FAULT_KINDS"]

#: Injectable storage pathologies (see :meth:`StableStore.inject_fault`).
STORAGE_FAULT_KINDS = ("bit-rot", "torn-write", "gray-disk", "fsync-lie")


def _fingerprint(payload: Any) -> bytes:
    """Content checksum of a record payload.

    Uses the canonical encoder where the payload supports it (tuples of
    primitives, objects with ``to_canonical``); anything else — application
    snapshots, checkpoint dataclasses — falls back to hashing its ``repr``,
    which is stable within a run and is only ever compared against a
    checksum computed by the same process.
    """
    try:
        return hash_obj(payload)
    except CryptoError:
        return hash_obj(repr(payload))


def _bitrot(value: Any, rng) -> Any:
    """Return a copy of ``value`` with one spot flipped.

    Walks containers to a leaf and perturbs it, preserving the overall
    shape (a corrupted oplog record still parses — that is what makes
    unverified replay dangerous rather than crash-on-read).  Dataclasses
    prefer their identity fields so the corruption is visible in the
    record's canonical encoding, not just in cost-model metadata.
    """
    if isinstance(value, bool):
        return not value
    if isinstance(value, int):
        return value ^ (1 << rng.randrange(16))
    if isinstance(value, float):
        return value + 1.0 + rng.random()
    if isinstance(value, str):
        if not value:
            return "\x00"
        i = rng.randrange(len(value))
        return value[:i] + chr(ord(value[i]) ^ 1) + value[i + 1:]
    if isinstance(value, bytes):
        if not value:
            return b"\x01"
        i = rng.randrange(len(value))
        return value[:i] + bytes([value[i] ^ 1]) + value[i + 1:]
    if isinstance(value, (tuple, list)):
        if not value:
            return type(value)((0,))
        i = rng.randrange(len(value))
        items = list(value)
        items[i] = _bitrot(items[i], rng)
        return items if isinstance(value, list) else tuple(items)
    if isinstance(value, dict):
        if not value:
            return {"bit-rot": 1}
        keys = sorted(value, key=repr)
        key = keys[rng.randrange(len(keys))]
        out = dict(value)
        out[key] = _bitrot(out[key], rng)
        return out
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        names = [f.name for f in dataclasses.fields(value) if f.init]
        preferred = [n for n in ("client_id", "req_id") if n in names]
        candidates = preferred or [
            n for n in names if isinstance(getattr(value, n), (int, str))]
        if candidates:
            name = candidates[rng.randrange(len(candidates))]
            return dataclasses.replace(
                value, **{name: _bitrot(getattr(value, name), rng)})
    return ("bit-rot", repr(value))


@dataclass
class LogEntry:
    """One record appended to a named log."""

    payload: Any
    nbytes: int
    seq: int = field(default=0)
    #: Content checksum computed at append time; re-checked by verified
    #: recovery.  Bit-rot corrupts the payload and leaves this stale.
    checksum: bytes = b""


class StableStore:
    """Named append-only logs and key cells with stable/volatile regions."""

    def __init__(self, sim: Simulator, disk: Disk | None = None,
                 disk_config: DiskConfig | None = None, name: str = "store"):
        self.sim = sim
        self.disk = disk or Disk(sim, disk_config, name=f"{name}.disk")
        self.name = name
        #: Owning machine/replica id (set by the replica; -1 = unbound).
        self.node = -1
        self._stable_logs: dict[str, list[LogEntry]] = {}
        self._volatile_logs: dict[str, list[LogEntry]] = {}
        self._stable_cells: dict[str, tuple[Any, int, bytes]] = {}
        self._volatile_cells: dict[str, tuple[Any, int, bytes]] = {}
        self._pending_bytes = 0
        self._seq = 0
        # Injected-fault state (inert in fault-free runs).
        self._torn_write_armed = False
        self._torn_write_keep: int | None = None
        self._fsync_lies = 0
        self._fault_rng = None
        #: Checksum mismatches detected on this store (verified recovery).
        self.bitrot_detected = 0
        #: Entries lost to torn sync barriers.
        self.torn_entries_lost = 0

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def append(self, log: str, payload: Any, nbytes: int) -> LogEntry:
        """Buffer an append to ``log``.  Volatile until a sync covers it."""
        if nbytes < 0:
            raise StorageError("entry size must be non-negative")
        self._seq += 1
        entry = LogEntry(payload, nbytes, self._seq, _fingerprint(payload))
        self._volatile_logs.setdefault(log, []).append(entry)
        self._pending_bytes += nbytes
        return entry

    def put(self, key: str, payload: Any, nbytes: int) -> None:
        """Buffer a write to a named cell (snapshot pointer, view file, ...)."""
        if nbytes < 0:
            raise StorageError("cell size must be non-negative")
        self._volatile_cells[key] = (payload, nbytes, _fingerprint(payload))
        self._pending_bytes += nbytes

    def sync(self, fn: Callable[..., Any] | None = None, *args: Any) -> None:
        """Write every buffered byte to stable media with one barrier.

        All appends and puts issued before this call are stable when ``fn``
        fires.  This is the group-commit primitive: cost is one sync latency
        plus the bandwidth term for the accumulated bytes.
        """
        # Snapshot the volatile sets now; later appends belong to the next sync.
        logs = {name: list(entries) for name, entries in self._volatile_logs.items()}
        cells = dict(self._volatile_cells)
        nbytes = self._pending_bytes
        self._volatile_logs.clear()
        self._volatile_cells.clear()
        self._pending_bytes = 0
        self.disk.write(nbytes, True, self._commit, logs, cells, fn, args)

    def write_snapshot(self, key: str, payload: Any, nbytes: int,
                       fn: Callable[..., Any] | None = None, *args: Any) -> None:
        """Write a large snapshot directly to stable media (own barrier)."""
        if nbytes < 0:
            raise StorageError("snapshot size must be non-negative")
        self.disk.write_snapshot(
            nbytes, self._commit, {},
            {key: (payload, nbytes, _fingerprint(payload))}, fn, args)

    def _commit(self, logs: dict[str, list[LogEntry]],
                cells: dict[str, tuple[Any, int, bytes]],
                fn: Callable[..., Any] | None, args: tuple) -> None:
        if self._fsync_lies > 0 and (logs or cells):
            # fsync-lie: the barrier reports success but nothing reached
            # stable media — the data silently re-enters the volatile
            # buffer (in front, preserving append order) and is lost if a
            # crash lands before an honest sync covers it.
            self._fsync_lies -= 1
            for name, entries in logs.items():
                self._volatile_logs[name] = (
                    entries + self._volatile_logs.get(name, []))
                self._pending_bytes += sum(e.nbytes for e in entries)
            for key, cell in cells.items():
                if key not in self._volatile_cells:
                    self._volatile_cells[key] = cell
                    self._pending_bytes += cell[1]
            if fn is not None:
                fn(*args)
            return
        flat = sorted((e for entries in logs.values() for e in entries),
                      key=lambda e: e.seq)
        if self._torn_write_armed and flat:
            # torn-write: the barrier commits only a proper prefix of the
            # group (in append order) yet still reports success; the lost
            # suffix leaves a hole that later syncs append past.
            self._torn_write_armed = False
            if self._torn_write_keep is not None:
                keep = max(0, min(self._torn_write_keep, len(flat) - 1))
            else:
                keep = self._fault_rng.randrange(len(flat))
            kept = {e.seq for e in flat[:keep]}
            self.torn_entries_lost += len(flat) - keep
            logs = {name: [e for e in entries if e.seq in kept]
                    for name, entries in logs.items()}
        for name, entries in logs.items():
            self._stable_logs.setdefault(name, []).extend(entries)
        self._stable_cells.update(cells)
        if fn is not None:
            fn(*args)

    # ------------------------------------------------------------------
    # Fault injection (seeded; see docs/faults.md)
    # ------------------------------------------------------------------
    def inject_fault(self, kind: str, rng, **params: Any) -> dict:
        """Apply one storage pathology; returns a description of what hit.

        ``rng`` is the caller's private random stream (the fault injector
        derives one per spec), so honest-path randomness is untouched and
        the same plan + seed reproduces the same corruption bit for bit.
        """
        if kind == "bit-rot":
            cell = params.get("cell")
            if cell is not None:
                stored = self._stable_cells.get(cell)
                if stored is None:
                    return {"applied": False, "kind": kind}
                payload, nbytes, checksum = stored
                self._stable_cells[cell] = (
                    _bitrot(payload, rng), nbytes, checksum)
                return {"applied": True, "kind": kind, "cell": cell}
            log = params.get("log")
            if log is None:
                candidates = [n for n, e in self._stable_logs.items() if e]
                if not candidates:
                    return {"applied": False, "kind": kind}
                log = max(candidates,
                          key=lambda n: len(self._stable_logs[n]))
            entries = self._stable_logs.get(log, [])
            if not entries:
                return {"applied": False, "kind": kind, "log": log}
            index = params.get("index")
            if index is None:
                index = rng.randrange(len(entries))
            index = int(index) % len(entries)
            entry = entries[index]
            entry.payload = _bitrot(entry.payload, rng)
            # The checksum is deliberately left stale: that is the fault.
            return {"applied": True, "kind": kind, "log": log, "index": index}
        if kind == "torn-write":
            self._torn_write_armed = True
            keep = params.get("keep")
            self._torn_write_keep = None if keep is None else int(keep)
            self._fault_rng = rng
            return {"applied": True, "kind": kind}
        if kind == "fsync-lie":
            count = int(params.get("count", 1))
            if count <= 0:
                raise StorageError("fsync-lie count must be positive")
            self._fsync_lies += count
            return {"applied": True, "kind": kind, "count": count}
        if kind == "gray-disk":
            factor = float(params.get("factor", 8.0))
            duration = float(params.get("duration", 0.5))
            if factor <= 1.0 or duration <= 0:
                raise StorageError(
                    "gray-disk needs factor > 1 and duration > 0")
            budget = params.get("budget")
            until = self.sim.now + duration
            self.disk.degrade(factor, until,
                              None if budget is None else float(budget))
            return {"applied": True, "kind": kind, "factor": factor,
                    "until": until}
        raise StorageError(f"unknown storage fault kind: {kind!r}")

    # ------------------------------------------------------------------
    # Crash semantics
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Drop everything not yet covered by a completed sync."""
        self._volatile_logs.clear()
        self._volatile_cells.clear()
        self._pending_bytes = 0

    def corrupt_suffix(self, log: str, keep: int) -> list[LogEntry]:
        """Byzantine owner truncates its own stable log to ``keep`` entries.

        Returns the removed suffix (so adversarial tests can replay it).
        """
        return self.truncate_log(log, keep)

    def truncate_log(self, log: str, keep: int) -> list[LogEntry]:
        """Drop the stable suffix of ``log`` past the first ``keep`` entries
        (verified recovery cuts at the first invalid record).  Returns the
        removed suffix."""
        entries = self._stable_logs.get(log, [])
        removed = entries[keep:]
        self._stable_logs[log] = entries[:keep]
        return removed

    # ------------------------------------------------------------------
    # Reads (recovery path — only stable data is visible)
    # ------------------------------------------------------------------
    def read_log(self, log: str) -> list[Any]:
        """Stable entries of ``log``, in append order."""
        return [entry.payload for entry in self._stable_logs.get(log, [])]

    def read_entries(self, log: str) -> list[LogEntry]:
        """Stable records of ``log`` with their checksums, in append order."""
        return list(self._stable_logs.get(log, []))

    @staticmethod
    def verify_entry(entry: LogEntry) -> bool:
        """Does the record's payload still match its append-time checksum?"""
        return _fingerprint(entry.payload) == entry.checksum

    def verify_cell(self, key: str) -> bool:
        """Checksum-check a stable cell; absent cells are vacuously valid."""
        cell = self._stable_cells.get(key)
        if cell is None:
            return True
        return _fingerprint(cell[0]) == cell[2]

    def read_cell(self, key: str, default: Any = None) -> Any:
        if key in self._stable_cells:
            return self._stable_cells[key][0]
        return default

    def log_length(self, log: str) -> int:
        return len(self._stable_logs.get(log, []))

    def volatile_length(self, log: str) -> int:
        return len(self._volatile_logs.get(log, []))

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet scheduled for a sync."""
        return self._pending_bytes

    def stable_bytes(self) -> int:
        total = sum(e.nbytes for entries in self._stable_logs.values() for e in entries)
        total += sum(cell[1] for cell in self._stable_cells.values())
        return total


class AsyncFlusher:
    """Background flusher implementing asynchronous (λ-Persistence) writes.

    Calls :meth:`StableStore.sync` every ``interval`` simulated seconds while
    there is buffered data.  The loss window after a full crash is therefore
    bounded by roughly one interval of appended blocks — the paper's small
    integer λ > 0.
    """

    def __init__(self, store: StableStore, interval: float = 0.05):
        if interval <= 0:
            raise StorageError(
                f"flush interval must be positive, got {interval!r} "
                "(a zero or negative interval busy-loops the simulator)")
        self.store = store
        self.interval = interval
        self._timer = None
        self._running = False

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._timer = self.store.sim.schedule(self.interval, self._tick)

    def stop(self) -> None:
        self._running = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _tick(self) -> None:
        if not self._running:
            return
        if self.store.pending_bytes > 0:
            self.store.sync()
        self._timer = self.store.sim.schedule(self.interval, self._tick)
