"""Disk timing model.

A single-channel service station parameterized like the paper's testbed disk
(a 146 GB SCSI HDD): every *synchronous* write pays a fixed stable-write
latency (seek + rotational + fsync overhead) plus a bandwidth term.  This is
the physical fact the Dura-SMaRt durability layer exploits: the latency term
dominates, so syncing ten batches in one write costs almost the same as
syncing one ("diluting the cost of a synchronous write among many requests",
Section II-C2).

The model also covers the *gray* failure mode — a disk that is slow rather
than dead: :meth:`Disk.degrade` inflates the service time of synchronous
writes by a factor over a window, and any sync whose service time exceeds
the declared budget raises a ``disk-degraded`` protocol event (the recovery
auditor counts them).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.sim.engine import Simulator
from repro.sim.resource import Resource

__all__ = ["DiskConfig", "Disk"]


@dataclass
class DiskConfig:
    """Timing parameters of the stable-storage device."""

    sync_latency: float = 0.0025       # seconds per synchronous barrier (fsync)
    bandwidth_bytes: float = 100e6     # sequential write bandwidth, bytes/s
    snapshot_bandwidth_bytes: float = 45e6  # large-snapshot bandwidth, bytes/s


class Disk:
    """A single-channel disk: writes queue FIFO and complete in order."""

    def __init__(self, sim: Simulator, config: DiskConfig | None = None, name: str = "disk"):
        self.sim = sim
        self.config = config or DiskConfig()
        self.channel = Resource(sim, servers=1, name=name)
        self.bytes_written = 0
        self.sync_count = 0
        #: Owning machine/replica id (set by the replica; -1 = unbound).
        self.node = -1
        #: Number of gray-disk degradation windows opened on this device.
        self.gray_periods = 0
        # Gray-disk state: inert (a float comparison) in fault-free runs.
        self._degrade_factor = 1.0
        self._degrade_until = -1.0
        self._degrade_budget: float | None = None

    def degrade(self, factor: float, until: float,
                budget: float | None = None) -> None:
        """Open a gray window: until ``until``, synchronous writes take
        ``factor`` times as long; syncs whose total service exceeds
        ``budget`` emit a ``disk-degraded`` event."""
        self._degrade_factor = factor
        self._degrade_until = until
        self._degrade_budget = budget
        self.gray_periods += 1

    def write(
        self,
        nbytes: int,
        sync: bool,
        fn: Callable[..., Any] | None = None,
        *args: Any,
    ) -> None:
        """Queue a write of ``nbytes``.

        ``sync=True`` adds the stable-write latency (the write is on stable
        media when ``fn`` fires); ``sync=False`` models writing into the OS
        page cache (bandwidth only, still ordered behind earlier writes).
        """
        service = nbytes / self.config.bandwidth_bytes
        if sync:
            service += self.config.sync_latency
            self.sync_count += 1
            if self._degrade_until > self.sim.now:
                service *= self._degrade_factor
                if (self._degrade_budget is not None
                        and service > self._degrade_budget):
                    obs = self.sim.obs
                    if obs.record_events:
                        obs.events.emit(
                            "disk-degraded", self.node, self.sim.now,
                            latency=service, budget=self._degrade_budget,
                            factor=self._degrade_factor)
        self.bytes_written += nbytes
        self.channel.submit(service, fn, *args)

    def write_snapshot(
        self,
        nbytes: int,
        fn: Callable[..., Any] | None = None,
        *args: Any,
    ) -> None:
        """Queue a large snapshot write at the (lower) snapshot bandwidth."""
        service = nbytes / self.config.snapshot_bandwidth_bytes + self.config.sync_latency
        self.bytes_written += nbytes
        self.sync_count += 1
        self.channel.submit(service, fn, *args)

    def utilization(self) -> float:
        return self.channel.utilization()
