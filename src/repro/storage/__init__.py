"""Stable storage substrate: disk timing model and crash-aware stores."""

from repro.storage.disk import Disk, DiskConfig
from repro.storage.stable import AsyncFlusher, LogEntry, StableStore

__all__ = ["Disk", "DiskConfig", "AsyncFlusher", "LogEntry", "StableStore"]
