"""Workload generation: the paper's MINT/SPEND client methodology."""

from repro.workloads.coingen import (
    all_minter_addresses,
    client_address,
    deploy_clients,
    endless_mint,
    endless_spend_cycle,
    mint_ops,
    mint_then_spend,
    spend_ops,
)

__all__ = [
    "all_minter_addresses",
    "client_address",
    "deploy_clients",
    "endless_mint",
    "endless_spend_cycle",
    "mint_ops",
    "mint_then_spend",
    "spend_ops",
]
