"""SMaRtCoin workload generators — the paper's two-phase methodology.

Section VI-A: "the experiments were conducted in two phases: the first one is
composed of MINT operations to generate new coins, and then a second phase
considers SPEND operations to transfer the generated coins to new addresses.
Following the UTXO model, this corresponds to single-input, single-output
SPEND transactions."
"""

from __future__ import annotations

import itertools
from typing import Iterator

from repro.apps.smartcoin import MINT_SIZES, SPEND_SIZES, Wallet
from repro.clients.client import Client, ClientStation, OpSpec

__all__ = [
    "mint_ops",
    "spend_ops",
    "mint_then_spend",
    "endless_mint",
    "deploy_clients",
    "client_address",
]


def client_address(index: int) -> str:
    return f"addr:{index}"


def mint_ops(wallet: Wallet, count: int, value: int = 1,
             signed: bool = True) -> Iterator[OpSpec]:
    """``count`` MINT operations with the paper's request/reply sizes."""
    for _ in range(count):
        yield OpSpec(wallet.mint_op(value), size=MINT_SIZES[0],
                     reply_size=MINT_SIZES[1], signed=signed)


def spend_ops(wallet: Wallet, recipient: str, count: int | None = None,
              signed: bool = True) -> Iterator[OpSpec]:
    """Single-input single-output SPENDs of coins the wallet owns.

    Stops when the wallet runs dry (or after ``count`` operations).
    """
    produced = 0
    while count is None or produced < count:
        coin = wallet.take_coin()
        if coin is None:
            return
        produced += 1
        yield OpSpec(wallet.spend_op(coin, recipient), size=SPEND_SIZES[0],
                     reply_size=SPEND_SIZES[1], signed=signed)


def mint_then_spend(wallet: Wallet, recipient: str, mint_count: int,
                    signed: bool = True) -> Iterator[OpSpec]:
    """Phase 1 then phase 2 for one client, chained."""
    yield from mint_ops(wallet, mint_count, signed=signed)
    yield from spend_ops(wallet, recipient, signed=signed)


def endless_mint(wallet: Wallet, value: int = 1,
                 signed: bool = True) -> Iterator[OpSpec]:
    """An open-ended MINT stream (steady-state throughput runs)."""
    while True:
        yield OpSpec(wallet.mint_op(value), size=MINT_SIZES[0],
                     reply_size=MINT_SIZES[1], signed=signed)


def endless_spend_cycle(wallet: Wallet, signed: bool = True) -> Iterator[OpSpec]:
    """Mint a working set once, then spend-to-self forever: a steady-state
    SPEND stream (each spend's output refills the wallet on completion)."""
    yield from mint_ops(wallet, 8, signed=signed)
    while True:
        coin = wallet.take_coin()
        if coin is None:
            # Outputs not yet acknowledged; mint a replacement to keep going.
            yield OpSpec(wallet.mint_op(1), size=MINT_SIZES[0],
                         reply_size=MINT_SIZES[1], signed=signed)
            continue
        yield OpSpec(wallet.spend_op(coin, wallet.address),
                     size=SPEND_SIZES[0], reply_size=SPEND_SIZES[1],
                     signed=signed)


def deploy_clients(
    sim,
    network,
    view_of,
    num_clients: int,
    num_stations: int = 4,
    workload: str = "spend",
    signed: bool = True,
    station_base: int = 9000,
    mint_count: int = 8,
    send_window: float = 0.001,
) -> tuple[list[ClientStation], list[Wallet]]:
    """Create the paper's client deployment: ``num_clients`` spread over
    ``num_stations`` machines, each driving a SMaRtCoin wallet.

    ``workload``: ``"mint"`` (endless mints), ``"spend"`` (mint a working
    set then spend-cycle — the phase the paper reports), or
    ``"mint_then_spend"`` (finite two-phase run).
    """
    stations = []
    wallets = []
    for station_index in range(num_stations):
        station = ClientStation(sim, network, station_base + station_index,
                                view_of, send_window=send_window)
        stations.append(station)
    for index in range(num_clients):
        station = stations[index % num_stations]
        wallet = Wallet(client_address(index))
        wallets.append(wallet)
        if workload == "mint":
            ops = endless_mint(wallet, signed=signed)
        elif workload == "spend":
            ops = endless_spend_cycle(wallet, signed=signed)
        else:
            ops = mint_then_spend(wallet, client_address((index + 1) % num_clients),
                                  mint_count, signed=signed)
        client = Client(station, ops,
                        on_result=_wallet_tracker(wallet))
        del client  # adopted by the station
    return stations, wallets


def _wallet_tracker(wallet: Wallet):
    def track(spec: OpSpec, result) -> None:
        wallet.note_result(spec.op, result)
    return track


def all_minter_addresses(num_clients: int) -> list[str]:
    """Genesis minter list covering every workload client."""
    return [client_address(i) for i in range(num_clients)]
