"""SMaRtCoin workload generators — the paper's two-phase methodology.

Section VI-A: "the experiments were conducted in two phases: the first one is
composed of MINT operations to generate new coins, and then a second phase
considers SPEND operations to transfer the generated coins to new addresses.
Following the UTXO model, this corresponds to single-input, single-output
SPEND transactions."
"""

from __future__ import annotations

from typing import Iterator

from repro.apps.smartcoin import (
    MINT_SIZES,
    SPEND_SIZES,
    XLOCK_SIZES,
    XMINT_SIZES,
    Wallet,
)
from repro.clients.client import Client, ClientStation, OpSpec

__all__ = [
    "mint_ops",
    "spend_ops",
    "mint_then_spend",
    "endless_mint",
    "endless_cross_spend",
    "deploy_clients",
    "deploy_sharded_clients",
    "client_address",
    "home_shard",
    "shard_of_coin",
]


def client_address(index: int) -> str:
    return f"addr:{index}"


def home_shard(index: int, shards: int) -> int:
    """The shard a workload client (and its address) belongs to.

    The coin/key space is partitioned deterministically: client ``index``
    lives on shard ``index % shards``, mints its coins there, and every
    coin it creates is spendable only on that shard (a cross-shard SPEND
    must go through the two-phase lock/mint protocol).
    """
    return index % shards


def shard_of_coin(cid: str, shards: int) -> int:
    """Deterministic coin-id → shard map (cross-shard routing).

    A coin is *spendable* on the shard that ordered its creation (its
    owner's home shard); this map assigns every coin id a canonical shard
    any party can derive without coordination.  The cross-shard workload
    uses it to pick the destination of a migrating coin: when a transfer
    is due, the coin goes to its canonical shard (bumped by one when that
    is already home).  Coin ids are uniform hex digests
    (:func:`repro.apps.smartcoin.coin_id`), so the leading 32 bits spread
    coins evenly over the groups.
    """
    return int(cid[:8], 16) % shards


def mint_ops(wallet: Wallet, count: int, value: int = 1,
             signed: bool = True) -> Iterator[OpSpec]:
    """``count`` MINT operations with the paper's request/reply sizes."""
    for _ in range(count):
        yield OpSpec(wallet.mint_op(value), size=MINT_SIZES[0],
                     reply_size=MINT_SIZES[1], signed=signed)


def spend_ops(wallet: Wallet, recipient: str, count: int | None = None,
              signed: bool = True) -> Iterator[OpSpec]:
    """Single-input single-output SPENDs of coins the wallet owns.

    Stops when the wallet runs dry (or after ``count`` operations).
    """
    produced = 0
    while count is None or produced < count:
        coin = wallet.take_coin()
        if coin is None:
            return
        produced += 1
        yield OpSpec(wallet.spend_op(coin, recipient), size=SPEND_SIZES[0],
                     reply_size=SPEND_SIZES[1], signed=signed)


def mint_then_spend(wallet: Wallet, recipient: str, mint_count: int,
                    signed: bool = True) -> Iterator[OpSpec]:
    """Phase 1 then phase 2 for one client, chained."""
    yield from mint_ops(wallet, mint_count, signed=signed)
    yield from spend_ops(wallet, recipient, signed=signed)


def endless_mint(wallet: Wallet, value: int = 1,
                 signed: bool = True) -> Iterator[OpSpec]:
    """An open-ended MINT stream (steady-state throughput runs)."""
    while True:
        yield OpSpec(wallet.mint_op(value), size=MINT_SIZES[0],
                     reply_size=MINT_SIZES[1], signed=signed)


def endless_spend_cycle(wallet: Wallet, signed: bool = True) -> Iterator[OpSpec]:
    """Mint a working set once, then spend-to-self forever: a steady-state
    SPEND stream (each spend's output refills the wallet on completion)."""
    yield from mint_ops(wallet, 8, signed=signed)
    while True:
        coin = wallet.take_coin()
        if coin is None:
            # Outputs not yet acknowledged; mint a replacement to keep going.
            yield OpSpec(wallet.mint_op(1), size=MINT_SIZES[0],
                         reply_size=MINT_SIZES[1], signed=signed)
            continue
        yield OpSpec(wallet.spend_op(coin, wallet.address),
                     size=SPEND_SIZES[0], reply_size=SPEND_SIZES[1],
                     signed=signed)


class _CrossBox:
    """Mailbox between a client's result hook and its workload generator.

    ``locks`` holds ``(xfer_id, source_shard, dest_shard)`` triples whose
    lock succeeded but whose certificate has not been presented yet; the
    hook appends on the reply and the generator (resumed right after the
    hook runs — see :meth:`Client._completed`) drains it.  ``location``
    tracks which shard each owned coin currently lives on — a coin is only
    spendable on the shard that ordered its creation, so spends of
    migrated coins must be routed to their current home.
    """

    __slots__ = ("locks", "location")

    def __init__(self) -> None:
        self.locks: list[tuple[str, int, int]] = []
        self.location: dict[str, int] = {}


def endless_cross_spend(wallet: Wallet, box: _CrossBox, shard: int,
                        shards: int, fraction: float, fetch_cert,
                        signed: bool = True) -> Iterator[OpSpec]:
    """Steady-state SPEND stream with a deterministic cross-shard fraction.

    Like :func:`endless_spend_cycle`, but every ``1/fraction``-th coin (an
    exact accumulator, not a random draw — determinism) is moved to another
    shard via the two-phase protocol: an ``xlock`` on the home shard, then
    — once ``fetch_cert(home, xfer_id)`` can assemble the transfer
    certificate from a persisted block — an ``xmint`` routed to the
    destination shard.  A certificate still in flight is retried on later
    iterations; its value sits in the locked-in-transit ledger either way,
    so conservation holds at every instant.
    """
    yield from mint_ops(wallet, 8, signed=signed)
    acc = 0.0
    pending: list[tuple[str, int, int]] = []
    while True:
        # Present any lock whose certificate is now available.
        pending.extend(box.locks)
        box.locks.clear()
        still_waiting: list[tuple[str, int, int]] = []
        ready: list[OpSpec] = []
        for xfer_id, source, dest in pending:
            cert = fetch_cert(source, xfer_id)
            if cert is None:
                still_waiting.append((xfer_id, source, dest))
                continue
            ready.append(OpSpec(wallet.xmint_op(cert),
                                size=XMINT_SIZES[0],
                                reply_size=XMINT_SIZES[1],
                                signed=signed, shard=dest))
        pending = still_waiting
        for spec in ready:
            yield spec
        coin = wallet.take_coin()
        if coin is None:
            yield OpSpec(wallet.mint_op(1), size=MINT_SIZES[0],
                         reply_size=MINT_SIZES[1], signed=signed,
                         shard=shard)
            continue
        location = box.location.get(coin[0], shard)
        acc += fraction
        if acc >= 1.0 and shards > 1:
            acc -= 1.0
            if location != shard:
                # The coin migrated earlier; bring it back home.
                dest = shard
            else:
                dest = shard_of_coin(coin[0], shards)
                if dest == shard:
                    dest = (dest + 1) % shards
            yield OpSpec(wallet.xlock_op(coin, dest, wallet.address),
                         size=XLOCK_SIZES[0], reply_size=XLOCK_SIZES[1],
                         signed=signed, shard=location)
        else:
            yield OpSpec(wallet.spend_op(coin, wallet.address),
                         size=SPEND_SIZES[0], reply_size=SPEND_SIZES[1],
                         signed=signed, shard=location)


def deploy_clients(
    sim,
    network,
    view_of,
    num_clients: int,
    num_stations: int = 4,
    workload: str = "spend",
    signed: bool = True,
    station_base: int = 9000,
    mint_count: int = 8,
    send_window: float = 0.001,
) -> tuple[list[ClientStation], list[Wallet]]:
    """Create the paper's client deployment: ``num_clients`` spread over
    ``num_stations`` machines, each driving a SMaRtCoin wallet.

    ``workload``: ``"mint"`` (endless mints), ``"spend"`` (mint a working
    set then spend-cycle — the phase the paper reports), or
    ``"mint_then_spend"`` (finite two-phase run).
    """
    stations = []
    wallets = []
    for station_index in range(num_stations):
        station = ClientStation(sim, network, station_base + station_index,
                                view_of, send_window=send_window)
        stations.append(station)
    for index in range(num_clients):
        station = stations[index % num_stations]
        wallet = Wallet(client_address(index))
        wallets.append(wallet)
        if workload == "mint":
            ops = endless_mint(wallet, signed=signed)
        elif workload == "spend":
            ops = endless_spend_cycle(wallet, signed=signed)
        else:
            ops = mint_then_spend(wallet, client_address((index + 1) % num_clients),
                                  mint_count, signed=signed)
        client = Client(station, ops,
                        on_result=_wallet_tracker(wallet))
        del client  # adopted by the station
    return stations, wallets


def deploy_sharded_clients(
    sim,
    network,
    multichain,
    num_clients: int,
    cross_shard_fraction: float = 0.0,
    workload: str = "spend",
    signed: bool = True,
    num_stations: int = 4,
    send_window: float = 0.001,
    fetch_cert=None,
) -> tuple[list[ClientStation], list[Wallet]]:
    """The paper's client deployment, partitioned over a sharded chain.

    Client ``index`` lives on shard :func:`home_shard(index, shards)
    <home_shard>`, is served by that shard's ``num_stations`` stations
    (station ids ``9000 + 100*shard + s``), and mints/spends on its home
    shard.  With ``cross_shard_fraction > 0`` (and more than one shard)
    that fraction of SPENDs becomes two-phase cross-shard transfers; the
    stations route each operation to the shard named on its
    :class:`~repro.clients.client.OpSpec`.
    """
    from repro.core.multichain import CertificateFetcher, station_id

    shards = multichain.shards
    cross = cross_shard_fraction > 0.0 and shards > 1
    if cross and fetch_cert is None:
        fetch_cert = CertificateFetcher(multichain)
    stations_by_shard: list[list[ClientStation]] = []
    for shard in range(shards):
        stations_by_shard.append([
            ClientStation(sim, network, station_id(shard, s),
                          multichain.view_of(shard),
                          send_window=send_window,
                          router=multichain.view_of if cross else None)
            for s in range(num_stations)])
    wallets: list[Wallet] = []
    for index in range(num_clients):
        shard = home_shard(index, shards)
        station = stations_by_shard[shard][(index // shards) % num_stations]
        wallet = Wallet(client_address(index))
        wallets.append(wallet)
        if workload == "mint":
            ops = endless_mint(wallet, signed=signed)
            tracker = _wallet_tracker(wallet)
        elif cross:
            box = _CrossBox()
            ops = endless_cross_spend(wallet, box, shard, shards,
                                      cross_shard_fraction, fetch_cert,
                                      signed=signed)
            tracker = _cross_tracker(wallet, box, shard)
        else:
            ops = endless_spend_cycle(wallet, signed=signed)
            tracker = _wallet_tracker(wallet)
        client = Client(station, ops, on_result=tracker)
        del client  # adopted by the station
    return [st for row in stations_by_shard for st in row], wallets


def _wallet_tracker(wallet: Wallet):
    def track(spec: OpSpec, result) -> None:
        wallet.note_result(spec.op, result)
    return track


def _cross_tracker(wallet: Wallet, box: _CrossBox, home: int):
    """Wallet tracker that also maintains coin locations and the pending-
    transfer mailbox (see :class:`_CrossBox`)."""

    def track(spec: OpSpec, result) -> None:
        wallet.note_result(spec.op, result)
        if not (isinstance(result, tuple) and result):
            return
        kind = spec.op[0]
        status = result[0]
        where = spec.shard if spec.shard is not None else home
        if status == "minted" and kind == "mint":
            for cid in result[1]:
                box.location[cid] = where
        elif status == "spent" and kind == "spend":
            for cid in spec.op[2]:
                box.location.pop(cid, None)
            for cid in result[1]:
                box.location[cid] = where
        elif status == "xlocked" and kind == "xlock":
            for cid in spec.op[2]:
                box.location.pop(cid, None)
            # (xfer_id, source shard, destination shard)
            box.locks.append((result[1], where, result[2]))
        elif status == "xminted" and kind == "xmint":
            box.location[result[1][0]] = where
    return track


def all_minter_addresses(num_clients: int) -> list[str]:
    """Genesis minter list covering every workload client."""
    return [client_address(i) for i in range(num_clients)]
