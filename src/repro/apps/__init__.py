"""Replicated applications: SMaRtCoin (UTXO), KV store, naive blockchain."""

from repro.apps.kvstore import KVStore
from repro.apps.naive import NaiveBlockchainDelivery
from repro.apps.smartcoin import (
    MINT_SIZES,
    SPEND_SIZES,
    SmartCoin,
    Wallet,
    coin_id,
)

__all__ = [
    "KVStore",
    "NaiveBlockchainDelivery",
    "MINT_SIZES",
    "SPEND_SIZES",
    "SmartCoin",
    "Wallet",
    "coin_id",
]
