"""SMaRtCoin: the paper's digital coin application (Section IV-A).

A deterministic wallet-like service managing coins under Bitcoin's UTXO
model, broadly inspired by FabCoin.  Two transaction types:

- ``MINT`` — create coins for the issuer; only addresses listed as
  authorized minters (defined in the genesis block) may mint;
- ``SPEND`` — consume input coins owned by the issuer and produce output
  coins for recipient addresses (the evaluation uses single-input,
  single-output SPENDs).

Transactions are signed by clients; signature *cost* is charged by the
replication layer (sequentially or in the verification pool — Table I), and
the application enforces the authorization rules (mint permission, coin
ownership, value conservation).  Invalid transactions execute to an error
result that is recorded in the block: auditable rejection, not silent drop.

Operation payloads (``request.op``):
- ``("mint", issuer, ((value, nonce), ...))``
- ``("spend", issuer, (coin_id, ...), ((recipient, amount), ...))``
- ``("balance", address)`` — read-only helper for examples/tests.

Cross-shard transfers (sharded deployments only — see
:mod:`repro.ledger.xshard` and docs/sharding.md):
- ``("xlock", issuer, (coin_id, ...), dest_shard, recipient)`` — burn the
  input coins on this (source) shard and execute to an ``("xlocked",
  xfer_id, dest_shard, value, recipient)`` result the destination shard
  can later verify via a transfer certificate;
- ``("xmint", issuer, certificate_record)`` — present a transfer
  certificate on the destination shard; after stateless verification the
  locked value is minted for the recipient, exactly once per transfer id.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.crypto import hashing
from repro.crypto.hashing import hash_obj
from repro.smr.requests import ClientRequest
from repro.smr.service import Application, ExecutionResult

__all__ = ["SmartCoin", "Wallet", "MINT_SIZES", "SPEND_SIZES",
           "XLOCK_SIZES", "XMINT_SIZES", "coin_id"]

#: (request bytes, reply bytes) — Section IV-B, Observation 1.
MINT_SIZES = (180, 270)
SPEND_SIZES = (310, 380)
#: Cross-shard lock: a SPEND-shaped request whose reply carries the lock
#: result the client will prove to the destination shard.
XLOCK_SIZES = (310, 380)
#: Cross-shard mint: the request carries a full transfer certificate
#: (header 144 B + quorum certificate + Merkle path), hence the size.
XMINT_SIZES = (720, 380)

#: In-memory bookkeeping bytes per UTXO, used to size snapshots.  The paper's
#: Figure 7 state of 8M UTXOs ≈ 1 GB gives ≈128 B per coin.
BYTES_PER_COIN = 128


#: Coin-id string memo: coin_id is a pure function of its arguments, so the
#: final string (not just the digest) can be shared across the n replicas
#: that each derive it.
_coin_ids: dict[tuple[int, int, int], str] = hashing.register_cache({})
#: Execution-result digest memo, keyed (client_id, req_id, result value).
_result_digests: dict[tuple, bytes] = hashing.register_cache({})
_COIN_MEMO_MAX = 16384
_COUNTERS = hashing.CACHE_COUNTERS


def coin_id(client_id: int, req_id: int, index: int) -> str:
    """Deterministic coin identifier: any replica derives the same ids.

    Memoized: all n replicas execute every transaction, so each id would
    otherwise be derived n times."""
    if not hashing.caches_enabled():
        return hash_obj(("coin", client_id, req_id, index)).hex()[:32]
    key = (client_id, req_id, index)
    cached = _coin_ids.get(key)
    if cached is not None:
        hashing.CACHE_COUNTERS["digest_cache_hits"] += 1
        return cached
    hashing.CACHE_COUNTERS["digest_cache_misses"] += 1
    value = hash_obj(("coin", client_id, req_id, index)).hex()[:32]
    if len(_coin_ids) >= _COIN_MEMO_MAX:
        for old in list(_coin_ids)[: _COIN_MEMO_MAX // 2]:
            del _coin_ids[old]
    _coin_ids[key] = value
    return value


class SmartCoin(Application):
    """The UTXO state machine."""

    def __init__(self, minters: Iterable[str] = (),
                 synthetic_state_bytes: int = 0):
        #: coin id -> (owner address, value)
        self.coins: dict[str, tuple[str, int]] = {}
        self.minters: set[str] = set(minters)
        #: Extra bytes charged to snapshots to emulate large states
        #: (Figure 7's 1 GB) without materializing millions of dict entries.
        self.synthetic_state_bytes = synthetic_state_bytes
        self.minted_total = 0
        self.spent_total = 0
        self.rejected = 0
        #: Cross-shard state (all zero/empty in single-shard deployments,
        #: which keeps snapshots and state digests byte-identical to the
        #: pre-sharding format — see :meth:`snapshot`).
        #: Transfer ids already minted on this shard (each exactly once).
        self.redeemed: set[str] = set()
        #: Value burned by xlock (left this shard) / minted by xmint
        #: (arrived on this shard) — the conservation ledger.
        self.xlock_value_out = 0
        self.xmint_value_in = 0
        #: Stateless certificate validator, installed by the sharded
        #: deployment (``None`` = this shard accepts no transfers).
        self.transfer_verifier: Any = None
        #: Observability hook ``(kind, **fields)`` for cert-redeemed /
        #: cert-rejected events, installed per node by the harness.
        self.event_hook: Any = None

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, request: ClientRequest) -> ExecutionResult:
        op = request.op
        kind = op[0]
        if kind == "mint":
            result = self._mint(request, op)
        elif kind == "spend":
            result = self._spend(request, op)
        elif kind == "xlock":
            result = self._xlock(request, op)
        elif kind == "xmint":
            result = self._xmint(request, op)
        elif kind == "balance":
            result = self.balance(op[1])
        else:
            result = ("error", f"unknown transaction type {kind!r}")
        # Inlined memo hit (the dominant case: replicas 2..n re-deriving a
        # digest replica 1 already computed); misses and the cache-disabled
        # path go through _result_digest.
        digest = _result_digests.get(
            (request.client_id, request.req_id, result))
        if digest is None:
            return result, self._result_digest(request, result)
        _COUNTERS["digest_cache_hits"] += 1
        return result, digest

    @staticmethod
    def _result_digest(request: ClientRequest, result: Any) -> bytes:
        # Memoized for the same reason as coin_id: deterministic execution
        # means every replica produces this exact digest.  The memo key is
        # the result *value* (cheaper to hash than to repr), so a divergent
        # replica still produces a different digest for the same request;
        # the digest bytes themselves still cover repr(result), unchanged.
        if not hashing.caches_enabled():
            return hash_obj(
                ("sc", request.client_id, request.req_id, repr(result)))
        key = (request.client_id, request.req_id, result)
        cached = _result_digests.get(key)
        if cached is not None:
            hashing.CACHE_COUNTERS["digest_cache_hits"] += 1
            return cached
        hashing.CACHE_COUNTERS["digest_cache_misses"] += 1
        value = hash_obj(
            ("sc", request.client_id, request.req_id, repr(result)))
        if len(_result_digests) >= _COIN_MEMO_MAX:
            for old in list(_result_digests)[: _COIN_MEMO_MAX // 2]:
                del _result_digests[old]
        _result_digests[key] = value
        return value

    def conflict_keys(self, request: ClientRequest):
        """UTXO footprints for the parallel-execution scheduler.

        Coin ids are derivable *before* execution (``coin_id`` is a pure
        function of client, request and output index), so mints and spends
        declare exact write sets; two operations touching disjoint coins
        commute.  Commutative aggregates (``minted_total``, rejection
        counters) are deliberately excluded — execution itself still runs
        in sequence order, the sets only shape the timing model.  Ops whose
        footprint needs execution-time state (balance scans the whole coin
        map, xmint depends on certificate verification) return None and are
        scheduled as barriers.
        """
        op = request.op
        kind = op[0]
        client_id, req_id = request.client_id, request.req_id
        if kind == "spend":
            writes = tuple(op[2]) + tuple(
                coin_id(client_id, req_id, i) for i in range(len(op[3])))
            return ((), writes)
        if kind == "mint":
            return ((), tuple(coin_id(client_id, req_id, i)
                              for i in range(len(op[2]))))
        if kind == "xlock":
            return ((), tuple(op[2]))
        return None

    def _mint(self, request: ClientRequest, op: tuple) -> Any:
        _, issuer, outputs = op
        if issuer not in self.minters:
            self.rejected += 1
            return ("error", "issuer is not authorized to mint")
        coins = self.coins
        client_id, req_id = request.client_id, request.req_id
        if len(outputs) == 1:
            # The evaluation mints one coin per MINT; skip the loop and hit
            # the coin-id memo inline.
            value = outputs[0][0]
            if value <= 0:
                self.rejected += 1
                return ("error", "mint value must be positive")
            cid = _coin_ids.get((client_id, req_id, 0))
            if cid is None:
                cid = coin_id(client_id, req_id, 0)
            else:
                _COUNTERS["digest_cache_hits"] += 1
            coins[cid] = (issuer, value)
            self.minted_total += value
            return ("minted", (cid,))
        created = []
        for index, (value, _nonce) in enumerate(outputs):
            if value <= 0:
                self.rejected += 1
                return ("error", "mint value must be positive")
            cid = coin_id(client_id, req_id, index)
            coins[cid] = (issuer, value)
            created.append(cid)
            self.minted_total += value
        return ("minted", tuple(created))

    def _spend(self, request: ClientRequest, op: tuple) -> Any:
        _, issuer, inputs, outputs = op
        coins = self.coins
        if len(inputs) == 1 and len(outputs) == 1:
            # The evaluation's SPENDs are single-input/single-output
            # (Section IV-A); this straight-line path keeps the exact error
            # semantics and ordering of the general loop below.
            cid = inputs[0]
            coin = coins.get(cid)
            if coin is None:
                self.rejected += 1
                return ("error", f"coin {cid} does not exist (double spend?)")
            owner, value = coin
            if owner != issuer:
                self.rejected += 1
                return ("error", f"coin {cid} is not owned by the issuer")
            recipient, amount = outputs[0]
            if amount != value:
                self.rejected += 1
                return ("error", "inputs and outputs do not balance")
            if amount <= 0:
                self.rejected += 1
                return ("error", "output amounts must be positive")
            del coins[cid]
            client_id, req_id = request.client_id, request.req_id
            new_cid = _coin_ids.get((client_id, req_id, 0))
            if new_cid is None:
                new_cid = coin_id(client_id, req_id, 0)
            else:
                _COUNTERS["digest_cache_hits"] += 1
            coins[new_cid] = (recipient, amount)
            self.spent_total += value
            return ("spent", (new_cid,))
        total_in = 0
        for cid in inputs:
            coin = coins.get(cid)
            if coin is None:
                self.rejected += 1
                return ("error", f"coin {cid} does not exist (double spend?)")
            owner, value = coin
            if owner != issuer:
                self.rejected += 1
                return ("error", f"coin {cid} is not owned by the issuer")
            total_in += value
        if len(outputs) == 1:
            # The evaluation's SPENDs are single-input/single-output; skip
            # the generator machinery for that shape.
            total_out = outputs[0][1]
            bad_amount = total_out <= 0
        else:
            total_out = sum(amount for _, amount in outputs)
            bad_amount = any(amount <= 0 for _, amount in outputs)
        if total_out != total_in:
            self.rejected += 1
            return ("error", "inputs and outputs do not balance")
        if bad_amount:
            self.rejected += 1
            return ("error", "output amounts must be positive")
        for cid in inputs:
            del coins[cid]
        client_id, req_id = request.client_id, request.req_id
        created = []
        for index, (recipient, amount) in enumerate(outputs):
            cid = coin_id(client_id, req_id, index)
            coins[cid] = (recipient, amount)
            created.append(cid)
        self.spent_total += total_in
        return ("spent", tuple(created))

    # ------------------------------------------------------------------
    # Cross-shard transfers (two-phase: lock-and-burn, then mint)
    # ------------------------------------------------------------------
    def _xlock(self, request: ClientRequest, op: tuple) -> Any:
        from repro.ledger.xshard import transfer_id

        _, issuer, inputs, dest_shard, recipient = op
        coins = self.coins
        total_in = 0
        for cid in inputs:
            coin = coins.get(cid)
            if coin is None:
                self.rejected += 1
                return ("error", f"coin {cid} does not exist (double spend?)")
            owner, value = coin
            if owner != issuer:
                self.rejected += 1
                return ("error", f"coin {cid} is not owned by the issuer")
            total_in += value
        if total_in <= 0:
            self.rejected += 1
            return ("error", "nothing to lock")
        if not isinstance(dest_shard, int) or dest_shard < 0:
            self.rejected += 1
            return ("error", "invalid destination shard")
        for cid in inputs:
            del coins[cid]
        self.xlock_value_out += total_in
        xfer_id = transfer_id(request.client_id, request.req_id)
        # The repr of this result is what the destination shard's verifier
        # parses out of the transfer certificate; every field it needs to
        # mint — the transfer id, its own shard number, the value and the
        # recipient — is committed under the block's result Merkle root.
        return ("xlocked", xfer_id, dest_shard, total_in, recipient)

    def _xmint(self, request: ClientRequest, op: tuple) -> Any:
        _, _issuer, cert_record = op
        verifier = self.transfer_verifier
        if verifier is None:
            self.rejected += 1
            return self._reject_cert("this shard accepts no transfers",
                                     xfer="?")
        verdict = verifier.verify(cert_record)
        if verdict[0] == "error":
            self.rejected += 1
            return self._reject_cert(verdict[1], xfer="?")
        _tag, xfer_id, _dest_shard, value, recipient = verdict
        if xfer_id in self.redeemed:
            self.rejected += 1
            return self._reject_cert("transfer certificate already redeemed",
                                     xfer=xfer_id, replay=True)
        cid = coin_id(request.client_id, request.req_id, 0)
        self.coins[cid] = (recipient, value)
        self.redeemed.add(xfer_id)
        self.xmint_value_in += value
        if self.event_hook is not None:
            self.event_hook("cert-redeemed", xfer=xfer_id, value=value)
        return ("xminted", (cid,), xfer_id, value)

    def _reject_cert(self, reason: str, xfer: str,
                     replay: bool = False) -> tuple:
        if self.event_hook is not None:
            self.event_hook("cert-rejected", xfer=xfer, reason=reason,
                            replay=replay)
        return ("error", reason)

    # ------------------------------------------------------------------
    # Queries (used by examples and tests, not part of consensus)
    # ------------------------------------------------------------------
    def balance(self, address: str) -> int:
        return sum(value for owner, value in self.coins.values()
                   if owner == address)

    def coins_of(self, address: str) -> list[str]:
        return [cid for cid, (owner, _) in self.coins.items()
                if owner == address]

    def total_value(self) -> int:
        return sum(value for _, value in self.coins.values())

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def _has_cross_shard_state(self) -> bool:
        return bool(self.redeemed or self.xlock_value_out
                    or self.xmint_value_in)

    def snapshot(self) -> tuple[Any, int]:
        nbytes = max(64, len(self.coins) * BYTES_PER_COIN
                     + self.synthetic_state_bytes)
        state = (dict(self.coins), frozenset(self.minters),
                 self.minted_total, self.spent_total)
        # Cross-shard bookkeeping extends the snapshot only once it is
        # non-empty: single-shard runs keep the pre-sharding 4-tuple format
        # byte-for-byte (state-transfer wire bytes, digests, traces).
        if self._has_cross_shard_state():
            state = state + (frozenset(self.redeemed),
                             self.xlock_value_out, self.xmint_value_in)
            nbytes += 40 * len(self.redeemed)
        return state, nbytes

    def install_snapshot(self, snapshot: Any) -> None:
        coins, minters, minted, spent = snapshot[:4]
        self.coins = dict(coins)
        self.minters = set(minters)
        self.minted_total = minted
        self.spent_total = spent
        if len(snapshot) > 4:
            redeemed, lock_out, mint_in = snapshot[4:]
            self.redeemed = set(redeemed)
            self.xlock_value_out = lock_out
            self.xmint_value_in = mint_in
        else:
            self.redeemed = set()
            self.xlock_value_out = 0
            self.xmint_value_in = 0

    def state_digest(self) -> bytes:
        base = (sorted(self.coins.items()), sorted(self.minters),
                self.minted_total, self.spent_total)
        if self._has_cross_shard_state():
            base = base + (sorted(self.redeemed), self.xlock_value_out,
                           self.xmint_value_in)
        return hash_obj(base)


@dataclass
class Wallet:
    """Client-side helper building properly-sized SMaRtCoin operations.

    Tracks the coins a client owns (from transaction results) so workloads
    can chain MINT → SPEND like the paper's two-phase methodology.
    """

    address: str
    owned: list[tuple[str, int]] = field(default_factory=list)  # (coin id, value)
    _nonce: itertools.count = field(default_factory=lambda: itertools.count(1))

    def mint_op(self, value: int, count: int = 1) -> tuple:
        outputs = tuple((value, next(self._nonce)) for _ in range(count))
        return ("mint", self.address, outputs)

    def spend_op(self, coin: tuple[str, int], recipient: str) -> tuple:
        cid, value = coin
        return ("spend", self.address, (cid,), ((recipient, value),))

    def xlock_op(self, coin: tuple[str, int], dest_shard: int,
                 recipient: str) -> tuple:
        cid, _value = coin
        return ("xlock", self.address, (cid,), dest_shard, recipient)

    def xmint_op(self, cert_record: tuple) -> tuple:
        return ("xmint", self.address, cert_record)

    def note_result(self, op: tuple, result: Any) -> None:
        """Update owned coins from an executed operation's result."""
        if not isinstance(result, tuple) or not result:
            return
        status = result[0]
        if status == "minted" and op[0] == "mint":
            for cid, (value, _nonce) in zip(result[1], op[2]):
                self.owned.append((cid, value))
        elif status == "spent" and op[0] == "spend":
            spent_ids = set(op[2])
            self.owned = [c for c in self.owned if c[0] not in spent_ids]
        elif status == "xlocked" and op[0] == "xlock":
            locked_ids = set(op[2])
            self.owned = [c for c in self.owned if c[0] not in locked_ids]
        elif status == "xminted" and op[0] == "xmint":
            # ("xminted", (coin_id,), xfer_id, value)
            self.owned.append((result[1][0], result[3]))

    def take_coin(self) -> tuple[str, int] | None:
        return self.owned.pop() if self.owned else None
