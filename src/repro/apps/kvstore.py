"""A deterministic ordered key-value store.

The second application of the reproduction (besides SMaRtCoin): it shows the
replication and blockchain layers are application-agnostic and gives protocol
tests a trivially-checkable state machine.

Operations (``request.op``):
- ``("put", key, value)`` → previous value (or ``None``)
- ``("get", key)``        → current value (or ``None``)
- ``("del", key)``        → deleted value (or ``None``)
- ``("cas", key, expect, value)`` → ``True`` on swap, ``False`` otherwise
"""

from __future__ import annotations

from typing import Any

from repro.crypto.hashing import hash_obj
from repro.smr.requests import ClientRequest
from repro.smr.service import Application, ExecutionResult

__all__ = ["KVStore"]


class KVStore(Application):
    """Deterministic replicated dictionary."""

    def __init__(self, bytes_per_entry: int = 64):
        self.data: dict[Any, Any] = {}
        self.bytes_per_entry = bytes_per_entry
        self.ops_executed = 0

    def execute(self, request: ClientRequest) -> ExecutionResult:
        op = request.op
        action = op[0]
        if action == "put":
            _, key, value = op
            previous = self.data.get(key)
            self.data[key] = value
            result: Any = previous
        elif action == "get":
            result = self.data.get(op[1])
        elif action == "del":
            result = self.data.pop(op[1], None)
        elif action == "cas":
            _, key, expect, value = op
            if self.data.get(key) == expect:
                self.data[key] = value
                result = True
            else:
                result = False
        else:
            result = ("error", f"unknown op {action!r}")
        self.ops_executed += 1
        digest = hash_obj(("kv", request.client_id, request.req_id, repr(result)))
        return result, digest

    def snapshot(self) -> tuple[Any, int]:
        return dict(self.data), max(64, len(self.data) * self.bytes_per_entry)

    def install_snapshot(self, snapshot: Any) -> None:
        self.data = dict(snapshot)

    def state_digest(self) -> bytes:
        return hash_obj(sorted((repr(k), repr(v)) for k, v in self.data.items()))
