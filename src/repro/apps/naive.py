"""The naive application-level blockchain (Section IV: SMaRtCoin on BFT-SMART).

This is the design whose limitations the paper demonstrates: the replicated
*application* builds and persists the blockchain inside the state machine.
Per delivered batch it (1) executes the transactions, (2) serializes a block
containing the batch and the results — paying the per-transaction block
building cost on the single execution thread — and (3) writes the block to
stable storage before replying (in the synchronous setup).

It provides only *external durability* (Observation 2): no certificates, so
a single replica's chain is not self-verifiable evidence, and a suffix of
the history can be undone after a full crash.
"""

from __future__ import annotations

from typing import Any

from repro.config import StorageMode
from repro.crypto.hashing import EMPTY_DIGEST, hash_obj_cached
from repro.smr.requests import Decision
from repro.smr.service import Application, SequentialDelivery
from repro.storage.stable import AsyncFlusher

__all__ = ["NaiveBlockchainDelivery"]


class NaiveBlockchainDelivery(SequentialDelivery):
    """Delivery layer reproducing the Table I SMaRtCoin setups."""

    LOG = "naive-chain"

    def __init__(self, app: Application, storage: StorageMode = StorageMode.SYNC):
        super().__init__()
        self.app = app
        self.storage = storage
        self.chain: list[dict] = []         # in-memory copy of what was built
        self.prev_hash = EMPTY_DIGEST
        self.executed_cid = -1
        self._flusher: AsyncFlusher | None = None
        self.blocks_built = 0
        # Verified-recovery outcome (rolled into run metrics, docs/faults.md).
        self.recovery_verified_entries = 0
        self.recovery_truncated_entries = 0
        self.recovery_fallbacks = 0
        #: Report of the most recent recover_local (None before the first).
        self.last_recovery: dict | None = None

    def attach(self, replica) -> None:
        super().attach(replica)
        if self.storage is StorageMode.ASYNC:
            self._flusher = AsyncFlusher(
                replica.store, replica.config.async_flush_interval)
            self._flusher.start()

    # ------------------------------------------------------------------
    # Sequential processing (one batch at a time, like the real service)
    # ------------------------------------------------------------------
    def process(self, decision: Decision, done) -> None:
        replica = self.replica
        costs = replica.costs
        work = replica.execution_cost(decision.batch)
        work += costs.naive_ledger_build_per_tx * len(decision.batch)
        block_bytes = decision.payload_bytes() + 160
        work += costs.crypto.hash_time_per_kb * (block_bytes / 1024)
        replica.charge_sm(work, self._apply, decision, done)

    def _apply(self, decision: Decision, done) -> None:
        replica = self.replica
        results = self.app.execute_batch(decision.batch)
        block = self._build_block(decision, results)
        self.chain.append(block)
        self.blocks_built += 1
        self.executed_cid = decision.cid
        obs = replica.sim.obs
        if obs.enabled:
            obs.metrics.counter("chain.blocks_built", node=replica.id).inc()
        if obs.trace_pipeline:
            obs.trace_cid(replica.id, decision.cid, "execute", replica.sim.now)
        if self.storage is not StorageMode.MEMORY:
            replica.store.append(self.LOG, block, block["nbytes"])
        if self.storage is StorageMode.SYNC:
            # The service blocks until the block is on stable media, then
            # replies (Section IV-A: "once this block is synchronously
            # written ... each replica replies to the clients").
            replica.store.sync(self._reply, decision, results, done)
        else:
            self._reply(decision, results, done)

    def _reply(self, decision: Decision, results: dict, done) -> None:
        replica = self.replica
        obs = replica.sim.obs
        if obs.trace_pipeline and self.storage is StorageMode.SYNC:
            obs.trace_cid(replica.id, decision.cid, "body_write",
                          replica.sim.now)
        replica.send_replies(results, decision.batch,
                             block_number=len(self.chain))
        replica.note_executed(decision)
        done()

    def _build_block(self, decision: Decision, results: dict) -> dict:
        payload = [(req.client_id, req.req_id, req.op_repr)
                   for req in decision.batch]
        result_list = [(key[0], key[1], repr(value[0]))
                       for key, value in results.items()]
        # Tuples encode identically to lists, so the digest is unchanged;
        # the tuple form is hashable, letting the content-addressed memo
        # dedupe the n identical per-replica block builds.
        header_hash = hash_obj_cached(
            ("naive", len(self.chain) + 1, self.prev_hash,
             tuple(payload), tuple(result_list)))
        block = {
            "number": len(self.chain) + 1,
            "prev": self.prev_hash,
            "consensus_id": decision.cid,
            "transactions": payload,
            "results": result_list,
            "hash": header_hash,
            "nbytes": decision.payload_bytes()
                      + sum(len(r[2]) + 48 for r in result_list) + 160,
        }
        self.prev_hash = header_hash
        return block

    # ------------------------------------------------------------------
    # State transfer / recovery
    # ------------------------------------------------------------------
    def capture_state(self, up_to_cid: int | None = None) -> tuple[Any, int]:
        snapshot, nbytes = self.app.snapshot()
        return (self.executed_cid, snapshot, self.prev_hash,
                len(self.chain)), nbytes

    def install_state(self, package: Any) -> None:
        cid, snapshot, prev_hash, height = package
        self.app.install_snapshot(snapshot)
        self.executed_cid = cid
        self.prev_hash = prev_hash
        self.chain = []  # history before the snapshot is not replayed here

    def recover_local(self) -> int:
        if self._flusher is not None:
            self._flusher.start()
        replica = self.replica
        store = replica.store
        if not replica.config.verify_recovery:
            self.chain = list(store.read_log(self.LOG))
            if not self.chain:
                return -1
            self.prev_hash = self.chain[-1]["hash"]
            # Rebuilding application state would require re-execution; the
            # recovering replica relies on state transfer for that, so only
            # the chain height is recovered locally.
            return self.chain[-1]["consensus_id"]
        rt = replica.runtime
        observing = rt.observing
        entries = store.read_entries(self.LOG)
        valid = 0
        prev = EMPTY_DIGEST
        bad_reason = ""
        for entry in entries:
            if not store.verify_entry(entry):
                bad_reason = "checksum"
                store.bitrot_detected += 1
                break
            block = entry.payload
            if block.get("prev") != prev or block.get("number") != valid + 1:
                # A block whose back-pointer or height does not extend the
                # prefix (torn write, or appends after a state transfer
                # rebased the chain): nothing past it is trustworthy here.
                bad_reason = "chain-linkage"
                break
            prev = block["hash"]
            valid += 1
        self.recovery_verified_entries += valid
        truncated = len(entries) - valid
        if bad_reason:
            store.truncate_log(self.LOG, valid)
            self.recovery_truncated_entries += truncated
            self.recovery_fallbacks += 1
            if observing:
                rt.notify("log-corruption-detected", log=self.LOG,
                          index=valid, reason=bad_reason, dropped=truncated)
                rt.notify("recovery-fallback", from_cid=self.executed_cid,
                          dropped=truncated)
        if observing:
            rt.notify("recovery-verified", entries=valid,
                      truncated=truncated, cid=self.executed_cid)
        self.chain = [entry.payload for entry in entries[:valid]]
        # No replay evidence: the naive block payload drops the requests'
        # ``special`` flag, so the decide-time batch hash cannot be
        # recomputed from it (and the application state is not rebuilt
        # locally anyway — state transfer supplies it).
        self.last_recovery = {
            "replayed": [], "verified": valid, "truncated": truncated,
            "snapshot_rejected": False, "fallback": bool(bad_reason),
        }
        if not self.chain:
            return -1
        self.prev_hash = self.chain[-1]["hash"]
        return self.chain[-1]["consensus_id"]

    def on_crash(self) -> None:
        super().on_crash()
        self.chain.clear()
        self.prev_hash = EMPTY_DIGEST
        self.executed_cid = -1
        if self._flusher is not None:
            self._flusher.stop()
