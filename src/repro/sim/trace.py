"""Measurement instruments: counters, interval meters and trace logs.

The paper's methodology measures throughput at the replicas in fixed
intervals, discards the 20% of intervals with the greatest deviation and
averages the rest (Section VI-A).  :class:`ThroughputMeter` +
:func:`trimmed_mean` implement exactly that, so benchmark code reads like the
paper's method section.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

from repro.sim.engine import Simulator

__all__ = [
    "ThroughputMeter",
    "LatencyRecorder",
    "TraceLog",
    "trimmed_mean",
    "merge_stamps",
    "op_window_rates",
    "bucket_timeline",
]


class ThroughputMeter:
    """Counts completions and reports per-interval rates.

    ``record(k)`` counts ``k`` completions at the current simulated time;
    ``interval_rates(width)`` buckets them into fixed windows.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._stamps: list[tuple[float, int]] = []
        self.total = 0

    def record(self, count: int = 1) -> None:
        self.total += count
        self._stamps.append((self.sim.now, count))

    def stamps(self) -> list[tuple[float, int]]:
        """The raw ``(time, count)`` completion stamps, in recording order."""
        return list(self._stamps)

    def interval_rates(
        self, width: float, start: float = 0.0, end: float | None = None
    ) -> list[float]:
        """Throughput (per second) in consecutive windows of ``width`` seconds."""
        horizon = self.sim.now if end is None else end
        if horizon <= start or width <= 0:
            return []
        buckets = [0] * max(1, math.ceil((horizon - start) / width))
        for when, count in self._stamps:
            if when < start or when >= horizon:
                continue
            buckets[int((when - start) / width)] += count
        return [count / width for count in buckets]

    def rate(self, start: float = 0.0, end: float | None = None) -> float:
        """Average completions per second over ``[start, end)``."""
        horizon = self.sim.now if end is None else end
        if horizon <= start:
            return 0.0
        total = sum(c for t, c in self._stamps if start <= t < horizon)
        return total / (horizon - start)

    def op_interval_rates(self, op_window: int, start: float = 0.0,
                          end: float | None = None) -> list[float]:
        """Throughput per *operation-count* window — the paper's method:
        "the throughput was measured at the replicas at regular intervals
        (at each 10k operations)".  Robust to block-boundary quantization."""
        horizon = self.sim.now if end is None else end
        rates: list[float] = []
        window_start: float | None = None
        accumulated = 0
        for when, count in self._stamps:
            if when < start or when >= horizon:
                continue
            if window_start is None:
                window_start = when
                continue
            accumulated += count
            if accumulated >= op_window:
                elapsed = when - window_start
                if elapsed > 0:
                    rates.append(accumulated / elapsed)
                window_start = when
                accumulated = 0
        return rates

    def timeline(self, width: float) -> list[tuple[float, float]]:
        """(window midpoint, rate) pairs — the series plotted in Figure 7."""
        rates = self.interval_rates(width)
        return [(start * width + width / 2, r) for start, r in enumerate(rates)]


class LatencyRecorder:
    """Records request latencies and summarizes them."""

    def __init__(self) -> None:
        self.samples: list[float] = []

    def record(self, latency: float, count: int = 1) -> None:
        if count == 1:
            self.samples.append(latency)
        else:
            self.samples.extend([latency] * count)

    @property
    def count(self) -> int:
        return len(self.samples)

    def mean(self) -> float:
        if not self.samples:
            return 0.0
        return sum(self.samples) / len(self.samples)

    def stdev(self) -> float:
        n = len(self.samples)
        if n < 2:
            return 0.0
        mu = self.mean()
        return math.sqrt(sum((s - mu) ** 2 for s in self.samples) / (n - 1))

    def percentile(self, p: float) -> float:
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        index = min(len(ordered) - 1, int(p / 100.0 * len(ordered)))
        return ordered[index]


@dataclass
class TraceLog:
    """Optional structured event trace, used by tests to assert on protocol
    behaviour (message counts, phase transitions) without poking internals."""

    enabled: bool = True
    records: list[tuple[float, str, dict[str, Any]]] = field(default_factory=list)

    def emit(self, now: float, kind: str, **details: Any) -> None:
        if self.enabled:
            self.records.append((now, kind, details))

    def of_kind(self, kind: str) -> list[tuple[float, dict[str, Any]]]:
        return [(t, d) for t, k, d in self.records if k == kind]

    def count(self, kind: str) -> int:
        return sum(1 for _, k, _ in self.records if k == kind)


def merge_stamps(meters: list[ThroughputMeter], start: float = 0.0,
                 end: float | None = None) -> list[tuple[float, int]]:
    """Merge the stamps of several meters into one time-ordered series,
    optionally restricted to ``[start, end)``."""
    merged = sorted((when, count)
                    for meter in meters for when, count in meter.stamps())
    if start > 0.0 or end is not None:
        merged = [(when, count) for when, count in merged
                  if when >= start and (end is None or when < end)]
    return merged


def op_window_rates(stamps: list[tuple[float, int]],
                    op_window: int) -> list[float]:
    """Throughput per *operation-count* window over a merged stamp series —
    the paper's measurement method (Section VI-A), shared by the harness
    and the timeline benchmarks."""
    rates: list[float] = []
    window_start: float | None = None
    accumulated = 0
    for when, count in stamps:
        if window_start is None:
            window_start = when
            continue
        accumulated += count
        if accumulated >= op_window:
            elapsed = when - window_start
            if elapsed > 0:
                rates.append(accumulated / elapsed)
            window_start = when
            accumulated = 0
    return rates


def bucket_timeline(stamps: list[tuple[float, int]], horizon: float,
                    width: float) -> list[tuple[float, float]]:
    """(window midpoint, tx/s) pairs over fixed time buckets — the series
    plotted in Figure 7."""
    if horizon <= 0 or width <= 0:
        return []
    buckets = [0.0] * max(1, int(horizon / width))
    for when, count in stamps:
        index = min(len(buckets) - 1, int(when / width))
        buckets[index] += count / width
    return [(round((i + 0.5) * width, 6), rate)
            for i, rate in enumerate(buckets)]


def trimmed_mean(values: list[float], discard_fraction: float = 0.2) -> float:
    """Average after discarding the ``discard_fraction`` of values farthest
    from the median — the paper's '20% of the values with greater variance
    were discarded' rule."""
    if not values:
        return 0.0
    if len(values) <= 2:
        return sum(values) / len(values)
    ordered = sorted(values)
    median = ordered[len(ordered) // 2]
    keep = sorted(values, key=lambda v: abs(v - median))
    cut = max(1, int(round(len(values) * (1.0 - discard_fraction))))
    kept = keep[:cut]
    return sum(kept) / len(kept)
