"""Queueing resources: the bottleneck model of the simulation.

A :class:`Resource` is a multi-server FIFO station (an M/G/c-style server in
simulation form).  Every physical bottleneck in the reproduced testbed is one
of these:

- the *state-machine thread* of a replica (1 server) — sequential signature
  verification, transaction execution, block assembly all contend here;
- the *verification pool* (16 servers on the paper's Xeon E5520 machines) —
  parallel signature verification;
- the *disk channel* (1 server) — synchronous and asynchronous ledger writes;
- the *NIC egress* (1 server) — bandwidth serialization of outgoing messages.

Jobs are submitted with a service time; when a server frees up, the job is
served and its completion callback fires.  Aggregate jobs (``submit_bulk``)
model a batch of identical small tasks spread over all servers of the pool
with one heap event instead of hundreds — essential for simulating tens of
thousands of transactions per second in pure Python while preserving the
station's throughput behaviour.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable

from repro.errors import SimulationError
from repro.sim.engine import Simulator

__all__ = ["Resource"]


class _Job:
    __slots__ = ("service", "fn", "args")

    def __init__(self, service: float, fn: Callable[..., Any] | None, args: tuple):
        self.service = service
        self.fn = fn
        self.args = args


class Resource:
    """A FIFO service station with ``servers`` parallel servers.

    Parameters
    ----------
    sim:
        Owning simulator.
    servers:
        Number of parallel servers (e.g. 16 for the verification thread pool).
    name:
        Label used in statistics and repr.
    """

    def __init__(self, sim: Simulator, servers: int = 1, name: str = "resource"):
        if servers < 1:
            raise SimulationError("a resource needs at least one server")
        self.sim = sim
        self.servers = servers
        self.name = name
        self._queue: deque[_Job] = deque()
        self._busy = 0
        # Statistics.
        self.jobs_served = 0
        self.busy_time = 0.0          # total server-seconds of work served
        self._last_change = sim.now
        # Observability: every resource announces itself (cheap, once); the
        # queue-depth integral is maintained only when the run is observed.
        obs = sim.obs
        obs.resources.append(self)
        self._observed = obs.enabled
        self._queue_area = 0.0        # ∫ queue length dt
        self._queue_peak = 0
        self._queue_last_t = sim.now

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        service_time: float,
        fn: Callable[..., Any] | None = None,
        *args: Any,
    ) -> None:
        """Queue a job needing ``service_time`` seconds on one server.

        ``fn(*args)`` runs when the job completes (not when it starts).
        """
        if service_time < 0:
            raise SimulationError("service time must be non-negative")
        if self._observed:
            self._integrate_queue()
        if self._busy < self.servers and not self._queue:
            # Idle-server fast path: start immediately, skip the queue.
            self._busy += 1
            self.busy_time += service_time
            self.sim.schedule(service_time, self._complete,
                              _Job(service_time, fn, args))
            return
        self._queue.append(_Job(service_time, fn, args))
        self._dispatch()

    def submit_bulk(
        self,
        unit_time: float,
        count: int,
        fn: Callable[..., Any] | None = None,
        *args: Any,
    ) -> None:
        """Queue ``count`` identical tasks of ``unit_time`` seconds each as a
        single aggregate job.

        The aggregate occupies one server slot for ``unit_time * count /
        servers`` seconds, which matches the makespan of spreading the tasks
        evenly over the pool.  Use for per-transaction work (signature
        verification of a 512-transaction batch, per-transaction execution)
        where per-task events would dominate simulation cost.
        """
        if count < 0:
            raise SimulationError("count must be non-negative")
        if count == 0:
            if fn is not None:
                self.sim.call_soon(fn, *args)
            return
        makespan = unit_time * count / self.servers
        self.submit(makespan, fn, *args)

    # ------------------------------------------------------------------
    # Internal dispatch
    # ------------------------------------------------------------------
    def _dispatch(self) -> None:
        if self._observed and self._queue and self._busy < self.servers:
            self._integrate_queue()
        while self._queue and self._busy < self.servers:
            job = self._queue.popleft()
            self._busy += 1
            self.busy_time += job.service
            self.sim.schedule(job.service, self._complete, job)
        if self._observed and len(self._queue) > self._queue_peak:
            self._queue_peak = len(self._queue)

    def _complete(self, job: _Job) -> None:
        self._busy -= 1
        self.jobs_served += 1
        if job.fn is not None:
            job.fn(*job.args)
        self._dispatch()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def busy(self) -> int:
        """Servers currently serving a job."""
        return self._busy

    @property
    def queued(self) -> int:
        """Jobs waiting for a free server."""
        return len(self._queue)

    def utilization(self, elapsed: float | None = None) -> float:
        """Fraction of server capacity used since construction."""
        horizon = self.sim.now if elapsed is None else elapsed
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_time / (horizon * self.servers))

    # ------------------------------------------------------------------
    # Observability (queue-depth accounting is active only when observed)
    # ------------------------------------------------------------------
    def _integrate_queue(self) -> None:
        now = self.sim.now
        elapsed = now - self._queue_last_t
        if elapsed > 0:
            self._queue_area += len(self._queue) * elapsed
            self._queue_last_t = now

    def mean_queue_depth(self, horizon: float | None = None) -> float:
        """Time-averaged number of queued (not yet serving) jobs."""
        end = self.sim.now if horizon is None else horizon
        if end <= 0:
            return 0.0
        area = self._queue_area
        if end > self._queue_last_t:
            area += len(self._queue) * (end - self._queue_last_t)
        return area / end

    @property
    def queue_peak(self) -> int:
        """Deepest queue observed (0 unless the run was observed)."""
        return self._queue_peak

    def stats(self, horizon: float | None = None) -> dict:
        """JSON-ready utilization entry for the run report."""
        return {
            "name": self.name,
            "servers": self.servers,
            "busy_fraction": self.utilization(horizon),
            "jobs_served": self.jobs_served,
            "queue_peak": self._queue_peak,
            "mean_queue_depth": self.mean_queue_depth(horizon),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Resource({self.name}, servers={self.servers}, busy={self._busy}, "
            f"queued={len(self._queue)})"
        )
