"""Discrete-event simulation substrate (engine, resources, measurement)."""

from repro.sim.engine import Event, Simulator
from repro.sim.resource import Resource
from repro.sim.trace import LatencyRecorder, ThroughputMeter, TraceLog, trimmed_mean

__all__ = [
    "Event",
    "Simulator",
    "Resource",
    "LatencyRecorder",
    "ThroughputMeter",
    "TraceLog",
    "trimmed_mean",
]
