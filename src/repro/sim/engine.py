"""Deterministic discrete-event simulation engine.

The engine is a classic event-scheduling simulator: a priority queue of
``(time, sequence, callback)`` entries and a virtual clock.  Everything in
this library — network delivery, disk writes, CPU service, protocol timers —
is expressed as events on one :class:`Simulator`.

Determinism
-----------
Two runs with the same seed and the same schedule of calls produce identical
histories.  Ties in event time are broken by insertion order (a monotonically
increasing sequence number), and all randomness flows through ``sim.rng``, a
``random.Random`` seeded at construction.

Heap hygiene (see docs/performance.md)
--------------------------------------
Protocol timeouts (leader-change and client-resend timers) cancel far more
events than they fire, so the heap accumulates tombstones.  The simulator
keeps a live-event counter (``pending`` is O(1)), lazily pops tombstones at
the heap top (``peek_time`` is amortized O(log n)), and compacts the heap in
place when cancelled entries outnumber live ones.  Heap entries are plain
``(time, seq, event)`` tuples so sift comparisons stay in C.
"""

from __future__ import annotations

import heapq
import random
from typing import Any, Callable, Iterable

from repro.errors import SimulationError
from repro.obs import Observability

__all__ = ["Event", "Simulator"]

#: Compaction hysteresis: never compact tiny heaps, where the rebuild
#: overhead dwarfs any scan savings.
_COMPACT_MIN_TOMBSTONES = 64


class Event:
    """Handle to a scheduled callback.

    Returned by :meth:`Simulator.schedule`; call :meth:`cancel` to prevent the
    callback from firing (used pervasively for protocol timeouts).
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "fired", "_sim")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple,
                 sim: "Simulator | None" = None):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.fired = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent this event from firing.  Safe to call more than once, and
        a no-op after the event has fired (so late cancels can never corrupt
        the simulator's live-event accounting)."""
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        # Drop references so cancelled timers do not pin protocol state alive
        # while they sit in the heap waiting to be popped.
        self.fn = _noop
        self.args = ()
        if self._sim is not None:
            self._sim._note_cancel()

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = ("fired" if self.fired
                 else "cancelled" if self.cancelled else "pending")
        return f"Event(t={self.time:.6f}, seq={self.seq}, {state})"


def _noop(*_args: Any) -> None:
    return None


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Seed for the simulator-owned random generator.  All stochastic model
        components (network jitter, client think times, ...) must draw from
        ``self.rng`` so runs are reproducible.
    obs:
        Observability state shared by everything built on this simulator
        (``sim.obs``).  Defaults to a fresh *disabled* instance, which keeps
        every instrumented hot path on its fast branch; pass
        ``Observability(enabled=True)`` to record metrics, pipeline spans
        and resource utilization for the run report.

    Example
    -------
    >>> sim = Simulator(seed=1)
    >>> out = []
    >>> _ = sim.schedule(2.0, out.append, "b")
    >>> _ = sim.schedule(1.0, out.append, "a")
    >>> sim.run()
    >>> out
    ['a', 'b']
    """

    def __init__(self, seed: int = 0, obs: Observability | None = None):
        self.now: float = 0.0
        self.rng = random.Random(seed)
        self.seed = seed
        self.obs = obs if obs is not None else Observability()
        self._heap: list[tuple[float, int, Event]] = []
        self._seq: int = 0
        self._running = False
        self._stopped = False
        self._executed: int = 0
        self._live: int = 0
        self._tombstones: int = 0
        self._compactions: int = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` simulated seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        # Inlined schedule_at (delay >= 0 implies time >= now): this is the
        # hottest entry point into the heap, called once or more per event.
        time = self.now + delay
        self._seq += 1
        event = Event(time, self._seq, fn, args, self)
        heapq.heappush(self._heap, (time, self._seq, event))
        self._live += 1
        return event

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at an absolute simulated time."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self.now}"
            )
        self._seq += 1
        event = Event(time, self._seq, fn, args, self)
        heapq.heappush(self._heap, (time, self._seq, event))
        self._live += 1
        return event

    def call_soon(self, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at the current time, after pending same-time events."""
        return self.schedule(0.0, fn, *args)

    def _note_cancel(self) -> None:
        """Counter upkeep for a newly cancelled event, plus opportunistic
        compaction once tombstones outnumber live entries."""
        self._live -= 1
        self._tombstones += 1
        heap = self._heap
        if (self._tombstones > _COMPACT_MIN_TOMBSTONES
                and self._tombstones * 2 > len(heap)):
            # In place: ``run``/``step`` hold a local alias to this list.
            heap[:] = [entry for entry in heap if not entry[2].cancelled]
            heapq.heapify(heap)
            self._tombstones = 0
            self._compactions += 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run events in order until the heap drains, ``until`` is reached,
        ``max_events`` have executed, or :meth:`stop` is called.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the last event fires earlier, so interval-based measurements
        line up with the requested horizon.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        self._stopped = False
        executed_now = 0
        heap = self._heap
        pop = heapq.heappop
        try:
            while heap and not self._stopped:
                time, _seq, event = heap[0]
                if event.cancelled:
                    pop(heap)
                    self._tombstones -= 1
                    continue
                if until is not None and time > until:
                    break
                pop(heap)
                self._live -= 1
                event.fired = True
                self.now = time
                event.fn(*event.args)
                self._executed += 1
                executed_now += 1
                if max_events is not None and executed_now >= max_events:
                    break
        finally:
            self._running = False
        if until is not None and not self._stopped and self.now < until:
            self.now = until

    def step(self) -> bool:
        """Execute a single event.  Returns ``False`` when nothing is pending."""
        heap = self._heap
        while heap:
            time, _seq, event = heapq.heappop(heap)
            if event.cancelled:
                self._tombstones -= 1
                continue
            self._live -= 1
            event.fired = True
            self.now = time
            event.fn(*event.args)
            self._executed += 1
            return True
        return False

    def stop(self) -> None:
        """Stop :meth:`run` after the current event completes."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of live (non-cancelled, non-fired) events still queued."""
        return self._live

    @property
    def executed(self) -> int:
        """Total events executed so far."""
        return self._executed

    @property
    def tombstones(self) -> int:
        """Cancelled entries currently sitting in the heap."""
        return self._tombstones

    @property
    def compactions(self) -> int:
        """Number of tombstone compaction passes performed."""
        return self._compactions

    def peek_time(self) -> float | None:
        """Time of the next live event, or ``None`` when the heap is empty.

        Tombstones at the heap top are popped lazily, so this is amortized
        O(log n) — each cancelled entry is removed at most once."""
        heap = self._heap
        while heap:
            if heap[0][2].cancelled:
                heapq.heappop(heap)
                self._tombstones -= 1
                continue
            return heap[0][0]
        return None

    def drain(self) -> Iterable[Event]:  # pragma: no cover - debugging aid
        """Remove and yield all pending events without executing them."""
        while self._heap:
            _time, _seq, event = heapq.heappop(self._heap)
            if event.cancelled:
                self._tombstones -= 1
            else:
                self._live -= 1
                yield event
