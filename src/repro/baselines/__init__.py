"""Simulated comparator systems (Table II): Tendermint- and Fabric-like."""

from repro.baselines.fabric import FabricCluster, FabricConfig, FabricPeer
from repro.baselines.tendermint import (
    TendermintCluster,
    TendermintConfig,
    TendermintNode,
)

__all__ = [
    "FabricCluster",
    "FabricConfig",
    "FabricPeer",
    "TendermintCluster",
    "TendermintConfig",
    "TendermintNode",
]
