"""A Tendermint-like permissioned blockchain, simulated on the same substrate.

Substitution note (DESIGN.md): the paper compares SMARTCHAIN against a
production Tendermint deployment configured for maximum durability.  We model
the architectural properties the paper credits for the performance gap
(Section VII):

- **PBFT-variant consensus with a rotating proposer** (Spinning-style): the
  proposer changes every height, and each height runs PROPOSAL → PREVOTE →
  PRECOMMIT rounds;
- **gossip mempool**: transactions are flooded among all nodes before
  proposal (extra NIC traffic per transaction);
- **write-ahead + post-execution writes**: "Tendermint writes the block
  before and after operation execution" — two synchronous stable-storage
  barriers per block;
- **sequential ABCI execution**: the application interface is a single
  connection; transaction signature verification happens inside the
  application, on the execution thread (like SMaRtCoin's sequential setup,
  which the paper notes performs similarly).

Everything runs on the shared :mod:`repro.sim` substrate with the same cost
model, so Table II compares architectures under identical conditions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.config import CostModel
from repro.crypto.hashing import EMPTY_DIGEST, hash_obj
from repro.net.message import Message
from repro.net.network import Network
from repro.sim.engine import Simulator
from repro.sim.resource import Resource
from repro.smr.requests import ClientRequest, ReplyBatchMsg, RequestBatchMsg
from repro.smr.service import Application
from repro.smr.views import View
from repro.storage.stable import StableStore

__all__ = ["TendermintConfig", "TendermintNode", "TendermintCluster"]


@dataclass
class TendermintConfig:
    n: int = 4
    f: int = 1
    block_size: int = 512
    #: Minimum interval between block proposals (Tendermint's timeout_commit
    #: pacing; production default is in the hundreds of milliseconds).
    commit_timeout: float = 0.1
    propose_timeout: float = 0.003
    #: Gossip fan-out factor: every transaction is re-broadcast this many
    #: times across the mempool (bandwidth overhead per transaction).
    gossip_factor: int = 2


@dataclass
class ProposalMsg(Message):
    height: int = 0
    batch: list = field(default_factory=list)
    block_hash: bytes = b""


@dataclass
class VoteMsg(Message):
    height: int = 0
    phase: str = "prevote"       # prevote | precommit
    block_hash: bytes = b""
    size: int = field(default=120, kw_only=True)


@dataclass
class GossipMsg(Message):
    requests: list = field(default_factory=list)


class TendermintNode:
    """One validator."""

    def __init__(self, cluster: "TendermintCluster", node_id: int):
        self.cluster = cluster
        self.id = node_id
        sim = cluster.sim
        self.sm_thread = Resource(sim, 1, name=f"tm-sm-{node_id}")
        self.store = StableStore(sim, disk_config=cluster.costs.disk,
                                 name=f"tm-store-{node_id}")
        self.mempool: dict = {}
        self.height = 1
        self.phase = "idle"
        self.prevotes: dict[int, dict[bytes, set[int]]] = {}
        self.precommits: dict[int, dict[bytes, set[int]]] = {}
        self.committed: dict[int, list] = {}
        self.prev_hash = EMPTY_DIGEST
        self.blocks_committed = 0
        self.endpoint = cluster.network.register(
            ("tm", node_id), self._on_message)

    # ------------------------------------------------------------------
    @property
    def is_proposer(self) -> bool:
        return self.cluster.proposer(self.height) == self.id

    def _on_message(self, src: Any, msg: Message) -> None:
        if isinstance(msg, RequestBatchMsg):
            self._admit(msg.requests, gossip=True)
        elif isinstance(msg, GossipMsg):
            self._admit(msg.requests, gossip=False)
        elif isinstance(msg, ProposalMsg):
            self._on_proposal(src, msg)
        elif isinstance(msg, VoteMsg):
            self._on_vote(src, msg)

    def _admit(self, requests: list[ClientRequest], gossip: bool) -> None:
        fresh = [r for r in requests if r.key not in self.mempool
                 and r.key not in self.cluster.done]
        if not fresh:
            return
        for request in fresh:
            self.mempool[request.key] = request
        if gossip and self.cluster.config.gossip_factor > 0:
            # Flood to peers (bandwidth cost of the mempool).
            nbytes = sum(r.size for r in fresh)
            for _ in range(self.cluster.config.gossip_factor):
                for peer in self.cluster.nodes:
                    if peer.id != self.id:
                        self.cluster.network.send(
                            ("tm", self.id), ("tm", peer.id),
                            GossipMsg(requests=fresh, size=nbytes))
        self.cluster.maybe_propose()

    # ------------------------------------------------------------------
    # Consensus rounds
    # ------------------------------------------------------------------
    def propose(self) -> None:
        if not self.is_proposer or self.phase != "idle":
            return
        batch = list(self.mempool.values())[: self.cluster.config.block_size]
        if not batch:
            return
        self.phase = "proposing"
        block_hash = hash_obj(("tm-block", self.height,
                               [r.to_canonical() for r in batch]))
        nbytes = sum(r.size for r in batch) + 200
        msg = ProposalMsg(height=self.height, batch=batch,
                          block_hash=block_hash, size=nbytes)
        for peer in self.cluster.nodes:
            self.cluster.network.send(("tm", self.id), ("tm", peer.id), msg)

    def _on_proposal(self, src: Any, msg: ProposalMsg) -> None:
        if msg.height != self.height:
            return
        self.committed.setdefault(msg.height, msg.batch)
        self._broadcast_vote("prevote", msg.height, msg.block_hash)

    def _broadcast_vote(self, phase: str, height: int, block_hash: bytes) -> None:
        msg = VoteMsg(height=height, phase=phase, block_hash=block_hash)
        for peer in self.cluster.nodes:
            self.cluster.network.send(("tm", self.id), ("tm", peer.id), msg)

    def _on_vote(self, src: Any, msg: VoteMsg) -> None:
        if msg.height != self.height:
            return
        table = self.prevotes if msg.phase == "prevote" else self.precommits
        voters = table.setdefault(msg.height, {}).setdefault(msg.block_hash,
                                                             set())
        sender = src[1]
        if sender in voters:
            return
        voters.add(sender)
        quorum = 2 * self.cluster.config.f + 1
        if len(voters) < quorum:
            return
        if msg.phase == "prevote":
            self._broadcast_vote("precommit", msg.height, msg.block_hash)
        else:
            self._commit(msg.height)

    # ------------------------------------------------------------------
    # Commit pipeline: write block -> execute (ABCI) -> write state -> reply
    # ------------------------------------------------------------------
    def _commit(self, height: int) -> None:
        if height != self.height:
            return
        batch = self.committed.get(height)
        if batch is None:
            return
        self.height += 1
        self.phase = "committing"
        nbytes = sum(r.size for r in batch) + 200
        # First synchronous write: the block itself (before execution).
        self.store.append("blocks", ("pre", height), nbytes)
        self.store.sync(self._execute, height, batch)

    def _execute(self, height: int, batch: list[ClientRequest]) -> None:
        costs = self.cluster.costs
        # ABCI is sequential: per-transaction signature verification and
        # execution on the single application connection.
        work = costs.batch_overhead
        per_tx = (costs.crypto.verify_time + costs.exec_time_per_tx
                  + costs.reply_time_per_tx + costs.signed_tx_sm_overhead)
        work += per_tx * len(batch)
        self.sm_thread.submit(work, self._post_write, height, batch)

    def _post_write(self, height: int, batch: list[ClientRequest]) -> None:
        results = self.cluster.app_execute(self.id, batch)
        nbytes = sum(r.reply_size for r in batch) + 200
        # Second synchronous write: results / app state after execution.
        self.store.append("blocks", ("post", height), nbytes)
        self.store.sync(self._reply, height, batch, results)

    def _reply(self, height: int, batch: list[ClientRequest],
               results: dict) -> None:
        self.blocks_committed += 1
        by_station: dict[int, dict] = {}
        sizes: dict[int, int] = {}
        for request in batch:
            self.mempool.pop(request.key, None)
            result = results.get(request.key)
            if result is None:
                continue
            by_station.setdefault(request.station, {})[request.key] = result
            sizes[request.station] = sizes.get(request.station, 0) \
                + request.reply_size
        for station, payload in by_station.items():
            self.cluster.network.send(
                ("tm", self.id), station,
                ReplyBatchMsg(replica_id=self.id, results=payload,
                              size=sizes[station] + 32))
        if self.id == self.cluster.nodes[0].id:
            for request in batch:
                self.cluster.done.add(request.key)
        # Pace the next height (timeout_commit); the node stays out of the
        # proposer rotation until the timer fires.
        self.cluster.sim.schedule(self.cluster.config.commit_timeout,
                                  self._next_height)

    def _next_height(self) -> None:
        self.phase = "idle"
        self.cluster.maybe_propose()


class TendermintCluster:
    """A Tendermint validator set plus its shared bookkeeping."""

    def __init__(self, sim: Simulator, network: Network,
                 config: TendermintConfig, costs: CostModel,
                 app_factory) -> None:
        self.sim = sim
        self.network = network
        self.config = config
        self.costs = costs
        self.apps: dict[int, Application] = {}
        self.done: set = set()
        self.nodes: list[TendermintNode] = []
        for node_id in range(config.n):
            self.apps[node_id] = app_factory()
            self.nodes.append(TendermintNode(self, node_id))

    def proposer(self, height: int) -> int:
        return height % self.config.n

    def maybe_propose(self) -> None:
        for node in self.nodes:
            node.propose()

    def app_execute(self, node_id: int, batch: list[ClientRequest]) -> dict:
        return self.apps[node_id].execute_batch(batch)

    def view(self) -> View:
        """A View whose member ids are the validators' network addresses, so
        the ordinary client stations can drive a Tendermint cluster."""
        return View(0, tuple(("tm", i) for i in range(self.config.n)))

    def station_targets(self) -> list:
        return [("tm", node.id) for node in self.nodes]
