"""A Hyperledger-Fabric-like platform, simulated on the same substrate.

Substitution note (DESIGN.md): the paper compares against Fabric v1 with a
BFT ordering service.  We model the execute-order-validate architecture the
paper describes (Section VII):

1. **Endorsement**: the client sends its transaction to the endorsing peers;
   each simulates the execution (chaincode), signs a read/write set and
   returns the endorsement — one extra client round-trip plus a signature
   per endorser per transaction;
2. **Ordering**: endorsed transactions go to the (BFT) ordering service,
   which batches them into blocks — ordering only, no execution; modelled
   as a consensus-latency pipeline since validation, not ordering, is
   Fabric's bottleneck in the paper's experiment;
3. **Validation and commit**: every peer validates each transaction
   sequentially — verifying the client signature and the endorsement policy
   (multiple signatures per transaction) — and commits the write set to the
   state database with a per-transaction write.  This single-threaded
   VSCC/MVCC+commit path is what caps Fabric's throughput.

Peers write blocks to stable storage before emitting events (maximum
durability, as configured in the paper's Table II).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.config import CostModel
from repro.net.message import Message
from repro.net.network import Network
from repro.sim.engine import Simulator
from repro.sim.resource import Resource
from repro.smr.requests import ClientRequest, ReplyBatchMsg, RequestBatchMsg
from repro.smr.service import Application
from repro.smr.views import View
from repro.storage.stable import StableStore

__all__ = ["FabricConfig", "FabricPeer", "FabricCluster"]


@dataclass
class FabricConfig:
    n_peers: int = 4
    #: Endorsement policy: signatures required per transaction.
    endorsers_per_tx: int = 2
    block_size: int = 512
    #: Orderer block cut timeout.
    batch_timeout: float = 0.1
    #: BFT ordering service latency per block (PROPOSE/WRITE/ACCEPT rounds).
    ordering_latency: float = 0.004
    #: Per-transaction state-database commit cost (LevelDB/CouchDB write),
    #: on the single-threaded commit path.
    commit_time_per_tx: float = 1600e-6
    #: Per-transaction validation: client signature + endorsement policy.
    validation_sigs_per_tx: int = 3


@dataclass
class EndorseRequestMsg(Message):
    requests: list = field(default_factory=list)


@dataclass
class EndorseReplyMsg(Message):
    keys: list = field(default_factory=list)
    endorser: int = -1


@dataclass
class OrderMsg(Message):
    requests: list = field(default_factory=list)


@dataclass
class BlockMsg(Message):
    number: int = 0
    batch: list = field(default_factory=list)


class FabricPeer:
    """An endorsing + committing peer."""

    def __init__(self, cluster: "FabricCluster", peer_id: int):
        self.cluster = cluster
        self.id = peer_id
        sim = cluster.sim
        self.endorse_pool = Resource(sim, 4, name=f"fab-endorse-{peer_id}")
        self.commit_thread = Resource(sim, 1, name=f"fab-commit-{peer_id}")
        self.store = StableStore(sim, disk_config=cluster.costs.disk,
                                 name=f"fab-store-{peer_id}")
        self.blocks_committed = 0
        self.endpoint = cluster.network.register(("fab", peer_id),
                                                 self._on_message)

    def _on_message(self, src: Any, msg: Message) -> None:
        if isinstance(msg, EndorseRequestMsg):
            self._endorse(src, msg)
        elif isinstance(msg, BlockMsg):
            self._validate_and_commit(msg)

    # ------------------------------------------------------------------
    # Phase 1: endorsement (chaincode simulation + signature)
    # ------------------------------------------------------------------
    def _endorse(self, src: Any, msg: EndorseRequestMsg) -> None:
        costs = self.cluster.costs
        work = len(msg.requests) * (costs.exec_time_per_tx
                                    + costs.crypto.sign_time
                                    + costs.crypto.verify_time)

        def endorsed() -> None:
            keys = [r.key for r in msg.requests]
            nbytes = 96 * len(keys)
            self.cluster.network.send(
                ("fab", self.id), src,
                EndorseReplyMsg(keys=keys, endorser=self.id, size=nbytes))

        self.endorse_pool.submit(work, endorsed)

    # ------------------------------------------------------------------
    # Phase 3: validation + commit (sequential, the bottleneck)
    # ------------------------------------------------------------------
    def _validate_and_commit(self, msg: BlockMsg) -> None:
        costs = self.cluster.costs
        config = self.cluster.config
        per_tx = (config.validation_sigs_per_tx * costs.crypto.verify_time
                  + config.commit_time_per_tx
                  + costs.exec_time_per_tx)
        work = costs.batch_overhead + per_tx * len(msg.batch)
        self.commit_thread.submit(work, self._committed, msg)

    def _committed(self, msg: BlockMsg) -> None:
        nbytes = sum(r.size + r.reply_size for r in msg.batch) + 200
        self.store.append("ledger", ("block", msg.number), nbytes)
        self.store.sync(self._emit_events, msg)

    def _emit_events(self, msg: BlockMsg) -> None:
        self.blocks_committed += 1
        results = self.cluster.app_execute(self.id, msg.batch)
        by_station: dict[int, dict] = {}
        sizes: dict[int, int] = {}
        for request in msg.batch:
            result = results.get(request.key)
            if result is None:
                continue
            by_station.setdefault(request.station, {})[request.key] = result
            sizes[request.station] = sizes.get(request.station, 0) \
                + request.reply_size
        for station, payload in by_station.items():
            self.cluster.network.send(
                ("fab", self.id), station,
                ReplyBatchMsg(replica_id=self.id, results=payload,
                              size=sizes[station] + 32))


class _Orderer:
    """The ordering service: batches endorsed transactions into blocks.

    Modelled as a single logical service with the BFT ordering latency; the
    paper's bottleneck is peer validation, not ordering.
    """

    def __init__(self, cluster: "FabricCluster"):
        self.cluster = cluster
        self.pending: list[ClientRequest] = []
        self.number = 0
        self._cut_timer = None
        self.endpoint = cluster.network.register(("fab", "orderer"),
                                                 self._on_message)

    def _on_message(self, src: Any, msg: Message) -> None:
        if not isinstance(msg, OrderMsg):
            return
        self.pending.extend(msg.requests)
        if len(self.pending) >= self.cluster.config.block_size:
            self._cut()
        elif self._cut_timer is None:
            self._cut_timer = self.cluster.sim.schedule(
                self.cluster.config.batch_timeout, self._cut)

    def _cut(self) -> None:
        if self._cut_timer is not None:
            self._cut_timer.cancel()
            self._cut_timer = None
        if not self.pending:
            return
        size = self.cluster.config.block_size
        batch, self.pending = self.pending[:size], self.pending[size:]
        self.number += 1
        block = BlockMsg(number=self.number, batch=batch,
                         size=sum(r.size for r in batch) + 200)
        # BFT ordering rounds before delivery.
        self.cluster.sim.schedule(self.cluster.config.ordering_latency,
                                  self._deliver, block)
        if self.pending:
            self._cut_timer = self.cluster.sim.schedule(
                self.cluster.config.batch_timeout, self._cut)

    def _deliver(self, block: BlockMsg) -> None:
        for peer in self.cluster.peers:
            self.cluster.network.send(("fab", "orderer"), ("fab", peer.id),
                                      block)


class FabricCluster:
    """Peers + orderer, plus the client-side endorsement logic.

    Client stations talk to a Fabric cluster through
    :class:`FabricGateway`-style behaviour implemented in
    :meth:`station_view`: requests are first endorsed, then ordered.
    """

    def __init__(self, sim: Simulator, network: Network, config: FabricConfig,
                 costs: CostModel, app_factory) -> None:
        self.sim = sim
        self.network = network
        self.config = config
        self.costs = costs
        self.apps: dict[int, Application] = {}
        self.peers: list[FabricPeer] = []
        for peer_id in range(config.n_peers):
            self.apps[peer_id] = app_factory()
            self.peers.append(FabricPeer(self, peer_id))
        self.orderer = _Orderer(self)
        #: Pending endorsements: request key -> (request, endorser set).
        self._endorsing: dict[tuple, tuple[ClientRequest, set[int]]] = {}
        self.gateway = network.register(("fab", "gateway"),
                                        self._on_gateway_message)

    def app_execute(self, peer_id: int, batch: list[ClientRequest]) -> dict:
        return self.apps[peer_id].execute_batch(batch)

    # ------------------------------------------------------------------
    # Gateway: stations submit here; we run the endorsement round for them
    # ------------------------------------------------------------------
    def _on_gateway_message(self, src: Any, msg: Message) -> None:
        if isinstance(msg, RequestBatchMsg):
            for request in msg.requests:
                if request.key not in self._endorsing:
                    self._endorsing[request.key] = (request, set())
            nbytes = sum(r.size for r in msg.requests)
            for endorser in range(self.config.endorsers_per_tx):
                self.network.send(("fab", "gateway"), ("fab", endorser),
                                  EndorseRequestMsg(requests=msg.requests,
                                                    size=nbytes))
        elif isinstance(msg, EndorseReplyMsg):
            ready = []
            for key in msg.keys:
                entry = self._endorsing.get(key)
                if entry is None:
                    continue
                request, endorsers = entry
                endorsers.add(msg.endorser)
                if len(endorsers) >= self.config.endorsers_per_tx:
                    ready.append(request)
                    del self._endorsing[key]
            if ready:
                nbytes = sum(r.size + 96 * self.config.endorsers_per_tx
                             for r in ready)
                self.network.send(("fab", "gateway"), ("fab", "orderer"),
                                  OrderMsg(requests=ready, size=nbytes))

    def view(self) -> View:
        """Stations send requests to the gateway and receive peer events."""
        return View(0, (("fab", "gateway"),))

    def reply_quorum_view(self) -> View:
        """Events from a single peer complete a request (Fabric clients
        listen to one peer's block events)."""
        return View(0, (("fab", "gateway"),))
