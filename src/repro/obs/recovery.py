"""Online recovery auditor: does a recovered replica rejoin on the truth?

The safety auditor checks what replicas *say* while running; this auditor
checks what a crashed replica *rebuilds from its own disk*.  Verified
recovery (``docs/faults.md``, "Storage faults & verified recovery")
truncates the stable log to its longest checksum- and linkage-valid prefix
and replays only that; each ``recovering`` event carries the replayed
``(cid, recomputed batch hash)`` pairs as evidence.  The auditor compares
that evidence against the canonical decision stream (``decide`` events),
so a corrupted record that slips through unverified replay — the
``verify_recovery=False`` negative control — shows up as a divergence at
the exact recovery that resurrected it, *before* state transfer silently
heals the replica and hides the hole.

Invariants
----------
``recovery-divergence``
    A recovered replica's replayed prefix must match the canonical chain:
    every replayed cid's recomputed batch hash equals the decided batch
    hash for that cid.
``phantom-replay``
    A recovered replica must not replay a consensus id that was never
    decided (a corrupted cid field points the replay at history that does
    not exist).

The auditor also tallies the recovery/storage health events
(``log-corruption-detected``, ``snapshot-rejected``, ``recovery-fallback``,
``recovery-verified``, ``disk-degraded``) for the run report.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.obs.audit import AuditError, Violation
from repro.obs.events import ProtocolEvent

__all__ = ["RECOVERY_INVARIANTS", "RecoveryAuditor", "audit_recovery_log"]

#: Names of the invariants the recovery auditor enforces.
RECOVERY_INVARIANTS = ("recovery-divergence", "phantom-replay")


class RecoveryAuditor:
    """Checks recovery evidence against the canonical decision stream.

    Attach to a run with :meth:`attach` (subscribes to ``obs.events`` and
    forces event recording on), or feed events directly via
    :meth:`on_event` for offline sweeps.  ``scope`` maps a node id to its
    consensus group (shard), so sharded runs compare a recovery only
    against its own shard's decisions; the default places every node in
    one group.
    """

    INVARIANTS = RECOVERY_INVARIANTS

    def __init__(self, strict: bool = False,
                 scope: Callable[[int], int] | None = None):
        self.strict = strict
        self.scope = scope or (lambda node: 0)
        self.violations: list[Violation] = []
        self.events_checked = 0
        # (group, cid) -> canonical batch hash hex from decide events.
        self._decided: dict[tuple[int, int], str] = {}
        # Health tallies.
        self.recoveries_seen = 0
        self.recoveries_verified = 0
        self.corruption_detected = 0
        self.snapshots_rejected = 0
        self.fallbacks = 0
        self.disk_degraded = 0
        self.replayed_checked = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, obs: Any) -> "RecoveryAuditor":
        """Subscribe to a run's event stream (forces recording on)."""
        obs.record_events = True
        obs.events.subscribe(self.on_event)
        obs.recovery = self
        return self

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> dict[str, Any]:
        return {
            "invariants": list(self.INVARIANTS),
            "events_checked": self.events_checked,
            "recoveries_seen": self.recoveries_seen,
            "recoveries_verified": self.recoveries_verified,
            "replayed_checked": self.replayed_checked,
            "corruption_detected": self.corruption_detected,
            "snapshots_rejected": self.snapshots_rejected,
            "fallbacks": self.fallbacks,
            "disk_degraded": self.disk_degraded,
            "violations": [v.to_json() for v in self.violations],
        }

    def raise_if_violated(self) -> None:
        if self.violations:
            raise AuditError(self.violations)

    # ------------------------------------------------------------------
    # Event dispatch
    # ------------------------------------------------------------------
    def on_event(self, event: ProtocolEvent) -> None:
        handler = getattr(
            self, "_on_" + event.kind.replace("-", "_"), None)
        if handler is None:
            return
        self.events_checked += 1
        handler(event)

    def _flag(self, invariant: str, message: str, event: ProtocolEvent,
              **context: Any) -> None:
        violation = Violation(invariant, message, event, context)
        self.violations.append(violation)
        if self.strict:
            raise AuditError([violation])

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    def _on_decide(self, event: ProtocolEvent) -> None:
        key = (self.scope(event.node), event.fields["cid"])
        self._decided.setdefault(key, event.fields["batch_hash"])

    def _on_recovering(self, event: ProtocolEvent) -> None:
        self.recoveries_seen += 1
        group = self.scope(event.node)
        for cid, digest in event.fields.get("replayed", ()):
            self.replayed_checked += 1
            canonical = self._decided.get((group, cid))
            if canonical is None:
                self._flag(
                    "phantom-replay",
                    f"replica {event.node} replayed cid {cid}, which was "
                    "never decided",
                    event, cid=cid, replayed_hash=digest)
            elif canonical != digest:
                self._flag(
                    "recovery-divergence",
                    f"replica {event.node} replayed cid {cid} with batch "
                    f"hash {digest[:16]}…, but the group decided "
                    f"{canonical[:16]}…",
                    event, cid=cid, replayed_hash=digest,
                    decided_hash=canonical)

    def _on_recovery_verified(self, event: ProtocolEvent) -> None:
        self.recoveries_verified += 1

    def _on_log_corruption_detected(self, event: ProtocolEvent) -> None:
        self.corruption_detected += 1

    def _on_snapshot_rejected(self, event: ProtocolEvent) -> None:
        self.snapshots_rejected += 1

    def _on_recovery_fallback(self, event: ProtocolEvent) -> None:
        self.fallbacks += 1

    def _on_disk_degraded(self, event: ProtocolEvent) -> None:
        self.disk_degraded += 1


def audit_recovery_log(events, scope: Callable[[int], int] | None = None,
                       strict: bool = False) -> RecoveryAuditor:
    """Offline sweep: run the recovery auditor over recorded events."""
    auditor = RecoveryAuditor(strict=strict, scope=scope)
    for event in events:
        auditor.on_event(event)
    return auditor
