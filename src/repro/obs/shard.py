"""Per-shard auditing for sharded multi-chain runs.

One global :class:`~repro.obs.audit.SafetyAuditor` cannot audit a sharded
deployment: every shard restarts consensus ids and block heights at zero,
so two shards legitimately deciding different batches for cid 0 would be
flagged as an agreement violation.  This module scopes the existing safety
and liveness auditors to one shard each (dropping events from other
shards' nodes before dispatch) and adds the one genuinely *cross*-shard
invariant, ``no-double-mint``: a transfer certificate burned on its source
shard is redeemed at most once on its destination shard.

The per-shard auditors and the cross-shard auditor are bundled behind
:class:`ShardAuditGroup` / :class:`ShardLivenessGroup` facades that present
the single-auditor API the harness and run reports already consume
(``summary()`` / ``raise_if_violated()`` / ``finalize()``), so the report
schema is unchanged — summaries simply aggregate over shards.

Shard attribution is by node id.  The facades take the id→shard mapping as
a callable (the harness passes :func:`repro.core.multichain.shard_of_node`)
so this module stays free of core-layer imports; synthetic events with
``node == -1`` (finalize placeholders, network-wide faults) pass through to
every shard's auditor.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.obs.audit import AuditError, SafetyAuditor, Violation
from repro.obs.events import ProtocolEvent
from repro.obs.liveness import LivenessAuditor

__all__ = ["XSHARD_INVARIANTS", "ShardScopedSafetyAuditor",
           "ShardScopedLivenessAuditor", "CrossShardAuditor",
           "ShardAuditGroup", "ShardLivenessGroup"]

#: The invariant the cross-shard auditor enforces on top of the per-shard
#: safety invariants.
XSHARD_INVARIANTS = ("no-double-mint",)


class ShardScopedSafetyAuditor(SafetyAuditor):
    """A :class:`SafetyAuditor` that only sees one shard's events."""

    def __init__(self, shard: int, shard_of: Callable[[int], int],
                 strict: bool = False):
        super().__init__(strict=strict)
        self.shard = shard
        self._shard_of = shard_of

    def attach(self, obs: Any) -> "ShardScopedSafetyAuditor":
        """Subscribe without claiming ``obs.auditor`` (the group does)."""
        obs.record_events = True
        obs.events.subscribe(self.on_event)
        return self

    def on_event(self, event: ProtocolEvent) -> None:
        if event.node >= 0 and self._shard_of(event.node) != self.shard:
            return
        super().on_event(event)


class ShardScopedLivenessAuditor(LivenessAuditor):
    """A :class:`LivenessAuditor` that only sees one shard's events.

    Stations are shard-homed (ids ``9000 + 100*shard + s``), so a shard's
    request lifecycle — including cross-shard ``xmint`` requests routed to
    another group — is audited against its *home* shard's latency bound
    and regency timeline.
    """

    def __init__(self, shard: int, shard_of: Callable[[int], int],
                 **kwargs: Any):
        super().__init__(**kwargs)
        self.shard = shard
        self._shard_of = shard_of

    def attach(self, obs: Any) -> "ShardScopedLivenessAuditor":
        """Subscribe without claiming ``obs.liveness`` (the group does)."""
        obs.record_events = True
        obs.events.subscribe(self.on_event)
        return self

    def on_event(self, event: ProtocolEvent) -> None:
        if event.node >= 0 and self._shard_of(event.node) != self.shard:
            return
        super().on_event(event)


class CrossShardAuditor:
    """Enforces ``no-double-mint`` over the cert-redemption event stream.

    Subscribes to ``cert-redeemed`` / ``cert-rejected`` events (emitted by
    :class:`~repro.apps.smartcoin.SmartCoin` via its event hook) and flags:

    - the same transfer certificate redeemed twice by one replica (the
      replicated mint is deterministic, so every correct replica redeems a
      transfer exactly once — a repeat means replay protection failed);
    - a rejection with ``replay=True`` — a client *presented* an
      already-redeemed certificate, i.e. an attempted double mint.  The
      attempt was refused, but a fault-free run never produces one, so the
      auditor surfaces it.

    Flags are deduplicated per transfer id: one misbehaving presentation
    hits ``n`` replicas, which is one violation, not ``n``.
    """

    def __init__(self, strict: bool = False):
        self.strict = strict
        self.violations: list[Violation] = []
        self.events_checked = 0
        #: (node, xfer id) -> redemption event (first occurrence)
        self._redeemed: dict[tuple[int, str], ProtocolEvent] = {}
        #: xfer id -> minted value (must agree across replicas)
        self._values: dict[str, int] = {}
        self._flagged: set[str] = set()

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, obs: Any) -> "CrossShardAuditor":
        obs.record_events = True
        obs.events.subscribe(self.on_event)
        return self

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def transfers(self) -> int:
        """Distinct transfer certificates redeemed at least once."""
        return len(self._values)

    def raise_if_violated(self) -> None:
        if self.violations:
            raise AuditError(self.violations)

    def summary(self) -> dict[str, Any]:
        return {
            "invariants": list(XSHARD_INVARIANTS),
            "events_checked": self.events_checked,
            "transfers_redeemed": self.transfers,
            "violations": [v.to_json() for v in self.violations],
        }

    # ------------------------------------------------------------------
    # Event dispatch
    # ------------------------------------------------------------------
    def on_event(self, event: ProtocolEvent) -> None:
        kind = event.kind
        if kind == "cert-redeemed":
            self.events_checked += 1
            self._on_redeemed(event)
        elif kind == "cert-rejected":
            self.events_checked += 1
            self._on_rejected(event)

    def _flag(self, message: str, event: ProtocolEvent,
              **context: Any) -> None:
        violation = Violation("no-double-mint", message, event, context)
        self.violations.append(violation)
        if self.strict:
            raise AuditError([violation])

    def _on_redeemed(self, event: ProtocolEvent) -> None:
        xfer = event.fields.get("xfer")
        value = event.fields.get("value")
        key = (event.node, xfer)
        first = self._redeemed.get(key)
        if first is not None:
            if xfer not in self._flagged:
                self._flagged.add(xfer)
                self._flag(
                    f"transfer {xfer} redeemed twice on node {event.node} "
                    f"(first at t={first.time:.6f})",
                    event, xfer=xfer, node=event.node,
                    first_time=first.time)
            return
        self._redeemed[key] = event
        known = self._values.setdefault(xfer, value)
        if known != value and xfer not in self._flagged:
            self._flagged.add(xfer)
            self._flag(
                f"transfer {xfer} minted value {value} on node "
                f"{event.node} but {known} elsewhere",
                event, xfer=xfer, value=value, expected=known)

    def _on_rejected(self, event: ProtocolEvent) -> None:
        if not event.fields.get("replay"):
            return  # malformed/forged certificates are rejected, not flagged
        xfer = event.fields.get("xfer")
        if xfer in self._flagged:
            return
        self._flagged.add(xfer)
        self._flag(
            f"transfer {xfer} presented again after redemption "
            f"(double-mint attempt refused by node {event.node})",
            event, xfer=xfer, reason=event.fields.get("reason"))


class ShardAuditGroup:
    """Per-shard safety auditors + the cross-shard auditor, one facade.

    Mirrors the :class:`SafetyAuditor` reporting API so the harness and
    :func:`repro.obs.report.build_run_report` need no sharding special
    case: ``summary()`` aggregates, ``raise_if_violated()`` raises on any
    member's violations.
    """

    def __init__(self, members: list[SafetyAuditor],
                 cross: CrossShardAuditor | None = None):
        self.members = list(members)
        self.cross = cross

    def attach(self, obs: Any) -> "ShardAuditGroup":
        for member in self.members:
            member.attach(obs)
        if self.cross is not None:
            self.cross.attach(obs)
        obs.auditor = self
        return self

    @property
    def _all(self) -> list[Any]:
        out: list[Any] = list(self.members)
        if self.cross is not None:
            out.append(self.cross)
        return out

    @property
    def violations(self) -> list[Violation]:
        return [v for auditor in self._all for v in auditor.violations]

    @property
    def ok(self) -> bool:
        return not self.violations

    def raise_if_violated(self) -> None:
        violations = self.violations
        if violations:
            raise AuditError(violations)

    def summary(self) -> dict[str, Any]:
        invariants = list(self.members[0].summary()["invariants"]) \
            if self.members else []
        if self.cross is not None:
            invariants += list(XSHARD_INVARIANTS)
        return {
            "invariants": invariants,
            "shards": len(self.members),
            "events_checked": sum(a.events_checked for a in self._all),
            "transfers_redeemed": (self.cross.transfers
                                   if self.cross is not None else 0),
            "violations": [v.to_json() for v in self.violations],
        }


class ShardLivenessGroup:
    """Per-shard liveness auditors behind the single-auditor API.

    ``summary()`` aggregates the counters the report schema requires and
    tags each regency-timeline entry and latency bucket with its shard.
    """

    def __init__(self, members: list[LivenessAuditor]):
        self.members = list(members)

    def attach(self, obs: Any) -> "ShardLivenessGroup":
        for member in self.members:
            member.attach(obs)
        obs.liveness = self
        return self

    @property
    def violations(self) -> list[Violation]:
        return [v for member in self.members for v in member.violations]

    @property
    def ok(self) -> bool:
        return not self.violations

    def finalize(self, horizon: float) -> "ShardLivenessGroup":
        for member in self.members:
            member.finalize(horizon)
        return self

    def raise_if_violated(self) -> None:
        violations = self.violations
        if violations:
            raise AuditError(violations)

    def summary(self) -> dict[str, Any]:
        summaries = [member.summary() for member in self.members]
        first = summaries[0]
        timeline = []
        latency: dict[str, Any] = {}
        for member, shard_summary in zip(self.members, summaries):
            shard = getattr(member, "shard", 0)
            for entry in shard_summary["regency_timeline"]:
                timeline.append({"shard": shard, **entry})
            for regency, stats in shard_summary["latency_by_regency"].items():
                latency[f"s{shard}/r{regency}"] = stats
        return {
            "invariants": first["invariants"],
            "bound_s": first["bound_s"],
            "gst_s": first["gst_s"],
            "wedge_k": first["wedge_k"],
            "shards": len(self.members),
            "events_checked": sum(s["events_checked"] for s in summaries),
            "submitted": sum(s["submitted"] for s in summaries),
            "replied": sum(s["replied"] for s in summaries),
            "outstanding": sum(s["outstanding"] for s in summaries),
            "max_latency_s": max(s["max_latency_s"] for s in summaries),
            "late_replies": sum(s["late_replies"] for s in summaries),
            "late_outstanding": sum(s["late_outstanding"]
                                    for s in summaries),
            "watchdog_fires": sum(s["watchdog_fires"] for s in summaries),
            "regency_changes": sum(s["regency_changes"] for s in summaries),
            "regency_timeline": timeline,
            "latency_by_regency": latency,
            "violations": [v.to_json() for v in self.violations],
        }
