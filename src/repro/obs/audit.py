"""Online safety auditor for the protocol event stream.

The paper's core claims are protocol claims: no forks (Observation 3 /
Section V-D), 0-Persistence after full crashes (Observation 2 / Section
V-C), correct view change and key forgetting.  The auditor subscribes to
the :class:`~repro.obs.events.EventLog` and checks every event as it is
emitted, so a violation is detected *at* the event that exposes it — the
:class:`Violation` carries that event plus the cross-replica context that
contradicts it.

Invariants
----------
``agreement``
    Two replicas never decide different batch hashes for the same
    consensus id (``decide`` events).
``no-fork``
    Two replicas never hold different blocks at the same height, and no
    block ever contradicts a completed persist certificate for its height
    (``block-append`` / ``persist-certificate`` events).
``view-monotonicity``
    Installed view ids strictly increase per replica (``view-change``).
``persistence``
    After a *full* crash (every known replica crashed), the recovered
    group's best local chain still contains every certified block —
    0-Persistence; a certified block that no recovering replica holds was
    lost (``crash`` / ``recovering`` events).
``retired-key``
    The forgetting invariant: no persist certificate for a block above a
    reconfiguration point carries a view older than the view in effect at
    that height — such a certificate could only have been signed with
    retired (erased) consensus keys (``reconfig`` / ``persist-certificate``
    events).

``SafetyAuditor(strict=True)`` raises :class:`AuditError` at the violating
event; the default collects violations so the harness can fail the run at
the end with the complete list.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.obs.events import CLIENT_KINDS, EventLog, ProtocolEvent

__all__ = ["INVARIANTS", "Violation", "AuditError", "SafetyAuditor",
           "audit_event_log"]

#: Names of the invariants the auditor enforces.
INVARIANTS = ("agreement", "no-fork", "view-monotonicity", "persistence",
              "retired-key")


@dataclass
class Violation:
    """One invariant breach, with the event that exposed it."""

    invariant: str
    message: str
    event: ProtocolEvent
    context: dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> dict[str, Any]:
        return {
            "invariant": self.invariant,
            "message": self.message,
            "event": self.event.to_json(),
            "context": {k: (v.hex() if isinstance(v, bytes) else v)
                        for k, v in self.context.items()},
        }

    def __str__(self) -> str:
        return (f"[{self.invariant}] {self.message} "
                f"(at t={self.event.time:.6f} node={self.event.node} "
                f"event={self.event.kind})")


class AuditError(Exception):
    """Raised when a run violated a safety invariant."""

    def __init__(self, violations: list[Violation]):
        self.violations = list(violations)
        lines = "\n  ".join(str(v) for v in self.violations)
        super().__init__(
            f"{len(self.violations)} safety violation(s):\n  {lines}")


class SafetyAuditor:
    """Checks protocol events against the paper's safety invariants.

    Attach to a run with :meth:`attach` (subscribes to ``obs.events`` and
    forces event recording on), or feed events directly via
    :meth:`on_event` / :meth:`ingest_chain` for offline sweeps.
    """

    def __init__(self, strict: bool = False):
        self.strict = strict
        self.violations: list[Violation] = []
        self.events_checked = 0
        # agreement: cid -> (batch_hash, first deciding node, event)
        self._decided: dict[int, tuple[str, int, ProtocolEvent]] = {}
        # no-fork: height -> (digest, first appending node, event)
        self._blocks: dict[int, tuple[str, int, ProtocolEvent]] = {}
        # persistence / no-fork: height -> (digest, cert view, event)
        self._certified: dict[int, tuple[str, int, ProtocolEvent]] = {}
        # view-monotonicity: node -> last installed view id
        self._views: dict[int, int] = {}
        # retired-key: (reconfig block number, view installed there)
        self._view_from: list[tuple[int, int]] = []
        # persistence: membership learned from the stream + crash tracking
        self._known: set[int] = set()
        self._crashed: set[int] = set()
        self._epoch_nodes: frozenset[int] | None = None
        self._epoch_required: dict[int, str] = {}
        self._epoch_heights: dict[int, int] = {}
        self._ingest_seq = 1_000_000_000  # synthetic seq for offline feeds

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, obs: Any) -> "SafetyAuditor":
        """Subscribe to a run's event stream (forces recording on)."""
        obs.record_events = True
        obs.events.subscribe(self.on_event)
        obs.auditor = self
        return self

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> dict[str, Any]:
        return {
            "invariants": list(INVARIANTS),
            "events_checked": self.events_checked,
            "violations": [v.to_json() for v in self.violations],
        }

    def raise_if_violated(self) -> None:
        if self.violations:
            raise AuditError(self.violations)

    # ------------------------------------------------------------------
    # Event dispatch
    # ------------------------------------------------------------------
    def on_event(self, event: ProtocolEvent) -> None:
        self.events_checked += 1
        if (event.kind != "reconfig" and event.kind not in CLIENT_KINDS
                and event.node >= 0):
            # Reconfig events may come from off-cluster submitters (the
            # View Manager), fault-injection events from the harness
            # itself (node -1), and request lifecycle events from client
            # stations (node 9000+); everything else identifies a replica.
            self._known.add(event.node)
        handler = getattr(self, "_on_" + event.kind.replace("-", "_"), None)
        if handler is not None:
            handler(event)

    def _flag(self, invariant: str, message: str, event: ProtocolEvent,
              **context: Any) -> None:
        violation = Violation(invariant=invariant, message=message,
                              event=event, context=context)
        self.violations.append(violation)
        if self.strict:
            raise AuditError([violation])

    # ------------------------------------------------------------------
    # agreement
    # ------------------------------------------------------------------
    def _on_decide(self, event: ProtocolEvent) -> None:
        cid = event.fields.get("cid")
        batch_hash = event.fields.get("batch_hash")
        if cid is None or batch_hash is None:
            return
        seen = self._decided.get(cid)
        if seen is None:
            self._decided[cid] = (batch_hash, event.node, event)
        elif seen[0] != batch_hash:
            self._flag(
                "agreement",
                f"cid {cid}: node {event.node} decided {batch_hash[:16]}… "
                f"but node {seen[1]} decided {seen[0][:16]}…",
                event, cid=cid, first_node=seen[1], first_hash=seen[0],
                conflicting_hash=batch_hash)

    # ------------------------------------------------------------------
    # no-fork
    # ------------------------------------------------------------------
    def _on_block_append(self, event: ProtocolEvent) -> None:
        number = event.fields.get("block")
        digest = event.fields.get("digest")
        if number is None or digest is None:
            return
        seen = self._blocks.get(number)
        if seen is None:
            self._blocks[number] = (digest, event.node, event)
        elif seen[0] != digest:
            self._flag(
                "no-fork",
                f"height {number}: node {event.node} appended "
                f"{digest[:16]}… but node {seen[1]} holds {seen[0][:16]}…",
                event, block=number, first_node=seen[1],
                first_digest=seen[0], conflicting_digest=digest)
        certified = self._certified.get(number)
        if certified is not None and certified[0] != digest:
            self._flag(
                "no-fork",
                f"height {number}: node {event.node} appended a block "
                f"contradicting its persist certificate",
                event, block=number, certified_digest=certified[0],
                conflicting_digest=digest)

    # ------------------------------------------------------------------
    # view-monotonicity
    # ------------------------------------------------------------------
    def _on_view_change(self, event: ProtocolEvent) -> None:
        view = event.fields.get("view")
        if view is None:
            return
        last = self._views.get(event.node)
        if last is not None and view <= last:
            self._flag(
                "view-monotonicity",
                f"node {event.node} installed view {view} after view {last}",
                event, previous_view=last, installed_view=view)
        else:
            self._views[event.node] = view

    # ------------------------------------------------------------------
    # retired-key (forgetting invariant) + certificate bookkeeping
    # ------------------------------------------------------------------
    def _on_reconfig(self, event: ProtocolEvent) -> None:
        if event.fields.get("op") != "install":
            return
        block = event.fields.get("block")
        view = event.fields.get("view")
        if block is not None and view is not None:
            self._view_from.append((block, view))

    def view_at_height(self, number: int) -> int:
        """The view in whose keys a certificate at ``number`` must be signed
        (the view installed by the newest reconfiguration block *below*)."""
        view = 0
        for reconfig_block, installed in self._view_from:
            if number > reconfig_block:
                view = max(view, installed)
        return view

    def _on_persist_certificate(self, event: ProtocolEvent) -> None:
        number = event.fields.get("block")
        digest = event.fields.get("digest")
        view = event.fields.get("view")
        if number is None or digest is None:
            return
        expected_view = self.view_at_height(number)
        if view is not None and view < expected_view:
            self._flag(
                "retired-key",
                f"certificate for block {number} carries view {view}, but "
                f"view {expected_view} was in effect at that height — its "
                f"signing keys were retired (erased) by the forgetting "
                f"protocol",
                event, block=number, certificate_view=view,
                expected_view=expected_view)
        seen = self._certified.get(number)
        if seen is None:
            self._certified[number] = (digest, view if view is not None else 0,
                                       event)
        elif seen[0] != digest:
            self._flag(
                "no-fork",
                f"height {number}: two persist certificates over different "
                f"digests",
                event, block=number, first_digest=seen[0],
                conflicting_digest=digest)
        held = self._blocks.get(number)
        if held is not None and held[0] != digest:
            self._flag(
                "no-fork",
                f"height {number}: persist certificate contradicts the "
                f"block held by node {held[1]}",
                event, block=number, held_digest=held[0],
                certified_digest=digest)

    # ------------------------------------------------------------------
    # persistence (0-Persistence after a full crash)
    # ------------------------------------------------------------------
    def _on_crash(self, event: ProtocolEvent) -> None:
        self._crashed.add(event.node)
        if self._known and self._crashed >= self._known:
            # Full crash: every replica the stream knows about is down.
            # Snapshot what 0-Persistence owes the group on the way back up.
            self._epoch_nodes = frozenset(self._crashed)
            self._epoch_required = {number: digest for number, (digest, _v, _e)
                                    in self._certified.items()}
            self._epoch_heights = {}

    def _on_recovering(self, event: ProtocolEvent) -> None:
        self._crashed.discard(event.node)
        if self._epoch_nodes is None or event.node not in self._epoch_nodes:
            return
        height = event.fields.get("height")
        if height is None:
            return
        self._epoch_heights[event.node] = height
        if set(self._epoch_heights) < self._epoch_nodes:
            return
        # Every replica of the full-crash epoch reloaded its stable state.
        group_max = max(self._epoch_heights.values())
        lost = sorted(number for number in self._epoch_required
                      if number > group_max)
        if lost:
            self._flag(
                "persistence",
                f"full-crash recovery lost certified block(s) {lost}: best "
                f"recovered height is {group_max}",
                event, lost_blocks=lost, group_max_height=group_max,
                certified_max=max(self._epoch_required),
                recovered_heights=dict(sorted(self._epoch_heights.items())))
        self._epoch_nodes = None
        self._epoch_required = {}
        self._epoch_heights = {}

    def _on_recover(self, event: ProtocolEvent) -> None:
        self._crashed.discard(event.node)

    # ------------------------------------------------------------------
    # Offline sweep: feed a chain through the same invariant path
    # ------------------------------------------------------------------
    def ingest_chain(self, node: int, blocks: Iterable[Any],
                     now: float = 0.0) -> None:
        """Audit a replica's chain after the fact: synthesize the
        ``block-append`` (and ``persist-certificate``) events its blocks
        imply and run them through the online checks."""
        for block in blocks:
            self.on_event(self._synthetic(
                "block-append", node, now, block=block.number,
                digest=block.digest().hex(), view=block.header.view_id))
            certificate = getattr(block, "certificate", None)
            if certificate is not None:
                self.on_event(self._synthetic(
                    "persist-certificate", node, now,
                    block=certificate.block_number,
                    digest=certificate.header_digest.hex(),
                    view=certificate.view_id,
                    signers=sorted(certificate.signatures)))

    def _synthetic(self, kind: str, node: int, now: float,
                   **fields: Any) -> ProtocolEvent:
        event = ProtocolEvent(time=now, seq=self._ingest_seq, kind=kind,
                              node=node, fields=fields)
        self._ingest_seq += 1
        return event


def audit_event_log(log: EventLog, strict: bool = False) -> SafetyAuditor:
    """Run the auditor over an already-recorded event log."""
    auditor = SafetyAuditor(strict=strict)
    for event in sorted(log, key=lambda e: e.sort_key):
        auditor.on_event(event)
    return auditor
