"""Machine-readable run reports.

A *run report* is one experiment's observability output rendered as plain
JSON-serializable data: the standard throughput/latency summary, the
metrics-registry snapshot, the per-phase pipeline latency breakdown and the
per-resource busy fractions that explain it.  A *bench report* wraps several
run reports (one per table row) for ``python -m repro.bench ... --report``.

:func:`validate_report` is the schema check the ``--smoke`` CI target runs:
it raises :class:`ValueError` on any structural problem, so a report that
round-trips ``json.dumps``/``json.loads`` and validates is safe for
downstream tooling to consume.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "RUN_REPORT_SCHEMA",
    "BENCH_REPORT_SCHEMA",
    "build_run_report",
    "build_bench_report",
    "validate_report",
    "validate_bench_report",
]

RUN_REPORT_SCHEMA = "repro.obs/run-report/v1"
BENCH_REPORT_SCHEMA = "repro.obs/bench-report/v1"

#: Statistics every per-phase breakdown entry must carry.
_PHASE_STAT_KEYS = ("count", "mean_s", "p50_s", "p95_s", "p99_s", "max_s")

#: Fields every per-resource entry must carry.
_RESOURCE_KEYS = ("name", "servers", "busy_fraction", "jobs_served",
                  "queue_peak", "mean_queue_depth")


def _resource_role(name: str) -> str:
    """Bucket a resource name into its hardware role (sm/pool/nic/disk)."""
    if "disk" in name:
        return "disk"
    for separator in ("-", ":", "."):
        if separator in name:
            return name.split(separator, 1)[0]
    return name


def build_run_report(result: Any, obs: Any, horizon: float) -> dict[str, Any]:
    """Render one experiment's observability state as a JSON-ready dict.

    ``result`` is an :class:`~repro.bench.harness.ExperimentResult` (duck
    typed to avoid an import cycle); ``obs`` the run's ``Observability``;
    ``horizon`` the simulated end time (busy fractions are normalized to it).
    """
    resources = obs.resource_stats(horizon)
    roles: dict[str, list[float]] = {}
    for entry in resources:
        roles.setdefault(_resource_role(entry["name"]), []).append(
            entry["busy_fraction"])
    role_summary = {
        role: {"count": len(fractions),
               "busy_fraction_mean": sum(fractions) / len(fractions),
               "busy_fraction_max": max(fractions)}
        for role, fractions in sorted(roles.items())
    }
    report = {
        "schema": RUN_REPORT_SCHEMA,
        "label": result.label,
        "summary": {
            "throughput_tx_s": result.throughput,
            "latency_mean_s": result.latency_mean,
            "latency_p95_s": result.latency_p95,
            "latency_p99_s": getattr(result, "latency_p99", 0.0),
            "completed": result.completed,
            "duration_s": result.duration,
            "warmup_s": result.warmup,
            "interval_rates": list(result.interval_rates),
        },
        "metrics": {**obs.metrics.snapshot(), **dict(result.metrics)},
        "trace": {
            "sample_every": obs.tracer.sample_every,
            "traced_requests": obs.tracer.traced_requests,
            "traced_cids": obs.tracer.traced_cids,
        },
        "phases": obs.tracer.breakdown(),
        "resources": resources,
        "resource_roles": role_summary,
        "network": obs.network_stats(),
    }
    # Additive sections (repro.obs v2): present only when recorded, so
    # older reports still validate.
    if getattr(obs, "record_events", False):
        report["events"] = {
            "count": len(obs.events),
            "dropped": obs.events.dropped,
            "by_kind": obs.events.counts(),
        }
    auditor = getattr(obs, "auditor", None)
    if auditor is not None:
        report["audit"] = auditor.summary()
    liveness = getattr(obs, "liveness", None)
    if liveness is not None:
        report["liveness"] = liveness.summary()
    recovery = getattr(obs, "recovery", None)
    if recovery is not None:
        report["recovery"] = recovery.summary()
    return report


def build_bench_report(experiment: str, runs: list[dict[str, Any]],
                       options: dict[str, Any] | None = None) -> dict[str, Any]:
    """Wrap per-row run reports for the CLI's ``--report`` output."""
    return {
        "schema": BENCH_REPORT_SCHEMA,
        "experiment": experiment,
        "options": dict(options or {}),
        "runs": runs,
    }


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(f"invalid report: {message}")


def validate_report(report: Any) -> dict[str, Any]:
    """Structural schema check for one run report; returns it on success."""
    _require(isinstance(report, dict), "not a mapping")
    _require(report.get("schema") == RUN_REPORT_SCHEMA,
             f"unexpected schema tag {report.get('schema')!r}")
    for key in ("label", "summary", "metrics", "phases", "resources",
                "resource_roles", "network", "trace"):
        _require(key in report, f"missing key {key!r}")
    summary = report["summary"]
    _require(isinstance(summary, dict), "summary is not a mapping")
    for key in ("throughput_tx_s", "latency_mean_s", "latency_p95_s",
                "completed", "duration_s", "warmup_s", "interval_rates"):
        _require(key in summary, f"summary missing {key!r}")
    _require(summary["throughput_tx_s"] >= 0, "negative throughput")
    if "events" in report:  # additive v2 section
        events = report["events"]
        _require(isinstance(events, dict), "events is not a mapping")
        for key in ("count", "dropped", "by_kind"):
            _require(key in events, f"events missing {key!r}")
        _require(events["count"] >= 0 and events["dropped"] >= 0,
                 "negative event counts")
    if "audit" in report:  # additive v2 section
        audit = report["audit"]
        _require(isinstance(audit, dict), "audit is not a mapping")
        for key in ("invariants", "events_checked", "violations"):
            _require(key in audit, f"audit missing {key!r}")
        _require(isinstance(audit["violations"], list),
                 "audit violations is not a list")
    if "liveness" in report:  # additive section (liveness auditor attached)
        liveness = report["liveness"]
        _require(isinstance(liveness, dict), "liveness is not a mapping")
        for key in ("invariants", "bound_s", "gst_s", "wedge_k", "submitted",
                    "replied", "outstanding", "regency_timeline",
                    "latency_by_regency", "violations"):
            _require(key in liveness, f"liveness missing {key!r}")
        _require(isinstance(liveness["regency_timeline"], list),
                 "liveness regency_timeline is not a list")
        _require(isinstance(liveness["violations"], list),
                 "liveness violations is not a list")
    if "recovery" in report:  # additive section (recovery auditor attached)
        recovery = report["recovery"]
        _require(isinstance(recovery, dict), "recovery is not a mapping")
        for key in ("invariants", "events_checked", "recoveries_seen",
                    "replayed_checked", "corruption_detected",
                    "snapshots_rejected", "fallbacks", "disk_degraded",
                    "violations"):
            _require(key in recovery, f"recovery missing {key!r}")
        _require(isinstance(recovery["violations"], list),
                 "recovery violations is not a list")
    _require(isinstance(report["phases"], dict), "phases is not a mapping")
    for phase, stats in report["phases"].items():
        for key in _PHASE_STAT_KEYS:
            _require(key in stats, f"phase {phase!r} missing {key!r}")
        _require(stats["count"] > 0, f"phase {phase!r} has no samples")
    _require(isinstance(report["resources"], list), "resources is not a list")
    for entry in report["resources"]:
        for key in _RESOURCE_KEYS:
            _require(key in entry, f"resource entry missing {key!r}")
        _require(0.0 <= entry["busy_fraction"] <= 1.0,
                 f"resource {entry['name']!r} busy fraction "
                 f"{entry['busy_fraction']} outside [0, 1]")
    return report


def validate_bench_report(report: Any,
                          min_phases: int = 0) -> dict[str, Any]:
    """Schema check for a CLI bench report (validates every run inside).

    ``min_phases`` additionally requires at least one run whose per-phase
    breakdown covers that many pipeline phases — the smoke target uses it
    to assert the tracer produced a usable breakdown.
    """
    _require(isinstance(report, dict), "not a mapping")
    _require(report.get("schema") == BENCH_REPORT_SCHEMA,
             f"unexpected schema tag {report.get('schema')!r}")
    _require(isinstance(report.get("runs"), list), "runs is not a list")
    _require(len(report["runs"]) > 0, "no runs")
    for run in report["runs"]:
        validate_report(run)
    if min_phases:
        best = max(len(run["phases"]) for run in report["runs"])
        _require(best >= min_phases,
                 f"widest per-phase breakdown covers {best} phases "
                 f"(< {min_phases})")
    return report
