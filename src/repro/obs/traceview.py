"""Chrome trace-event export of spans and protocol events.

:func:`build_trace` renders one observed run as Chrome trace-event JSON
(https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU),
viewable in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``:

- one *process* per replica carrying its protocol events as instant
  events ("i") on an ``events`` thread;
- one flow ("s" → "f") per completed request, from its
  ``request-submitted`` to its ``request-replied`` instant on the owning
  client station's track, so a request's path — including across regency
  changes — is visible as an arrow in the trace UI;
- the designated pipeline replica additionally carries the consensus-level
  pipeline as duration events ("X"): for each traced consensus id, one
  slice per phase, spanning from the previous phase's mark;
- one *process* per simulated resource (SM threads, verify pools, NICs,
  disks) carrying its busy fraction as a counter track ("C").

Timestamps are microseconds of simulated time.  The event list is sorted
on an explicit ``(ts, pid, tid, name, seq)`` key, so the export is
byte-identical across runs with the same seed (``json.dumps`` with
``sort_keys=True``).
"""

from __future__ import annotations

import json
from typing import Any

from repro.obs.spans import PHASES

__all__ = ["TRACE_PHASES", "build_trace", "validate_trace", "write_trace"]

#: Chrome trace-event phase codes this exporter emits (M = metadata,
#: X = complete/duration, i = instant, C = counter, s/f = flow start/end).
TRACE_PHASES = ("M", "X", "i", "C", "s", "f")

_MICRO = 1_000_000
#: pid offset for resource counter tracks (replica pids are the node ids).
_RESOURCE_PID = 10_000

_PHASE_ORDER = {phase: index for index, phase in enumerate(PHASES)}


def _us(seconds: float) -> float:
    return round(seconds * _MICRO, 3)


def build_trace(obs: Any, horizon: float = 0.0,
                label: str = "run") -> dict[str, Any]:
    """Render an ``Observability`` object's spans + events as a trace dict."""
    events: list[dict[str, Any]] = []
    pids: dict[int, str] = {}

    # Protocol events: one instant event per record, one process per node.
    submits: dict[tuple[Any, Any], Any] = {}
    replies: dict[tuple[Any, Any], Any] = {}
    for record in sorted(obs.events, key=lambda e: e.sort_key):
        pids.setdefault(record.node, f"node-{record.node}")
        events.append({
            "name": record.kind,
            "ph": "i",
            "s": "t",
            "ts": _us(record.time),
            "pid": record.node,
            "tid": 0,
            "args": record.to_json(),
        })
        if record.kind == "request-submitted":
            key = (record.fields.get("client"), record.fields.get("req"))
            submits.setdefault(key, record)
        elif record.kind == "request-replied":
            key = (record.fields.get("client"), record.fields.get("req"))
            replies.setdefault(key, record)

    # Request flows: one "s" → "f" arrow per completed request, anchored at
    # its submit/reply instants on the owning station's track.  Flow ids
    # are assigned in sorted request-key order, so they are deterministic.
    for flow_id, key in enumerate(sorted(k for k in submits if k in replies),
                                  start=1):
        submit, reply = submits[key], replies[key]
        common = {"name": "request", "cat": "request", "id": flow_id,
                  "tid": 0, "args": {"client": key[0], "req": key[1]}}
        events.append({**common, "ph": "s",
                       "ts": _us(submit.time), "pid": submit.node})
        events.append({**common, "ph": "f", "bp": "e",
                       "ts": _us(reply.time), "pid": reply.node})

    # Pipeline slices on the designated replica: consecutive cid marks
    # become duration events attributed to the phase that finished the wait.
    pipeline_pid = obs.pipeline_node
    cid_marks = obs.tracer.cid_marks()
    for cid in sorted(cid_marks):
        marks = sorted(cid_marks[cid].items(),
                       key=lambda item: (item[1], _PHASE_ORDER[item[0]]))
        pids.setdefault(pipeline_pid, f"node-{pipeline_pid}")
        for (_, prev_t), (phase, t) in zip(marks, marks[1:]):
            events.append({
                "name": phase,
                "ph": "X",
                "ts": _us(prev_t),
                "dur": max(0.0, _us(t) - _us(prev_t)),
                "pid": pipeline_pid,
                "tid": 1,
                "args": {"cid": cid},
            })

    # Resource busy fractions as counter tracks (constant over the run:
    # busy fraction is an aggregate, sampled at both ends for visibility).
    resource_names: dict[int, str] = {}
    for index, resource in enumerate(obs.resources):
        pid = _RESOURCE_PID + index
        resource_names[pid] = resource.name
        stats = resource.stats(horizon or 1.0)
        for ts in (0.0, _us(horizon) if horizon else 0.0):
            events.append({
                "name": "busy_pct",
                "ph": "C",
                "ts": ts,
                "pid": pid,
                "tid": 0,
                "args": {"busy": round(stats["busy_fraction"] * 100.0, 3)},
            })

    events.sort(key=lambda e: (e["ts"], e["pid"], e["tid"], e["name"],
                               e.get("args", {}).get("seq", -1)))

    metadata: list[dict[str, Any]] = []
    for pid, name in sorted(pids.items()):
        metadata.append({"name": "process_name", "ph": "M", "ts": 0,
                         "pid": pid, "tid": 0, "args": {"name": name}})
        metadata.append({"name": "thread_name", "ph": "M", "ts": 0,
                         "pid": pid, "tid": 0, "args": {"name": "events"}})
        if pid == pipeline_pid:
            metadata.append({"name": "thread_name", "ph": "M", "ts": 0,
                             "pid": pid, "tid": 1,
                             "args": {"name": "pipeline"}})
    for pid, name in sorted(resource_names.items()):
        metadata.append({"name": "process_name", "ph": "M", "ts": 0,
                         "pid": pid, "tid": 0, "args": {"name": name}})

    return {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ms",
        "otherData": {"label": label, "exporter": "repro.obs.traceview"},
    }


def validate_trace(trace: Any) -> dict[str, Any]:
    """Structural check of a Chrome trace-event dict; returns it on success
    (raises :class:`ValueError` otherwise)."""
    if not isinstance(trace, dict):
        raise ValueError("trace is not a mapping")
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise ValueError("traceEvents missing or empty")
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"traceEvents[{index}] is not a mapping")
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in event:
                raise ValueError(f"traceEvents[{index}] missing {key!r}")
        if event["ph"] not in TRACE_PHASES:
            raise ValueError(
                f"traceEvents[{index}] has unknown phase {event['ph']!r}")
        if not isinstance(event["ts"], (int, float)) or event["ts"] < 0:
            raise ValueError(f"traceEvents[{index}] has bad ts {event['ts']!r}")
        if event["ph"] == "X" and event.get("dur", -1) < 0:
            raise ValueError(f"traceEvents[{index}] X event without dur")
        if event["ph"] in ("s", "f") and "id" not in event:
            raise ValueError(
                f"traceEvents[{index}] flow event without an id")
    return trace


def write_trace(trace: dict[str, Any], path: str) -> None:
    """Validate and write a trace file Perfetto can open directly."""
    validate_trace(trace)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace, fh, sort_keys=True)
        fh.write("\n")
