"""Span-based tracing of the request pipeline.

The paper's bottleneck arguments (Observation 1, Table I) are claims about
*where a request spends its time*: signature verification, synchronous
ledger writes, PERSIST certificate assembly.  The tracer records, for a
(sampled) subset of requests, a timestamp for every pipeline phase a request
passes through, and assembles them into per-request spans:

==============  ==============================================================
phase           marked when
==============  ==============================================================
client_send     the client station buffers the request for transmission
batch           the leader includes the request in a proposed batch
propose         the leader broadcasts the PROPOSE for the request's cid
write           the traced replica broadcasts its WRITE for that cid
accept          the traced replica decides the cid (signed-ACCEPT quorum)
execute         the delivery layer finished executing the batch
body_write      block body + header are on stable media (storage barrier)
persist         the block certificate completed (strong variant; otherwise
                marked when the block finishes uncertified)
reply           the client station assembled the reply quorum
==============  ==============================================================

Client-side phases are recorded per request key; consensus/delivery phases
are recorded once per consensus id on a single designated replica and shared
by every request of the batch (``bind`` links the two at batching time).
The per-phase latency breakdown attributes, to each phase, the time elapsed
since the previous recorded phase of the same span.
"""

from __future__ import annotations

from typing import Any, Hashable

__all__ = ["PHASES", "REQUEST_PHASES", "CID_PHASES", "PipelineTracer"]

#: Pipeline order of every phase a traced request can pass through.
PHASES = ("client_send", "batch", "propose", "write", "accept",
          "execute", "body_write", "persist", "reply")

#: Phases recorded per request key (at the client station / leader).
REQUEST_PHASES = ("client_send", "batch", "reply")

#: Phases recorded per consensus id on the designated pipeline replica.
CID_PHASES = ("propose", "write", "accept", "execute", "body_write",
              "persist")

_PHASE_ORDER = {phase: index for index, phase in enumerate(PHASES)}


class PipelineTracer:
    """Collects phase marks and assembles them into spans.

    ``sample_every=k`` traces one request in ``k`` (deterministically, from
    the request key), bounding memory on long runs; consensus-level marks
    are always recorded once per cid, which is cheap.
    """

    def __init__(self, sample_every: int = 1) -> None:
        self.sample_every = max(1, sample_every)
        self._request_marks: dict[Hashable, dict[str, float]] = {}
        self._cid_marks: dict[int, dict[str, float]] = {}
        self._bindings: dict[Hashable, int] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def sampled(self, key: tuple[int, int]) -> bool:
        """Deterministic sampling decision for a request key."""
        if self.sample_every == 1:
            return True
        client_id, req_id = key
        return (client_id * 2654435761 + req_id) % self.sample_every == 0

    def mark_request(self, key: Hashable, phase: str, now: float) -> None:
        """Record a request-level phase timestamp (first mark wins)."""
        marks = self._request_marks.setdefault(key, {})
        if phase not in marks:
            marks[phase] = now

    def mark_cid(self, cid: int, phase: str, now: float) -> None:
        """Record a consensus-level phase timestamp (first mark wins)."""
        marks = self._cid_marks.setdefault(cid, {})
        if phase not in marks:
            marks[phase] = now

    def bind(self, key: Hashable, cid: int) -> None:
        """Link a traced request to the consensus instance ordering it."""
        if key not in self._bindings:
            self._bindings[key] = cid

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------
    def span(self, key: Hashable) -> list[tuple[str, float]]:
        """The (phase, time) chain of one traced request.

        Chronological, with pipeline position breaking ties — systems that
        overlap phases (Dura-SMaRt syncs the log *before* execution) still
        yield non-negative per-phase durations attributed to the phase that
        actually finished the wait.
        """
        marks = dict(self._request_marks.get(key, {}))
        cid = self._bindings.get(key)
        if cid is not None:
            for phase, when in self._cid_marks.get(cid, {}).items():
                marks.setdefault(phase, when)
        return sorted(marks.items(),
                      key=lambda item: (item[1], _PHASE_ORDER[item[0]]))

    def spans(self) -> dict[Hashable, list[tuple[str, float]]]:
        """Spans of every traced request."""
        return {key: self.span(key) for key in self._request_marks}

    def cid_marks(self) -> dict[int, dict[str, float]]:
        """Consensus-level phase marks per cid (copies; for exporters)."""
        return {cid: dict(marks) for cid, marks in self._cid_marks.items()}

    def complete_spans(
        self, required: tuple[str, ...] = PHASES
    ) -> dict[Hashable, list[tuple[str, float]]]:
        """Spans that recorded every phase in ``required``."""
        out = {}
        for key, span in self.spans().items():
            present = {phase for phase, _ in span}
            if all(phase in present for phase in required):
                out[key] = span
        return out

    def phase_durations(self) -> dict[str, list[float]]:
        """Per-phase latency samples: time since the previous recorded phase.

        The first phase of a span (normally ``client_send``) anchors the
        span and contributes no duration of its own.
        """
        durations: dict[str, list[float]] = {}
        for span in self.spans().values():
            for (_, prev_t), (phase, t) in zip(span, span[1:]):
                durations.setdefault(phase, []).append(max(0.0, t - prev_t))
        return durations

    def breakdown(self) -> dict[str, dict[str, float]]:
        """JSON-ready per-phase latency summary, in pipeline order."""
        durations = self.phase_durations()
        out: dict[str, dict[str, float]] = {}
        for phase in PHASES:
            samples = durations.get(phase)
            if not samples:
                continue
            ordered = sorted(samples)
            out[phase] = {
                "count": len(ordered),
                "mean_s": sum(ordered) / len(ordered),
                "p50_s": ordered[len(ordered) // 2],
                "p95_s": ordered[min(len(ordered) - 1,
                                     int(0.95 * len(ordered)))],
                "p99_s": ordered[min(len(ordered) - 1,
                                     int(0.99 * len(ordered)))],
                "max_s": ordered[-1],
            }
        return out

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def traced_requests(self) -> int:
        return len(self._request_marks)

    @property
    def traced_cids(self) -> int:
        return len(self._cid_marks)

    def to_json(self) -> dict[str, Any]:
        return {
            "sample_every": self.sample_every,
            "traced_requests": self.traced_requests,
            "traced_cids": self.traced_cids,
            "phases": self.breakdown(),
        }
