"""Regression comparison of bench reports with tolerance bands.

``python -m repro.bench <experiment> --check-against baseline.json`` turns
the Table I / Table II benchmarks into a regression gate: the current run's
bench report is diffed against a stored baseline, run by run (matched on
label), and any throughput or latency drift beyond the tolerance band is a
:class:`Deviation` — the CLI exits non-zero if any exist.

The simulator is deterministic per seed, so a same-code self-diff matches
exactly; the bands exist to absorb *intentional* small model changes while
still catching regressions.  Option mismatches (different client count,
duration or seed) are reported as deviations too — comparing differently
configured runs is itself a regression-gate failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["DEFAULT_THROUGHPUT_TOLERANCE", "DEFAULT_LATENCY_TOLERANCE",
           "DEFAULT_WALLCLOCK_BUDGET", "DEFAULT_EVENTS_TOLERANCE",
           "Deviation", "ComparisonResult", "compare_reports",
           "compare_wallclock"]

#: Allowed relative drift before a metric counts as a regression.
DEFAULT_THROUGHPUT_TOLERANCE = 0.15
DEFAULT_LATENCY_TOLERANCE = 0.25

#: Wall-clock regression budget: the current run may be up to this factor
#: slower than the committed baseline before the check fails.  Generous on
#: purpose — CI machines differ wildly in speed and load; the budget exists
#: to catch order-of-magnitude regressions (an accidentally quadratic heap,
#: a disabled cache), not percent-level drift.
DEFAULT_WALLCLOCK_BUDGET = 3.0
#: Simulated-event counts are deterministic per seed, so drift beyond this
#: band means the *model* changed, not the machine.
DEFAULT_EVENTS_TOLERANCE = 0.10


@dataclass
class Deviation:
    """One out-of-band difference between baseline and current report."""

    label: str
    metric: str
    baseline: Any
    current: Any
    tolerance: float | None = None

    def to_json(self) -> dict[str, Any]:
        return {"label": self.label, "metric": self.metric,
                "baseline": self.baseline, "current": self.current,
                "tolerance": self.tolerance}

    def __str__(self) -> str:
        if (self.tolerance is not None
                and isinstance(self.baseline, (int, float))
                and isinstance(self.current, (int, float)) and self.baseline):
            drift = (self.current - self.baseline) / self.baseline
            return (f"{self.label}: {self.metric} {self.current:.4g} vs "
                    f"baseline {self.baseline:.4g} "
                    f"({drift:+.1%}, tolerance ±{self.tolerance:.0%})")
        return (f"{self.label}: {self.metric} {self.current!r} vs "
                f"baseline {self.baseline!r}")


@dataclass
class ComparisonResult:
    """Outcome of one baseline/current report diff."""

    matched_runs: int = 0
    deviations: list[Deviation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.deviations

    def to_json(self) -> dict[str, Any]:
        return {"matched_runs": self.matched_runs, "ok": self.ok,
                "deviations": [d.to_json() for d in self.deviations]}

    def format(self) -> str:
        if self.ok:
            return (f"check-against: OK "
                    f"({self.matched_runs} run(s) within tolerance)")
        lines = [f"check-against: {len(self.deviations)} deviation(s) "
                 f"across {self.matched_runs} matched run(s)"]
        lines += [f"  - {d}" for d in self.deviations]
        return "\n".join(lines)


def _within(baseline: float, current: float, tolerance: float) -> bool:
    if baseline == 0:
        return current == 0
    return abs(current - baseline) <= tolerance * abs(baseline)


def compare_reports(
    baseline: dict[str, Any],
    current: dict[str, Any],
    throughput_tolerance: float = DEFAULT_THROUGHPUT_TOLERANCE,
    latency_tolerance: float = DEFAULT_LATENCY_TOLERANCE,
) -> ComparisonResult:
    """Diff two bench reports (schema ``repro.obs/bench-report/v1``)."""
    result = ComparisonResult()

    if baseline.get("experiment") != current.get("experiment"):
        result.deviations.append(Deviation(
            label="<report>", metric="experiment",
            baseline=baseline.get("experiment"),
            current=current.get("experiment")))
    base_options = baseline.get("options", {})
    cur_options = current.get("options", {})
    for key in sorted(set(base_options) | set(cur_options)):
        if base_options.get(key) != cur_options.get(key):
            result.deviations.append(Deviation(
                label="<report>", metric=f"options.{key}",
                baseline=base_options.get(key),
                current=cur_options.get(key)))

    base_runs = {run["label"]: run for run in baseline.get("runs", [])}
    cur_runs = {run["label"]: run for run in current.get("runs", [])}
    for label in sorted(set(base_runs) | set(cur_runs)):
        if label not in cur_runs:
            result.deviations.append(Deviation(
                label=label, metric="presence", baseline="present",
                current="missing"))
            continue
        if label not in base_runs:
            result.deviations.append(Deviation(
                label=label, metric="presence", baseline="missing",
                current="present"))
            continue
        result.matched_runs += 1
        base_summary = base_runs[label]["summary"]
        cur_summary = cur_runs[label]["summary"]
        checks = (
            ("throughput_tx_s", throughput_tolerance),
            ("latency_mean_s", latency_tolerance),
            ("latency_p95_s", latency_tolerance),
        )
        for metric, tolerance in checks:
            base_value = base_summary.get(metric)
            cur_value = cur_summary.get(metric)
            if base_value is None or cur_value is None:
                continue
            if not _within(base_value, cur_value, tolerance):
                result.deviations.append(Deviation(
                    label=label, metric=metric, baseline=base_value,
                    current=cur_value, tolerance=tolerance))
    return result


def compare_wallclock(
    baseline: dict[str, Any],
    current: dict[str, Any],
    budget: float = DEFAULT_WALLCLOCK_BUDGET,
    events_tolerance: float = DEFAULT_EVENTS_TOLERANCE,
) -> ComparisonResult:
    """Diff two wall-clock reports (schema ``repro.obs/wallclock/v1``).

    Wall time is checked *one-sided*: a row only deviates when its current
    ``wall_s`` exceeds ``budget`` × the baseline — getting faster never
    fails.  Simulated-event counts are checked two-sided with a tight band:
    they are deterministic per seed, so drift means the model changed and
    the committed baseline is stale.
    """
    result = ComparisonResult()

    for key in ("schema", "mode", "seed", "clients", "duration"):
        if baseline.get(key) != current.get(key):
            result.deviations.append(Deviation(
                label="<report>", metric=key,
                baseline=baseline.get(key), current=current.get(key)))

    base_rows = {row["label"]: row for row in baseline.get("rows", [])}
    cur_rows = {row["label"]: row for row in current.get("rows", [])}
    for label in sorted(set(base_rows) | set(cur_rows)):
        if label not in cur_rows:
            result.deviations.append(Deviation(
                label=label, metric="presence", baseline="present",
                current="missing"))
            continue
        if label not in base_rows:
            result.deviations.append(Deviation(
                label=label, metric="presence", baseline="missing",
                current="present"))
            continue
        result.matched_runs += 1
        base_wall = base_rows[label].get("wall_s")
        cur_wall = cur_rows[label].get("wall_s")
        if (base_wall is not None and cur_wall is not None
                and cur_wall > base_wall * budget):
            result.deviations.append(Deviation(
                label=label, metric="wall_s", baseline=base_wall,
                current=cur_wall, tolerance=budget - 1.0))
        base_events = base_rows[label].get("events")
        cur_events = cur_rows[label].get("events")
        if (base_events is not None and cur_events is not None
                and not _within(base_events, cur_events, events_tolerance)):
            result.deviations.append(Deviation(
                label=label, metric="events", baseline=base_events,
                current=cur_events, tolerance=events_tolerance))
    return result
