"""Online liveness auditor for the protocol event stream.

The safety auditor (:mod:`repro.obs.audit`) checks that nothing *bad*
happens; this module checks that something *good* keeps happening.  The
specification follows Bravo, Chockler & Gotsman ("Liveness and Latency of
Byzantine SMR"): after the global stabilization time (GST), every submitted
request must commit — and reply — within a bounded amount of time.  The
auditor subscribes to the :class:`~repro.obs.events.EventLog` and tracks
every request's lifecycle from ``request-submitted`` (client station)
through ``decide``/``execute`` (replicas) to ``request-replied`` (reply
quorum met), plus the regency timeline from ``leader-change`` events.

Invariants
----------
``bounded-latency``
    Every request submitted at time ``s`` is replied by
    ``max(s, gst) + bound``.  A reply after the deadline violates it
    immediately; a request still outstanding when the run's horizon passes
    its deadline violates it at :meth:`finalize`.
``no-wedge``
    The system never performs ``wedge_k`` consecutive regency changes with
    zero decisions in between — the signature of a synchronizer livelock
    (e.g. a fixed timeout smaller than the actual message delay, where each
    SYNC is overtaken by the next escalation).

Violations reuse :class:`~repro.obs.audit.Violation` and
:class:`~repro.obs.audit.AuditError`, so the bench CLI's exit-code
convention (2 on violation) applies unchanged.  Only the first
``max_flagged`` late requests produce ``Violation`` records (a wedged run
would otherwise drown the report); the full count is always tallied.

Beyond pass/fail, the auditor aggregates the run's liveness story for the
JSON report (:meth:`summary`): the regency timeline (when each regency was
installed, by which leader, under which timeout, and how many decisions it
made) and per-regency latency attribution (each reply attributed to the
regency in charge when it completed).
"""

from __future__ import annotations

from typing import Any

from repro.obs.audit import AuditError, Violation
from repro.obs.events import EventLog, ProtocolEvent

__all__ = ["LIVENESS_INVARIANTS", "LivenessAuditor", "audit_liveness_log"]

#: Names of the invariants the liveness auditor enforces.
LIVENESS_INVARIANTS = ("bounded-latency", "no-wedge")


class LivenessAuditor:
    """Tracks request lifecycles and regency churn against a liveness spec.

    Parameters
    ----------
    bound:
        Post-GST latency bound in simulated seconds: every request
        submitted at ``s`` must be replied by ``max(s, gst) + bound``.
    gst:
        Global stabilization time.  Requests submitted before it get their
        deadline measured from the GST (pre-GST asynchrony is excused, as
        in the partial-synchrony model).
    wedge_k:
        Number of consecutive zero-decision regency changes that count as
        a wedge.
    strict:
        Raise :class:`AuditError` at the first violation instead of
        collecting them.
    max_flagged:
        Cap on ``bounded-latency`` Violation records kept (the total count
        is tallied regardless).
    """

    def __init__(self, bound: float = 1.0, gst: float = 0.0,
                 wedge_k: int = 4, strict: bool = False,
                 max_flagged: int = 10):
        self.bound = float(bound)
        self.gst = float(gst)
        self.wedge_k = int(wedge_k)
        self.strict = strict
        self.max_flagged = max_flagged
        self.violations: list[Violation] = []
        self.events_checked = 0
        self.finalized = False
        # Request lifecycle: key -> submit time / (submit, reply) times.
        self._outstanding: dict[tuple[int, int], float] = {}
        self._submitted = 0
        self._replied = 0
        self._late_replies = 0   # total past-deadline replies (capped flags)
        self._late_outstanding = 0
        self._max_latency = 0.0
        # Regency timeline: one entry per installed regency, cluster-wide
        # (the first replica to install it creates the entry).
        self._timeline: list[dict[str, Any]] = [
            {"regency": 0, "installed_at": 0.0, "leader": 0,
             "timeout": None, "decisions": 0}]
        self._seen_regencies = {0}
        # Wedge detection: unique decided cids, and consecutive regency
        # changes without a fresh decision in between.
        self._decided_cids: set[int] = set()
        self._changes_without_progress = 0
        self._wedge_flagged = False
        # Per-regency latency attribution (replies bucketed by the regency
        # in charge when they completed).
        self._latency_by_regency: dict[int, list[float]] = {}
        self._watchdog_fires = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, obs: Any) -> "LivenessAuditor":
        """Subscribe to a run's event stream (forces recording on)."""
        obs.record_events = True
        obs.events.subscribe(self.on_event)
        obs.liveness = self
        return self

    @property
    def ok(self) -> bool:
        return not self.violations

    def raise_if_violated(self) -> None:
        if self.violations:
            raise AuditError(self.violations)

    # ------------------------------------------------------------------
    # Event dispatch
    # ------------------------------------------------------------------
    def on_event(self, event: ProtocolEvent) -> None:
        self.events_checked += 1
        kind = event.kind
        if kind == "request-submitted":
            self._on_submit(event)
        elif kind == "request-replied":
            self._on_reply(event)
        elif kind == "decide":
            self._on_decide(event)
        elif kind == "leader-change":
            self._on_leader_change(event)
        elif kind == "watchdog-fired":
            self._watchdog_fires += 1

    def _flag(self, invariant: str, message: str, event: ProtocolEvent,
              **context: Any) -> None:
        violation = Violation(invariant=invariant, message=message,
                              event=event, context=context)
        self.violations.append(violation)
        if self.strict:
            raise AuditError([violation])

    def _deadline(self, submitted: float) -> float:
        return max(submitted, self.gst) + self.bound

    # ------------------------------------------------------------------
    # Request lifecycle
    # ------------------------------------------------------------------
    def _on_submit(self, event: ProtocolEvent) -> None:
        client = event.fields.get("client")
        req = event.fields.get("req")
        if client is None or req is None:
            return
        self._submitted += 1
        self._outstanding[(client, req)] = event.time

    def _on_reply(self, event: ProtocolEvent) -> None:
        client = event.fields.get("client")
        req = event.fields.get("req")
        submitted = self._outstanding.pop((client, req), None)
        if submitted is None:
            return
        self._replied += 1
        latency = event.time - submitted
        if latency > self._max_latency:
            self._max_latency = latency
        regency = self._timeline[-1]["regency"]
        self._latency_by_regency.setdefault(regency, []).append(latency)
        deadline = self._deadline(submitted)
        if event.time > deadline:
            self._late_replies += 1
            if len(self.violations) < self.max_flagged:
                self._flag(
                    "bounded-latency",
                    f"request ({client}, {req}) submitted at "
                    f"t={submitted:.3f} replied at t={event.time:.3f} — "
                    f"{event.time - deadline:.3f}s past its deadline "
                    f"(max(submit, gst={self.gst:.3f}) + "
                    f"bound={self.bound:.3f})",
                    event, client=client, req=req, submitted=submitted,
                    deadline=deadline, latency=latency)

    # ------------------------------------------------------------------
    # Regency churn / wedge detection
    # ------------------------------------------------------------------
    def _on_decide(self, event: ProtocolEvent) -> None:
        cid = event.fields.get("cid")
        if cid is None or cid in self._decided_cids:
            return
        self._decided_cids.add(cid)
        self._changes_without_progress = 0
        self._wedge_flagged = False
        self._timeline[-1]["decisions"] += 1

    def _on_leader_change(self, event: ProtocolEvent) -> None:
        regency = event.fields.get("regency")
        if regency is None or regency in self._seen_regencies:
            return  # later replicas installing the same regency
        self._seen_regencies.add(regency)
        self._timeline.append({
            "regency": regency,
            "installed_at": event.time,
            "leader": event.fields.get("leader"),
            "timeout": event.fields.get("timeout"),
            "decisions": 0,
        })
        self._changes_without_progress += 1
        if (self._changes_without_progress >= self.wedge_k
                and not self._wedge_flagged):
            self._wedge_flagged = True
            first = self._timeline[-self._changes_without_progress]
            self._flag(
                "no-wedge",
                f"{self._changes_without_progress} consecutive regency "
                f"changes (r{first['regency']}..r{regency}) with zero "
                f"decisions in between (wedge_k={self.wedge_k}) — the "
                f"synchronizer is livelocked",
                event, first_regency=first["regency"],
                last_regency=regency,
                changes=self._changes_without_progress)

    # ------------------------------------------------------------------
    # End of run
    # ------------------------------------------------------------------
    def finalize(self, horizon: float) -> "LivenessAuditor":
        """Judge still-outstanding requests against the run's horizon.

        A request whose deadline lies beyond the horizon is not a
        violation — the run simply ended too early to tell.
        """
        self.finalized = True
        for key, submitted in sorted(self._outstanding.items(),
                                     key=lambda item: (item[1], item[0])):
            deadline = self._deadline(submitted)
            if horizon <= deadline:
                continue
            self._late_outstanding += 1
            if len(self.violations) < self.max_flagged:
                event = ProtocolEvent(
                    time=horizon, seq=-1, kind="request-submitted",
                    node=-1, fields={"client": key[0], "req": key[1]})
                self._flag(
                    "bounded-latency",
                    f"request {key} submitted at t={submitted:.3f} still "
                    f"outstanding at the horizon t={horizon:.3f} "
                    f"(deadline was t={deadline:.3f})",
                    event, client=key[0], req=key[1], submitted=submitted,
                    deadline=deadline)
        return self

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def summary(self) -> dict[str, Any]:
        latency_by_regency = {}
        for regency in sorted(self._latency_by_regency):
            samples = self._latency_by_regency[regency]
            latency_by_regency[str(regency)] = {
                "count": len(samples),
                "mean_s": sum(samples) / len(samples),
                "max_s": max(samples),
            }
        return {
            "invariants": list(LIVENESS_INVARIANTS),
            "bound_s": self.bound,
            "gst_s": self.gst,
            "wedge_k": self.wedge_k,
            "events_checked": self.events_checked,
            "submitted": self._submitted,
            "replied": self._replied,
            "outstanding": len(self._outstanding),
            "max_latency_s": self._max_latency,
            "late_replies": self._late_replies,
            "late_outstanding": self._late_outstanding,
            "watchdog_fires": self._watchdog_fires,
            "regency_changes": len(self._timeline) - 1,
            "regency_timeline": [dict(entry) for entry in self._timeline],
            "latency_by_regency": latency_by_regency,
            "violations": [v.to_json() for v in self.violations],
        }


def audit_liveness_log(log: EventLog, horizon: float, bound: float = 1.0,
                       gst: float = 0.0, wedge_k: int = 4) -> LivenessAuditor:
    """Run the liveness auditor over an already-recorded event log."""
    auditor = LivenessAuditor(bound=bound, gst=gst, wedge_k=wedge_k)
    for event in sorted(log, key=lambda e: e.sort_key):
        auditor.on_event(event)
    return auditor.finalize(horizon)
