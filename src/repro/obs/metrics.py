"""Per-node metrics: counters, gauges and histograms behind one registry.

The registry replaces the grab-bag of ad-hoc statistics attributes that used
to be scraped off live objects at the end of a run (``blocks_built``,
``certs_completed``, ``group_sizes``, ...).  Components record into typed
instruments; :meth:`MetricsRegistry.snapshot` renders everything as plain
JSON-serializable data for the run report.

Instruments are identified by a name plus a frozen label set (Prometheus
style), so the same metric can exist per node, per resource or per message
kind without string mangling::

    registry.counter("chain.blocks_built", node=0).inc()
    registry.histogram("dura.group_commit_size").observe(7)

All instruments are cheap plain-Python objects; recording into them costs an
attribute update, so they are safe to keep on hot paths even in runs where
the surrounding observability layer is disabled.
"""

from __future__ import annotations

from typing import Any, Iterator

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

LabelKey = tuple[str, tuple[tuple[str, Any], ...]]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A value that can go up and down (queue depths, busy fractions)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """A distribution of observed values.

    Samples are retained (simulation scale keeps them small); the summary
    renders count / mean / percentiles for the report.
    """

    __slots__ = ("samples", "total")

    def __init__(self) -> None:
        self.samples: list[float] = []
        self.total = 0.0

    def observe(self, value: float, count: int = 1) -> None:
        if count == 1:
            self.samples.append(value)
        else:
            self.samples.extend([value] * count)
        self.total += value * count

    @property
    def count(self) -> int:
        return len(self.samples)

    def mean(self) -> float:
        return self.total / len(self.samples) if self.samples else 0.0

    def percentile(self, p: float) -> float:
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        index = min(len(ordered) - 1, int(p / 100.0 * len(ordered)))
        return ordered[index]

    def summary(self) -> dict[str, float]:
        if not self.samples:
            return {"count": 0, "mean": 0.0, "min": 0.0, "p50": 0.0,
                    "p95": 0.0, "p99": 0.0, "max": 0.0}
        return {
            "count": len(self.samples),
            "mean": self.mean(),
            "min": min(self.samples),
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "max": max(self.samples),
        }


class MetricsRegistry:
    """Creates and memoizes instruments by (name, labels)."""

    def __init__(self) -> None:
        self._counters: dict[LabelKey, Counter] = {}
        self._gauges: dict[LabelKey, Gauge] = {}
        self._histograms: dict[LabelKey, Histogram] = {}

    @staticmethod
    def _key(name: str, labels: dict[str, Any]) -> LabelKey:
        return (name, tuple(sorted(labels.items())))

    def counter(self, name: str, **labels: Any) -> Counter:
        key = self._key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = self._key(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(self, name: str, **labels: Any) -> Histogram:
        key = self._key(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram()
        return instrument

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    @staticmethod
    def _label_tag(labels: tuple[tuple[str, Any], ...]) -> str:
        if not labels:
            return ""
        return "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"

    def _items(self) -> Iterator[tuple[str, Any]]:
        for (name, labels), counter in sorted(self._counters.items()):
            yield name + self._label_tag(labels), counter.value
        for (name, labels), gauge in sorted(self._gauges.items()):
            yield name + self._label_tag(labels), gauge.value
        for (name, labels), hist in sorted(self._histograms.items()):
            yield name + self._label_tag(labels), hist.summary()

    def snapshot(self) -> dict[str, Any]:
        """All instruments as one flat JSON-serializable mapping."""
        return dict(self._items())

    def value(self, name: str, **labels: Any) -> Any:
        """Read a single instrument's current value (0 if never created)."""
        key = self._key(name, labels)
        if key in self._counters:
            return self._counters[key].value
        if key in self._gauges:
            return self._gauges[key].value
        if key in self._histograms:
            return self._histograms[key].summary()
        return 0

    def total(self, name: str) -> float:
        """Sum of a counter/gauge across all label sets (e.g. all nodes)."""
        out = 0.0
        for (metric, _labels), counter in self._counters.items():
            if metric == name:
                out += counter.value
        for (metric, _labels), gauge in self._gauges.items():
            if metric == name:
                out += gauge.value
        return out
