"""Typed, bounded protocol event stream.

The ad-hoc :class:`~repro.sim.trace.TraceLog` records free-form debugging
lines; this module records *protocol* events — decisions, view changes,
persist certificates, crashes, recoveries — as typed records that tooling
can consume: the online safety auditor (:mod:`repro.obs.audit`) subscribes
to the stream, the trace exporter (:mod:`repro.obs.traceview`) renders it
on a per-node timeline, and ``--events`` dumps it as JSONL.

Recording follows the PR 1 guard discipline: emitters check a single
``if obs.record_events:`` attribute before touching the log (and before
computing any event field, e.g. a block digest), so disabled runs pay
nothing.  The log is bounded — once ``capacity`` events are held the oldest
are dropped and counted — and ordering is fully deterministic: every event
carries a ``(time, seq)`` key where ``seq`` is the per-log emission index,
so exports are byte-identical across runs with the same seed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Callable, Iterator

__all__ = ["EVENT_KINDS", "CLIENT_KINDS", "ProtocolEvent", "EventLog"]

#: Every event kind the protocol layers may emit.  ``emit`` rejects
#: anything else so a typo cannot silently produce an unauditable stream.
EVENT_KINDS = frozenset({
    "consensus-phase",      # consensus/instance.py: PROPOSED/ACCEPTED/DECIDED
    "decide",               # smr/replica.py: decision delivered in cid order
    "view-change",          # smr/replica.py: a new view was installed
    "leader-change",        # smr/leaderchange.py: regency installed
    "key-rotation",         # smr/replica.py: older per-view keys erased
    "crash",                # smr/replica.py: volatile state lost
    "recovering",           # smr/replica.py: local stable state reloaded
    "recover",              # smr/replica.py: state transfer done, active again
    "state-transfer",       # smr/statetransfer.py: transfer start / done
    "block-append",         # core/blockchain_layer.py: block on the local chain
    "persist-vote",         # core/blockchain_layer.py: PERSIST share broadcast
    "persist-certificate",  # core/blockchain_layer.py: certificate quorum met
    "persist-timeout",      # core/blockchain_layer.py: PERSIST gave up
    "checkpoint",           # core/blockchain_layer.py: checkpoint block
    "suffix-lost",          # core/blockchain_layer.py: weak-variant truncation
    "reconfig",             # core/reconfig.py + smr/viewmanager.py
    "stale-reject",         # core/blockchain_layer.py: retired-key vote refused
    "fault-injected",       # faults/inject.py: a FaultPlan action fired
    "behavior-activated",   # faults/behaviors.py: a Byzantine behavior engaged
    "execute",              # smr/replica.py: a decision's batch executed
    "request-submitted",    # clients/client.py: invocation left the station
    "request-replied",      # clients/client.py: reply quorum met, client freed
    "watchdog-armed",       # smr/leaderchange.py: progress watchdog scheduled
    "watchdog-fired",       # smr/leaderchange.py: starvation detected
    "sync-phase",           # smr/leaderchange.py: STOP/STOPDATA/SYNC steps
    "cert-redeemed",        # apps/smartcoin.py: cross-shard transfer minted
    "cert-rejected",        # apps/smartcoin.py: transfer certificate refused
    "pipeline-stalled",     # smr/replica.py: in-flight window made no progress
    "log-corruption-detected",  # delivery recover_local: checksum/linkage cut
    "snapshot-rejected",    # delivery recover_local: snapshot digest mismatch
    "recovery-fallback",    # delivery recover_local: truncated, needs transfer
    "recovery-verified",    # delivery recover_local: replayed prefix validated
    "disk-degraded",        # storage/disk.py: gray sync exceeded its budget
})

#: Event kinds emitted by client stations rather than replicas.  Their
#: ``node`` is a *station* id (9000+), so membership-tracking consumers
#: (the safety auditor's full-crash detection) must skip them.
CLIENT_KINDS = frozenset({"request-submitted", "request-replied"})


def _json_safe(value: Any) -> Any:
    """Render an event field as deterministic JSON-serializable data."""
    if isinstance(value, bytes):
        return value.hex()
    if isinstance(value, (tuple, set, frozenset)):
        return sorted(_json_safe(v) for v in value) \
            if isinstance(value, (set, frozenset)) else [_json_safe(v) for v in value]
    if isinstance(value, list):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return value


@dataclass(frozen=True)
class ProtocolEvent:
    """One protocol event: what happened, where, and when.

    ``seq`` is the per-log emission index; ``(time, seq)`` is a total order
    that is stable across runs with the same seed (the simulator itself
    breaks timestamp ties by insertion order, so emission order is
    deterministic).
    """

    time: float
    seq: int
    kind: str
    node: int
    fields: dict[str, Any]

    @property
    def sort_key(self) -> tuple[float, int]:
        return (self.time, self.seq)

    def to_json(self) -> dict[str, Any]:
        return {
            "time": self.time,
            "seq": self.seq,
            "kind": self.kind,
            "node": self.node,
            **{k: _json_safe(v) for k, v in self.fields.items()},
        }


class EventLog:
    """Bounded, subscribable store of :class:`ProtocolEvent` records.

    Subscribers are called synchronously from :meth:`emit` (the auditor
    relies on seeing events in emission order); keep them cheap.
    """

    def __init__(self, capacity: int = 100_000) -> None:
        self.capacity = max(1, capacity)
        self.dropped = 0
        self._events: list[ProtocolEvent] = []
        self._seq = 0
        self._subscribers: list[Callable[[ProtocolEvent], None]] = []

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def emit(self, kind: str, node: int, time: float,
             **fields: Any) -> ProtocolEvent:
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown protocol event kind {kind!r}")
        event = ProtocolEvent(time=time, seq=self._seq, kind=kind,
                              node=node, fields=fields)
        self._seq += 1
        self._events.append(event)
        if len(self._events) > self.capacity:
            overflow = len(self._events) - self.capacity
            del self._events[:overflow]
            self.dropped += overflow
        for subscriber in self._subscribers:
            subscriber(event)
        return event

    def subscribe(self, callback: Callable[[ProtocolEvent], None]) -> None:
        self._subscribers.append(callback)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def events(self) -> list[ProtocolEvent]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[ProtocolEvent]:
        return iter(self._events)

    def of_kind(self, kind: str) -> list[ProtocolEvent]:
        return [event for event in self._events if event.kind == kind]

    def counts(self) -> dict[str, int]:
        """Events retained per kind (sorted by kind for stable JSON)."""
        out: dict[str, int] = {}
        for event in self._events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return dict(sorted(out.items()))

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """The retained events as JSONL, byte-identical per seed."""
        lines = [json.dumps(event.to_json(), sort_keys=True)
                 for event in sorted(self._events, key=lambda e: e.sort_key)]
        return "\n".join(lines) + ("\n" if lines else "")

    def write_jsonl(self, path: str) -> int:
        """Write the stream to ``path``; returns the number of events."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_jsonl())
        return len(self._events)
