"""Observability: metrics, pipeline spans and resource accounting.

One :class:`Observability` object rides on a :class:`~repro.sim.engine
.Simulator` (``sim.obs``) and is visible to every component built on that
simulator — replicas, delivery layers, networks, resources, client
stations.  It is **disabled by default** and designed to be zero-cost in
that state: hot paths guard every record with a single ``if obs.enabled``
(or ``obs.trace_pipeline``) check, and components that register themselves
do so once at construction time.

Three concerns live here:

- :mod:`repro.obs.metrics` — a per-run registry of counters, gauges and
  histograms (the structured replacement for scraping ad-hoc statistics
  attributes off live objects);
- :mod:`repro.obs.spans` — span-based tracing of the request pipeline
  (client send → batch → PROPOSE → WRITE → ACCEPT → execute → body write →
  PERSIST → reply), yielding a per-phase latency breakdown;
- :mod:`repro.obs.report` — the machine-readable run report combining the
  above with per-resource busy fractions and network statistics.

Four protocol-level concerns ride the same hook (``repro.obs`` v2):

- :mod:`repro.obs.events` — the typed, bounded protocol event stream
  (decide, view-change, persist-certificate, crash/recovery, ...);
- :mod:`repro.obs.audit` — the online safety auditor subscribed to that
  stream (agreement, no-fork, view monotonicity, 0-Persistence, the
  forgetting invariant);
- :mod:`repro.obs.liveness` — the online liveness auditor (bounded
  post-GST request latency, wedge detection over the regency timeline);
- :mod:`repro.obs.traceview` — Chrome trace-event export (Perfetto);
- :mod:`repro.obs.compare` — bench-report regression diffing
  (``--check-against``).
"""

from __future__ import annotations

from typing import Any

from repro.obs.events import EVENT_KINDS, EventLog, ProtocolEvent
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.report import build_run_report, validate_report
from repro.obs.spans import CID_PHASES, PHASES, REQUEST_PHASES, PipelineTracer

__all__ = [
    "Observability",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "PipelineTracer",
    "PHASES",
    "REQUEST_PHASES",
    "CID_PHASES",
    "EVENT_KINDS",
    "EventLog",
    "ProtocolEvent",
    "build_run_report",
    "validate_report",
]


class Observability:
    """Per-run observability state shared through ``sim.obs``.

    Parameters
    ----------
    enabled:
        Master switch for metrics and resource accounting.  ``False`` (the
        default) keeps the simulation on its fast path.
    trace_pipeline:
        Record pipeline spans.  Defaults to ``enabled``; can be switched
        off independently because request-level tracing is the costliest
        part (one record per sampled request per phase).
    pipeline_node:
        The replica whose pipeline view is traced for consensus-level
        phases (the initial leader, id 0, by default — its PROPOSE marks
        anchor the breakdown).
    sample_every:
        Trace one request in this many (deterministic in the request key).
    record_events:
        Record the typed protocol event stream (:mod:`repro.obs.events`).
        Defaults to ``enabled``; protocol layers guard every emission with
        a single ``if obs.record_events:`` check, so disabled runs pay
        nothing.
    event_capacity:
        Bound on retained protocol events (oldest dropped and counted).
    """

    def __init__(
        self,
        enabled: bool = False,
        trace_pipeline: bool | None = None,
        pipeline_node: int = 0,
        sample_every: int = 1,
        record_events: bool | None = None,
        event_capacity: int = 100_000,
    ) -> None:
        self.enabled = enabled
        self.trace_pipeline = enabled if trace_pipeline is None else trace_pipeline
        self.pipeline_node = pipeline_node
        self.metrics = MetricsRegistry()
        self.tracer = PipelineTracer(sample_every=sample_every)
        #: Guard attribute protocol layers check before emitting an event.
        self.record_events = enabled if record_events is None else record_events
        #: The typed protocol event stream (repro.obs.events).
        self.events = EventLog(capacity=event_capacity)
        #: The attached SafetyAuditor, if any (set by SafetyAuditor.attach).
        self.auditor: Any = None
        #: The attached LivenessAuditor, if any (set by
        #: LivenessAuditor.attach).
        self.liveness: Any = None
        #: The attached RecoveryAuditor, if any (set by
        #: RecoveryAuditor.attach).
        self.recovery: Any = None
        #: Every Resource constructed on the owning simulator (self-registered).
        self.resources: list[Any] = []
        #: Every Network constructed on the owning simulator (self-registered).
        self.networks: list[Any] = []

    # ------------------------------------------------------------------
    # Pipeline tracing helpers (guard with ``if obs.trace_pipeline:``)
    # ------------------------------------------------------------------
    def trace_cid(self, node_id: Any, cid: int, phase: str, now: float) -> None:
        """Record a consensus-level phase mark from the designated replica."""
        if node_id == self.pipeline_node:
            self.tracer.mark_cid(cid, phase, now)

    def trace_request(self, key: tuple[int, int], phase: str, now: float) -> bool:
        """Record a request-level mark if the key is sampled; returns whether
        the request is traced (so callers can skip follow-up work)."""
        if not self.tracer.sampled(key):
            return False
        self.tracer.mark_request(key, phase, now)
        return True

    # ------------------------------------------------------------------
    # Resource accounting
    # ------------------------------------------------------------------
    def resource_stats(self, horizon: float) -> list[dict[str, Any]]:
        """Busy fraction and queue statistics of every registered resource."""
        return [resource.stats(horizon) for resource in self.resources]

    def network_stats(self) -> list[dict[str, Any]]:
        return [network.stats() for network in self.networks]
