"""SmartChain reproduction: from Byzantine replication to blockchain.

A full Python implementation of the SMARTCHAIN platform (Bessani et al.,
DSN 2020) and every substrate it depends on: a deterministic discrete-event
testbed, a BFT-SMART-style replication library, the blockchain layer with
strong persistence and decentralized reconfiguration, the SMaRtCoin
application, and simulated comparator systems.

Quickstart::

    from repro.sim import Simulator
    from repro.config import SmartChainConfig, SMRConfig
    from repro.core import bootstrap
    from repro.apps.smartcoin import SmartCoin

    sim = Simulator(seed=1)
    config = SmartChainConfig(smr=SMRConfig(n=4, f=1))
    consortium = bootstrap(sim, (0, 1, 2, 3),
                           lambda: SmartCoin(minters=["alice"]), config)

See ``examples/quickstart.py`` for the full tour.
"""

__version__ = "1.0.0"

__all__ = [
    "apps",
    "baselines",
    "bench",
    "clients",
    "config",
    "consensus",
    "core",
    "crypto",
    "errors",
    "ledger",
    "net",
    "sim",
    "smr",
    "storage",
    "workloads",
]
