"""Exception hierarchy for the SmartChain reproduction.

Every error raised by the library derives from :class:`ReproError`, so
applications embedding the simulator can catch one base class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """The discrete-event engine was used incorrectly (e.g. negative delay)."""


class NetworkError(ReproError):
    """Invalid network operation (unknown endpoint, duplicate registration)."""


class StorageError(ReproError):
    """Invalid stable-storage operation (e.g. reading past the stable frontier)."""


class CryptoError(ReproError):
    """Signature creation/verification failure or use of an erased key."""


class ConsensusError(ReproError):
    """Protocol violation detected inside a consensus instance."""


class ViewError(ReproError):
    """Invalid view or reconfiguration request."""


class LedgerError(ReproError):
    """Malformed block or chain (also used by the third-party verifier)."""


class VerificationError(LedgerError):
    """A block or chain failed third-party verification."""


class ApplicationError(ReproError):
    """A deterministic application rejected a transaction at the API level.

    Note that *invalid transactions* (e.g. double spends) are not errors at
    the replication level: they execute deterministically to a failure
    result that is recorded in the block.  This exception is only for
    misuse of application objects themselves.
    """
