"""Deterministic parallel execution over a modeled core pool.

The paper's Table I shows the execution stage becoming the bottleneck once
signature verification moves off the state-machine thread; DISPEL
("Byzantine SMR with Distributed Pipelining", PAPERS.md) argues the next
factor comes from executing non-conflicting operations concurrently.  This
module models exactly that, without giving up determinism:

1. :func:`plan_batch` builds a dependency schedule over a decided batch
   from the application's :meth:`~repro.smr.service.Application.conflict_keys`
   declarations — each operation lands on the earliest *level* compatible
   with every conflicting predecessor (write/write, write/read and
   read/write conflicts order operations; an op declaring ``None`` is a
   barrier: it waits for everything before it and blocks everything after).
2. :func:`charge_execution` charges the per-transaction work of each level
   onto the replica's ``exec_pool`` (``Resource(servers=exec_cores)``), one
   level after another, then runs the continuation.  Per-batch overheads
   stay on the state-machine thread.

Only the *timing* is parallel.  The batch itself is still executed by
``Application.execute_batch`` in sequence order on one interpreter, so
results, reply payloads, digests and the blockchain layer are byte-identical
for every core count; levels are derived deterministically from batch order.
With ``exec_cores=1`` (or an application that does not override
``conflict_keys``) the delivery layers never call into this module and take
their exact pre-scheduler code path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.config import VerificationMode
from repro.smr.service import Application

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.smr.replica import ModSmartReplica
    from repro.smr.requests import ClientRequest

__all__ = ["ExecutionPlan", "parallel_execution", "plan_batch",
           "per_tx_cost", "charge_execution"]


@dataclass
class ExecutionPlan:
    """Topological schedule of one batch: ``levels[i]`` may run concurrently
    once every level before it completed."""

    levels: list[list["ClientRequest"]]
    #: Operations that declared no footprint and forced a barrier.
    barrier_ops: int

    @property
    def critical_path(self) -> int:
        return len(self.levels)

    @property
    def n_ops(self) -> int:
        return sum(len(level) for level in self.levels)


def parallel_execution(replica: "ModSmartReplica", app: Application) -> bool:
    """True when this replica models parallel execution for ``app`` — an
    execution pool exists (``exec_cores > 1``) and the application declares
    conflicts.  Delivery layers keep their exact serial code path when this
    is False."""
    return (replica.exec_pool is not None
            and type(app).conflict_keys is not Application.conflict_keys)


def plan_batch(app: Application,
               batch: "list[ClientRequest]") -> ExecutionPlan:
    """Assign every operation of ``batch`` (in order) to its earliest
    compatible level.  Deterministic: a pure function of the batch order
    and the application's conflict declarations."""
    last_write: dict = {}   # key -> level of the latest writer
    last_read: dict = {}    # key -> latest level with a reader
    levels: list[list] = []
    barrier_ops = 0
    max_level = -1          # highest level assigned so far
    barrier_floor = 0       # first level allowed after the latest barrier
    for req in batch:
        footprint = app.conflict_keys(req)
        if footprint is None:
            # Barrier: after everything so far, before everything later.
            level = max(max_level + 1, barrier_floor)
            barrier_floor = level + 1
            barrier_ops += 1
        else:
            reads, writes = footprint
            level = barrier_floor
            for key in writes:
                w = last_write.get(key)
                if w is not None and w >= level:
                    level = w + 1
                r = last_read.get(key)
                if r is not None and r >= level:
                    level = r + 1
            for key in reads:
                w = last_write.get(key)
                if w is not None and w >= level:
                    level = w + 1
            for key in writes:
                last_write[key] = level
            for key in reads:
                if last_read.get(key, -1) < level:
                    last_read[key] = level
        while len(levels) <= level:
            levels.append([])
        levels[level].append(req)
        if level > max_level:
            max_level = level
    return ExecutionPlan(levels=levels, barrier_ops=barrier_ops)


def per_tx_cost(replica: "ModSmartReplica", req: "ClientRequest") -> float:
    """The per-transaction share of :meth:`ModSmartReplica.execution_cost`
    — execution, reply marshalling, signed-request overhead and (in the
    SEQUENTIAL mode) the signature check.  This is the independent,
    parallelizable work; per-batch overheads stay on the SM thread."""
    costs = replica.costs
    work = costs.exec_time_per_tx + costs.reply_time_per_tx
    if req.signed:
        work += costs.signed_tx_sm_overhead
        if replica.config.verification is VerificationMode.SEQUENTIAL:
            work += costs.crypto.verify_time
    return work


def charge_execution(replica: "ModSmartReplica", app: Application,
                     batch: "list[ClientRequest]", serial_work: float,
                     fn: Callable[..., None], *args) -> None:
    """Charge the modeled cost of executing ``batch`` on the exec pool,
    then run ``fn(*args)``.

    ``serial_work`` (per-batch overheads, durability logging, ...) is
    charged on the state-machine thread first; each dependency level of
    the plan is then an aggregate pool job (makespan = level work spread
    over the cores), chained in order.  The caller is responsible for
    checking :func:`parallel_execution` and keeping its serial path
    untouched when that is False.
    """
    plan = plan_batch(app, batch)
    pool = replica.exec_pool
    obs = replica.sim.obs
    if obs.enabled:
        metrics = obs.metrics
        metrics.counter("exec.parallel_batches", node=replica.id).inc()
        metrics.histogram("exec.critical_path",
                          node=replica.id).observe(plan.critical_path)
        if plan.barrier_ops:
            metrics.counter("exec.barrier_ops",
                            node=replica.id).inc(plan.barrier_ops)
    levels = plan.levels

    def run_level(index: int) -> None:
        if index >= len(levels):
            fn(*args)
            return
        level = levels[index]
        total = 0.0
        for req in level:
            total += per_tx_cost(replica, req)
        # Aggregate pool job: mean unit x count spreads the level's work
        # evenly over the cores (same modeling as the verification pool).
        pool.submit_bulk(total / len(level), len(level),
                         replica.guard(run_level), index + 1)

    replica.charge_sm(serial_work, run_level, 0)
