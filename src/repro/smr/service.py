"""Interfaces between the ordering core, delivery layers and applications.

The replica core (``repro.smr.replica``) totally orders batches; what happens
to a decided batch is the job of a *delivery layer*:

- :class:`MemoryDelivery` — execute immediately, keep the log in memory
  (∞-Persistence; the PBFT-style state transfer baseline);
- the naive application-level blockchain (``repro.apps``) — Table I;
- the Dura-SMaRt durability layer (``repro.smr.durability``);
- the SMARTCHAIN blockchain layer (``repro.core``) — the paper's contribution.

Applications implement :class:`Application`: deterministic execution over
ordered batches plus snapshot/install for state transfer.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Any

from repro.smr.requests import ClientRequest, Decision

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.smr.replica import ModSmartReplica

__all__ = ["Application", "DeliveryLayer", "MemoryDelivery", "ExecutionResult"]

#: (result payload, result digest) — the digest is what client stations
#: match across replicas to assemble a reply quorum.
ExecutionResult = tuple[Any, bytes]


class Application(abc.ABC):
    """A deterministic replicated service (Section II-B requirements)."""

    @abc.abstractmethod
    def execute(self, request: ClientRequest) -> ExecutionResult:
        """Apply one operation; must be deterministic."""

    @abc.abstractmethod
    def snapshot(self) -> tuple[Any, int]:
        """Return (opaque snapshot, serialized size in bytes)."""

    @abc.abstractmethod
    def install_snapshot(self, snapshot: Any) -> None:
        """Replace the service state with ``snapshot``."""

    def state_size(self) -> int:
        """Current serialized state size estimate (drives snapshot timing)."""
        return self.snapshot()[1]

    def execute_batch(self, batch: list[ClientRequest]) -> dict:
        """Execute a batch in order; returns request key -> ExecutionResult."""
        return {req.key: self.execute(req) for req in batch}

    def conflict_keys(
            self, request: ClientRequest) -> tuple[tuple, tuple] | None:
        """Per-operation ``(reads, writes)`` key sets for the parallel
        execution scheduler (:mod:`repro.smr.scheduler`), or ``None`` when
        the operation's footprint cannot be bounded before execution (the
        scheduler then serializes it as a barrier).

        Two operations conflict when one writes a key the other reads or
        writes; non-conflicting operations may be *timed* as concurrent.
        Execution itself always runs in sequence order on one interpreter,
        so results stay deterministic regardless of core count — the sets
        shape only the modeled makespan.

        The base implementation is a sentinel: applications that do not
        override it are executed strictly serially (the scheduler checks
        for an override, so the declared-barrier and undeclared cases
        behave differently in timing).
        """
        return None


class DeliveryLayer(abc.ABC):
    """Receives decisions in cid order; owns execution, durability, replies."""

    replica: "ModSmartReplica"

    def attach(self, replica: "ModSmartReplica") -> None:
        self.replica = replica

    @property
    def backlog(self) -> int:
        """Decisions delivered but not yet fully processed (flow control)."""
        return 0

    @abc.abstractmethod
    def on_decide(self, decision: Decision) -> None:
        """Handle the next decision (called in strict cid order)."""

    # -- State transfer hooks -------------------------------------------
    @abc.abstractmethod
    def capture_state(self, up_to_cid: int | None = None) -> tuple[Any, int]:
        """(opaque state package, serialized size) for a state transfer.

        Layers that can serve historical state honor ``up_to_cid`` so that
        any two correct replicas serve identical packages for the same
        target; simpler layers may serve their current state."""

    @abc.abstractmethod
    def install_state(self, package: Any) -> None:
        """Install a state package received via state transfer."""

    def package_digest_material(self, package: Any) -> Any:
        """The deterministic part of a state package, used for the f+1 hash
        comparison.  Layers whose packages embed replica-local artifacts
        (certificates, decision proofs — valid quorum subsets differ across
        replicas) must strip them here."""
        return package

    def install_cost(self, package: Any) -> float:
        """SM-thread seconds needed to install ``package`` (deserialization
        plus any replay).  Layers with replayable suffixes override this."""
        return 0.0

    def can_self_verify(self) -> bool:
        """True when a state package from a *single* untrusted peer can be
        validated standalone (strong-variant chains: certificates)."""
        return False

    def verify_package(self, package: Any) -> bool:
        """Validate a self-verifiable package (only called when
        :meth:`can_self_verify` peers offered it)."""
        return False

    def reconcile_local(self, supported_cid: int) -> int:
        """Full-crash reconciliation: the recovery group supports history up
        to ``supported_cid``; layers without self-verifiable evidence must
        drop anything beyond it (the weak variant's lost suffix).  Returns
        the consensus id the replica should resume from."""
        return min(self.replica.last_decided, supported_cid)

    # -- Crash/recovery hooks -------------------------------------------
    def on_crash(self) -> None:
        """Volatile cleanup when the replica crashes."""

    def recover_local(self) -> int:
        """Restore from local stable storage; returns last recovered cid
        (−1 when nothing survives)."""
        return -1


class SequentialDelivery(DeliveryLayer):
    """Base for delivery layers that process one decision at a time.

    Algorithm 1 runs as a sequential handler above the consensus layer: the
    processing of decision N+1 (execution, block close, PERSIST wait)
    starts only after N fully completes, while consensus keeps ordering
    ahead.  Subclasses implement :meth:`process` and call ``done()`` when
    the decision is fully handled.
    """

    def __init__(self) -> None:
        self._queue: list[Decision] = []
        self._busy = False

    def on_decide(self, decision: Decision) -> None:
        self._queue.append(decision)
        self._pump()

    def _pump(self) -> None:
        if self._busy or not self._queue:
            return
        self._busy = True
        decision = self._queue.pop(0)
        self.process(decision, self._done)

    def _done(self) -> None:
        self._busy = False
        self._pump()
        # Backlog drained below the flow-control bound: the leader may
        # propose again.
        self.replica.maybe_propose()

    def process(self, decision: Decision, done) -> None:
        raise NotImplementedError

    def on_crash(self) -> None:
        self._queue.clear()
        self._busy = False

    @property
    def backlog(self) -> int:
        """Decisions decided but not yet processed."""
        return len(self._queue) + (1 if self._busy else 0)


class MemoryDelivery(DeliveryLayer):
    """Simplest delivery layer: execute on the SM thread, log in memory.

    This is BFT-SMART's default (PBFT-like) mode: the request log lives in
    memory and is lost on crash — recovery relies entirely on state transfer
    from other replicas.  Used as the ∞-Persistence baseline and in protocol
    unit tests.
    """

    def __init__(self, app: Application):
        self.app = app
        self.log: list[Decision] = []
        self.executed_cid = -1

    def on_decide(self, decision: Decision) -> None:
        # Import here to avoid the service <-> scheduler cycle.
        from repro.smr import scheduler
        if scheduler.parallel_execution(self.replica, self.app):
            scheduler.charge_execution(
                self.replica, self.app, decision.batch,
                self.replica.costs.batch_overhead, self._apply, decision)
            return
        work = self.replica.execution_cost(decision.batch)
        self.replica.charge_sm(work, self._apply, decision)

    def _apply(self, decision: Decision) -> None:
        results = self.app.execute_batch(decision.batch)
        self.log.append(decision)
        self.executed_cid = decision.cid
        self.replica.send_replies(results, decision.batch)
        self.replica.note_executed(decision)

    def capture_state(self, up_to_cid: int | None = None) -> tuple[Any, int]:
        snapshot, nbytes = self.app.snapshot()
        return (self.executed_cid, snapshot), nbytes

    def install_state(self, package: Any) -> None:
        cid, snapshot = package
        self.app.install_snapshot(snapshot)
        self.executed_cid = cid
        self.log.clear()

    def on_crash(self) -> None:
        self.log.clear()
        self.executed_cid = -1
