"""Directory of published consensus public keys.

Replicas generate a fresh consensus key pair for each view they participate
in (Section V-D) and announce the public half.  In the real system the keys
travel inside reconfiguration transactions and the first messages of a new
view; the simulation centralizes the *lookup* in this directory (publishing
is still an explicit protocol action, so tests can model replicas whose keys
were not collected).

The directory only ever holds public keys — it grants no signing power.
"""

from __future__ import annotations

__all__ = ["KeyDirectory"]


class KeyDirectory:
    """Maps (view id, replica id) -> consensus public key."""

    def __init__(self) -> None:
        self._keys: dict[tuple[int, int], str] = {}

    def publish(self, view_id: int, replica_id: int, public: str) -> None:
        self._keys[(view_id, replica_id)] = public

    def lookup(self, view_id: int, replica_id: int) -> str | None:
        return self._keys.get((view_id, replica_id))

    def view_keys(self, view_id: int) -> dict[int, str]:
        """All published keys for ``view_id`` (replica id -> public key)."""
        return {
            replica: public
            for (view, replica), public in self._keys.items()
            if view == view_id
        }
