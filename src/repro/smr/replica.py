"""The SMR replica: BFT total-order broadcast with batching.

This is the reproduction of BFT-SMART's ordering core (Section II-C):
client request batching, decision sequencing, a synchronization phase for
leader changes, state transfer hooks and crash/recovery with an
incarnation guard.  The agreement protocol itself is pluggable: a
:class:`~repro.consensus.engine.ConsensusEngine` (Mod-SMaRt's
VP-Consensus by default) owns the consensus messages, vote bookkeeping
and quorum policy.

Division of labour
------------------
- This class owns *ordering* and the shared machine resources (state-machine
  thread, verification pool, NIC endpoint, stable store).
- A :class:`~repro.consensus.engine.ConsensusEngine` owns agreement: its
  wire messages and handlers, per-instance tallies, and the quorum sizes
  (``replica.f`` / ``replica.quorum`` / ... are engine policy).
- A :class:`~repro.smr.runtime.NodeRuntime` owns the message plumbing: typed
  handler dispatch, the inbound/outbound interceptor chains (fault
  injection, tracing) and the protocol-event taps.  Collaborators register
  their message types with the runtime instead of reaching into replica
  internals.
- A pluggable :class:`~repro.smr.service.DeliveryLayer` owns what happens to
  decided batches (execution, durability, replies, blockchain building).
- :class:`~repro.smr.leaderchange.Synchronizer` owns regency changes.
- :class:`~repro.smr.statetransfer.StateTransferEngine` owns recovery
  catch-up.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable

from repro.config import CostModel, SMRConfig, VerificationMode
from repro.consensus.engine import ConsensusEngine, create_engine
from repro.crypto.hashing import hash_obj
from repro.crypto.keys import KeyPair, KeyRegistry
from repro.net.message import Message
from repro.net.network import Network
from repro.sim.engine import Simulator
from repro.sim.resource import Resource
from repro.sim.trace import TraceLog
from repro.smr.keydir import KeyDirectory
from repro.smr.runtime import NodeRuntime
from repro.smr.requests import (
    ClientRequest,
    Decision,
    ReplyBatchMsg,
    RequestBatchMsg,
    RequestKey,
)
from repro.smr.service import DeliveryLayer
from repro.smr.views import View
from repro.storage.stable import StableStore

__all__ = ["ModSmartReplica"]


class ModSmartReplica:
    """One replica of the Mod-SMaRt SMR protocol.

    Parameters
    ----------
    sim, network, registry, keydir:
        Shared simulation substrate.
    replica_id:
        This replica's identifier (must be unique in the universe).
    view:
        The initial view (``vinit``).
    config, costs:
        Protocol parameters and the calibrated cost model.
    delivery:
        The delivery layer receiving ordered decisions.
    store:
        Machine-owned stable store (survives crashes of this object).
    key_policy:
        ``"permanent"`` — sign consensus messages with the permanent key
        (classic BFT-SMART); ``"per_view"`` — fresh consensus keys per view
        with erasure on view change (SMARTCHAIN's forgetting protocol).
    engine:
        The agreement protocol: a registry key (``"modsmart"``,
        ``"fastbft"``), a :class:`~repro.consensus.engine.ConsensusEngine`
        instance, or None for the default Mod-SMaRt.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        registry: KeyRegistry,
        keydir: KeyDirectory,
        replica_id: int,
        view: View,
        config: SMRConfig,
        costs: CostModel,
        delivery: DeliveryLayer,
        store: StableStore | None = None,
        trace: TraceLog | None = None,
        key_policy: str = "permanent",
        active: bool = True,
        permanent_key: KeyPair | None = None,
        initial_consensus_key: KeyPair | None = None,
        engine: "str | ConsensusEngine | None" = None,
    ):
        self.sim = sim
        self.net = network
        self.registry = registry
        self.keydir = keydir
        self.id = replica_id
        self.cv = view
        self.config = config
        self.costs = costs
        self.delivery = delivery
        self.store = store or StableStore(sim, disk_config=costs.disk,
                                          name=f"store-{replica_id}")
        # Bind the machine's storage to this identity so storage faults and
        # disk-degraded events name the replica they hit.
        self.store.node = replica_id
        self.store.disk.node = replica_id
        self.trace = trace or TraceLog(enabled=False)
        self.key_policy = key_policy

        # Machine resources.
        self.sm_thread = Resource(sim, 1, name=f"sm-{replica_id}")
        self.verify_pool = Resource(sim, config.verify_pool_size,
                                    name=f"pool-{replica_id}")
        #: Execution core pool for parallel deterministic execution
        #: (repro.smr.scheduler).  None at exec_cores=1: execution stays on
        #: the state-machine thread and no extra resource appears in
        #: reports, keeping default-config exports byte-identical.
        self.exec_pool = (
            Resource(sim, config.exec_cores, name=f"exec-{replica_id}")
            if config.exec_cores > 1 else None)

        # Keys (may be provided by a bootstrap that wrote them to genesis).
        self.permanent_key: KeyPair = (
            permanent_key if permanent_key is not None
            else registry.generate(f"perm-r{replica_id}"))
        self.consensus_keys: dict[int, KeyPair] = {}
        if initial_consensus_key is not None and key_policy == "per_view":
            self.consensus_keys[view.view_id] = initial_consensus_key
            keydir.publish(view.view_id, replica_id,
                           initial_consensus_key.public)
        self.ensure_consensus_key(view.view_id)

        # Ordering state.
        self.regency = 0
        self.last_decided = -1
        self.last_executed = -1
        self.pending: "OrderedDict[RequestKey, ClientRequest]" = OrderedDict()
        self.seen: set[RequestKey] = set()
        self.verified: set[RequestKey] = set()
        self.inflight: set[RequestKey] = set()
        self.decision_buffer: dict[int, Decision] = {}
        self._verify_waiters: list[tuple[set[RequestKey], Callable[[], None]]] = []

        # Lifecycle.
        self.crashed = False
        self.active = active
        self._incarnation = 0
        self._batch_timer = None
        self._gap_timer = None
        #: Highest cid this leader has proposed (pipelining bookkeeping).
        #: ``engine.propose`` only broadcasts — the instance forms when the
        #: self-addressed PROPOSE loops back — so ``has_open_proposal`` alone
        #: cannot stop the windowed propose loop from double-proposing.
        self._proposed_head = -1
        self._stall_timer = None
        self._stall_marker = -1
        #: Forgetting protocol switch: a compromised replica that refuses to
        #: erase retired per-view keys sets this False (the stale-replay
        #: fault behavior); honest replicas always erase.
        self.erase_retired_keys = True

        # Statistics.
        self.decided_count = 0
        self.executed_tx_count = 0
        self.pipeline_stalls = 0

        # Message plumbing: typed dispatch + interceptor chains.
        self.runtime = NodeRuntime(sim, network, replica_id)
        self.runtime.gate = lambda: not self.crashed
        self.runtime.register_handler(RequestBatchMsg, self._on_request_batch)

        # The agreement protocol registers its own message handlers.
        self.engine = create_engine(engine)
        self.engine.attach(self)

        # Collaborators (import here to avoid cycles).  Each registers its
        # own message types with the runtime.
        from repro.smr.leaderchange import Synchronizer
        from repro.smr.statetransfer import StateTransferEngine
        self.synchronizer = Synchronizer(self)
        self.state_transfer = StateTransferEngine(self)
        self.runtime.fallback = self.state_transfer.maybe_handle

        delivery.attach(self)
        self.endpoint = network.register(replica_id, self.runtime.deliver)

    # ==================================================================
    # Quorum policy (delegated to the engine over the current view size)
    # ==================================================================
    @property
    def f(self) -> int:
        """Fault threshold for the current view, per the engine's policy."""
        return self.engine.fault_threshold(self.cv.n)

    @property
    def quorum(self) -> int:
        """Votes that decide an instance (and match client replies)."""
        return self.engine.quorum(self.cv.n)

    @property
    def stop_quorum(self) -> int:
        """STOP votes that install a new regency."""
        return self.engine.stop_quorum(self.cv.n)

    @property
    def cert_quorum(self) -> int:
        """Signatures required in a block certificate."""
        return self.engine.cert_quorum(self.cv.n)

    # ==================================================================
    # Resource charging helpers
    # ==================================================================
    def guard(self, fn: Callable[..., Any]) -> Callable[..., Any]:
        """Wrap a callback so it is dropped if the replica crashed or was
        re-incarnated after scheduling — simulated threads die with the
        process."""
        incarnation = self._incarnation

        def wrapper(*args: Any) -> None:
            if not self.crashed and self._incarnation == incarnation:
                fn(*args)

        return wrapper

    def charge_sm(self, seconds: float, fn: Callable[..., Any], *args: Any) -> None:
        """Run ``fn`` after ``seconds`` of state-machine-thread work."""
        self.sm_thread.submit(seconds, self.guard(fn), *args)

    def charge_pool(self, seconds: float, fn: Callable[..., Any], *args: Any) -> None:
        """Run ``fn`` after ``seconds`` of work on the verification pool."""
        self.verify_pool.submit(seconds, self.guard(fn), *args)

    def charge_pool_bulk(self, unit: float, count: int,
                         fn: Callable[..., Any], *args: Any) -> None:
        self.verify_pool.submit_bulk(unit, count, self.guard(fn), *args)

    def execution_cost(self, batch: list[ClientRequest]) -> float:
        """SM-thread cost of executing ``batch`` and marshalling replies.

        With SEQUENTIAL verification, signature checks run here too —
        the naive design of Observation 1.
        """
        costs = self.costs
        work = costs.batch_overhead
        work += len(batch) * (costs.exec_time_per_tx + costs.reply_time_per_tx)
        signed = sum(1 for req in batch if req.signed)
        work += signed * costs.signed_tx_sm_overhead
        if self.config.verification is VerificationMode.SEQUENTIAL:
            work += signed * costs.crypto.verify_time
        return work

    # ==================================================================
    # Keys
    # ==================================================================
    def ensure_consensus_key(self, view_id: int) -> KeyPair:
        """Key used to sign ACCEPTs (and block certificates) in ``view_id``."""
        if self.key_policy == "permanent":
            self.keydir.publish(view_id, self.id, self.permanent_key.public)
            return self.permanent_key
        if view_id not in self.consensus_keys:
            key = self.registry.generate(f"cons-r{self.id}-v{view_id}")
            self.consensus_keys[view_id] = key
            self.keydir.publish(view_id, self.id, key.public)
        return self.consensus_keys[view_id]

    def consensus_key(self) -> KeyPair:
        return self.ensure_consensus_key(self.cv.view_id)

    def rotate_keys(self, new_view: View) -> None:
        """Forgetting protocol: generate the new view's key, erase older ones."""
        self.ensure_consensus_key(new_view.view_id)
        if self.key_policy == "per_view" and self.erase_retired_keys:
            erased = []
            for view_id, key in self.consensus_keys.items():
                if view_id < new_view.view_id and not key.is_erased:
                    key.erase()
                    erased.append(view_id)
            if erased:
                rt = self.runtime
                if rt.observing:
                    rt.notify("key-rotation", view=new_view.view_id,
                              erased_views=sorted(erased))

    # ==================================================================
    # Message plumbing (delegated to the NodeRuntime)
    # ==================================================================
    def register_handler(self, msg_type: type,
                         fn: Callable[[int, Message], None]) -> None:
        """Let layers (PERSIST phase, reconfiguration, ...) receive messages."""
        self.runtime.register_handler(msg_type, fn)

    def send(self, dst: int, msg: Message) -> None:
        self.runtime.send(dst, msg)

    def broadcast_view(self, msg: Message, include_self: bool = True) -> None:
        targets = [m for m in self.cv.members if include_self or m != self.id]
        self.runtime.broadcast(targets, msg)

    # ==================================================================
    # Request ingestion and verification gating
    # ==================================================================
    def _on_request_batch(self, src: int, msg: RequestBatchMsg) -> None:
        self.ingest_requests(msg.requests)

    def ingest_requests(self, requests: list[ClientRequest]) -> None:
        """Admit new client requests: dedupe, verify (per mode), enqueue."""
        seen = self.seen
        pending = self.pending
        fresh = []
        for req in requests:
            key = req.key
            if key not in seen:
                seen.add(key)
                pending[key] = req
                fresh.append(req)
        if not fresh:
            return
        mode = self.config.verification
        if mode is VerificationMode.PARALLEL:
            to_verify = [r.key for r in fresh if r.signed]
            instant = [r.key for r in fresh if not r.signed]
            self.verified.update(instant)
            if to_verify:
                self.charge_pool_bulk(
                    self.costs.crypto.verify_time, len(to_verify),
                    self._mark_verified, to_verify,
                )
            elif instant:
                self._after_verification()
        else:
            # SEQUENTIAL charges at execution; NONE never verifies.
            self.verified.update(r.key for r in fresh)
            self._after_verification()

    def _mark_verified(self, keys: list[RequestKey]) -> None:
        self.verified.update(keys)
        if self._verify_waiters:
            still_waiting = []
            for wanted, fn in self._verify_waiters:
                wanted.difference_update(keys)
                if wanted:
                    still_waiting.append((wanted, fn))
                else:
                    fn()
            self._verify_waiters = still_waiting
        self._after_verification()

    def _after_verification(self) -> None:
        self._rearm_proposer("verification", arm_timer=True)

    def require_verified(self, batch: list[ClientRequest],
                         fn: Callable[[], None]) -> None:
        """Invoke ``fn`` once every signed request in ``batch`` is verified
        locally (immediately if they already are, or if verification is not
        the pool's job)."""
        if self.config.verification is not VerificationMode.PARALLEL:
            fn()
            return
        missing = {r.key for r in batch if r.signed and r.key not in self.verified}
        if not missing:
            fn()
        else:
            self._verify_waiters.append((missing, fn))

    def ready_requests(self) -> list[ClientRequest]:
        """Verified pending requests not already being ordered.

        Special (reconfiguration) requests are isolated so they land in
        their own blocks: a batch is either all-normal, a group of 'remove'
        votes (which the paper notes can be batched), or a single other
        special request.
        """
        limit = self.config.batch_size
        inflight = self.inflight
        verified = self.verified
        parallel = self.config.verification is VerificationMode.PARALLEL
        out: list[ClientRequest] = []
        for key, req in self.pending.items():
            if key in inflight:
                continue
            if parallel and req.signed and key not in verified:
                continue
            if req.special:
                if not out:
                    if req.special != "remove":
                        return [req]
                    out.append(req)
                elif out[0].special == "remove" and req.special == "remove":
                    out.append(req)
                else:
                    break
            else:
                if out and out[0].special:
                    break
                out.append(req)
            if len(out) >= limit:
                break
        return out

    # ==================================================================
    # Proposing (leader)
    # ==================================================================
    @property
    def is_leader(self) -> bool:
        return self.cv.leader(self.regency) == self.id

    @property
    def pipeline_window(self) -> int:
        """Effective in-flight consensus window: the configured
        ``pipeline_depth`` capped by what the engine supports."""
        return min(self.config.pipeline_depth, self.engine.max_pipeline)

    def maybe_propose(self) -> None:
        if self.crashed or not self.active or not self.is_leader:
            return
        if self.synchronizer.in_sync_phase:
            return
        if self.pipeline_window > 1:
            self._propose_window()
            return
        next_cid = self.last_decided + 1
        if self.engine.has_open_proposal(next_cid):
            return  # already ordering something for this cid
        if self.delivery.backlog >= self.config.max_pending_decisions:
            return  # flow control: let the delivery pipeline drain
        ready = self.ready_requests()
        if not ready:
            return
        if len(ready) >= self.config.batch_size:
            # ``_proposed_head`` guards the window between broadcasting a
            # PROPOSE and processing its self-addressed copy (which is what
            # creates the instance ``has_open_proposal`` sees): re-proposing
            # the same cid in that window would orphan one batch's requests
            # in ``inflight``.  The timer arming below stays reachable so
            # sub-batch accumulation behaves exactly as before.
            if next_cid <= self._proposed_head:
                return
            self.cancel_batch_timer()
            self.engine.propose(ready[: self.config.batch_size])
            self._proposed_head = max(self._proposed_head, next_cid)
        elif self._batch_timer is None:
            self._batch_timer = self.sim.schedule(
                self.config.batch_timeout, self.guard(self._batch_timeout_fired))

    def _next_window_cid(self) -> int | None:
        """First unproposed cid in the window, or None when it is full.

        ``_proposed_head`` covers cids whose self-addressed PROPOSE is still
        in flight (the engine creates the instance only on delivery);
        ``has_open_proposal`` covers instances adopted from a SYNC.
        """
        next_cid = max(self.last_decided, self._proposed_head) + 1
        limit = self.last_decided + self.pipeline_window
        while next_cid <= limit and self.engine.has_open_proposal(next_cid):
            next_cid += 1
        return next_cid if next_cid <= limit else None

    def _propose_window(self) -> None:
        """Pipelined propose loop (pipeline_window > 1): keep starting
        instances until the window is full or ready requests run out.
        Consecutive batches are disjoint — ``propose`` marks its batch
        in flight and ``ready_requests`` skips in-flight keys."""
        config = self.config
        while True:
            next_cid = self._next_window_cid()
            if next_cid is None:
                self._arm_stall_watch()
                return
            if self.delivery.backlog >= config.max_pending_decisions:
                return  # flow control: let the delivery pipeline drain
            ready = self.ready_requests()
            if not ready:
                return
            if len(ready) < config.batch_size:
                if self._batch_timer is None:
                    self._batch_timer = self.sim.schedule(
                        config.batch_timeout,
                        self.guard(self._batch_timeout_fired))
                return
            self.cancel_batch_timer()
            obs = self.sim.obs
            if obs.enabled:
                obs.metrics.histogram("pipeline.depth", node=self.id).observe(
                    next_cid - self.last_decided)
            self.engine.propose(ready[: config.batch_size], cid=next_cid)
            self._proposed_head = max(self._proposed_head, next_cid)
            self._arm_stall_watch()

    def _batch_timeout_fired(self) -> None:
        self._batch_timer = None
        if self.crashed or not self.active or not self.is_leader:
            return
        if self.synchronizer.in_sync_phase:
            return
        if self.pipeline_window > 1:
            next_cid = self._next_window_cid()
            if next_cid is None:
                return
            if self.delivery.backlog >= self.config.max_pending_decisions:
                return
            ready = self.ready_requests()
            if ready:
                self.engine.propose(ready[: self.config.batch_size],
                                    cid=next_cid)
                self._proposed_head = max(self._proposed_head, next_cid)
                self._arm_stall_watch()
            return
        next_cid = self.last_decided + 1
        if self.engine.has_open_proposal(next_cid):
            return
        if next_cid <= self._proposed_head:
            return  # self-addressed PROPOSE still in flight for this cid
        if self.delivery.backlog >= self.config.max_pending_decisions:
            # Re-check once the pipeline drains (maybe_propose re-arms).
            return
        ready = self.ready_requests()
        if ready:
            self.engine.propose(ready[: self.config.batch_size])
            self._proposed_head = max(self._proposed_head, next_cid)

    def cancel_batch_timer(self) -> None:
        """Stop the batching timer (a proposal is going out another way)."""
        if self._batch_timer is not None:
            self._batch_timer.cancel()
            self._batch_timer = None

    def reset_proposer(self) -> None:
        """Forget the propose window (regency change / state transfer):
        whoever leads next re-proposes the abandoned cids from scratch."""
        self._proposed_head = -1
        if self._stall_timer is not None:
            self._stall_timer.cancel()
            self._stall_timer = None

    def _rearm_proposer(self, source: str, *, kick: bool = False,
                        arm_timer: bool = False) -> None:
        """Single re-arm point for the propose gate.

        Every path that can unblock proposing — verification completing, a
        decision landing, a view installing, state transfer finishing —
        funnels through here, so the one trace point below attributes every
        re-check to its trigger.
        """
        if kick:
            self.engine.kick_pending()
        self.trace.emit(self.sim.now, "rearm-proposer", replica=self.id,
                        source=source)
        self.maybe_propose()
        if arm_timer:
            self.synchronizer.arm_request_timer()

    def _arm_stall_watch(self) -> None:
        """Watchdog for a stalled pipeline (window > 1 only): withheld
        votes for one instance must not starve the whole window silently —
        if no decision lands for half a request timeout while instances are
        in flight, a typed ``pipeline-stalled`` event is emitted.  (The
        regency change that actually heals the stall comes later, from the
        ordinary request timer.)"""
        if self.pipeline_window <= 1 or self._stall_timer is not None:
            return
        self._stall_marker = self.last_decided
        self._stall_timer = self.sim.schedule(
            self.config.request_timeout / 2, self.guard(self._stall_check))

    def _stall_check(self) -> None:
        self._stall_timer = None
        if self.crashed or not self.active or not self.is_leader:
            return
        if self.synchronizer.in_sync_phase:
            return
        head = self.last_decided + 1
        in_flight = [
            c for c in range(head, self.last_decided + self.pipeline_window + 1)
            if self.engine.has_open_proposal(c)]
        if not in_flight:
            return
        if self.last_decided == self._stall_marker:
            self.pipeline_stalls += 1
            self.trace.emit(self.sim.now, "pipeline-stalled",
                            replica=self.id, head_cid=head,
                            open_instances=len(in_flight))
            rt = self.runtime
            if rt.observing:
                rt.notify("pipeline-stalled", head_cid=head,
                          open_instances=len(in_flight),
                          idle=self.config.request_timeout / 2,
                          regency=self.regency)
            obs = self.sim.obs
            if obs.enabled:
                obs.metrics.counter("pipeline.stalls", node=self.id).inc()
        self._arm_stall_watch()

    # ==================================================================
    # Decision sequencing and delivery
    # ==================================================================
    def handle_decision(self, decision: Decision) -> None:
        """Sequence a decision (from consensus, sync phase or catch-up) and
        deliver it (and any buffered successors) in cid order."""
        if decision.cid <= self.last_decided:
            return
        self.decision_buffer[decision.cid] = decision
        while self.last_decided + 1 in self.decision_buffer:
            ready = self.decision_buffer.pop(self.last_decided + 1)
            self._deliver(ready)
        # A buffered future proposal may now be processable.
        self._rearm_proposer("decision", kick=True)

    def _deliver(self, decision: Decision) -> None:
        self.last_decided = decision.cid
        self.decided_count += 1
        self.engine.on_delivered(decision.cid)
        for req in decision.batch:
            self.pending.pop(req.key, None)
            self.inflight.discard(req.key)
        self.trace.emit(self.sim.now, "decide", replica=self.id,
                        cid=decision.cid, batch=len(decision.batch))
        obs = self.sim.obs
        if obs.trace_pipeline:
            obs.trace_cid(self.id, decision.cid, "accept", self.sim.now)
        rt = self.runtime
        if rt.observing:
            rt.notify("decide", cid=decision.cid, batch=len(decision.batch),
                      batch_hash=decision.batch_hash.hex(),
                      regency=decision.regency)
        self.synchronizer.on_progress()
        if (decision.batch and decision.batch[0].special == "vmview"
                and self.config.view_manager_public is not None):
            self._apply_view_manager_request(decision)
            self._rearm_proposer("view-manager")
            return
        # Execution may need local verification to have finished (PARALLEL).
        self.require_verified(decision.batch,
                              lambda: self.delivery.on_decide(decision))

    def note_executed(self, decision: Decision) -> None:
        """Called by the delivery layer once a decision's batch executed."""
        self.last_executed = max(self.last_executed, decision.cid)
        self.executed_tx_count += len(decision.batch)
        rt = self.runtime
        if rt.observing:
            rt.notify("execute", cid=decision.cid,
                      batch=len(decision.batch), regency=decision.regency)

    def send_replies(self, results: dict[RequestKey, tuple[Any, bytes]],
                     requests: list[ClientRequest],
                     block_number: int | None = None) -> None:
        """Group per-station reply batches and transmit them."""
        by_station: dict[int, dict[RequestKey, tuple[Any, bytes]]] = {}
        sizes: dict[int, int] = {}
        for req in requests:
            result = results.get(req.key)
            if result is None:
                continue
            station = req.station
            bucket = by_station.get(station)
            if bucket is None:
                bucket = by_station[station] = {}
                sizes[station] = 0
            bucket[req.key] = result
            sizes[station] += req.reply_size
        for station, payload in by_station.items():
            msg = ReplyBatchMsg(replica_id=self.id, results=payload,
                                block_number=block_number,
                                size=sizes[station] + 32)
            self.send(station, msg)

    # ==================================================================
    # Gap healing
    # ==================================================================
    def arm_gap_check(self) -> None:
        """Engines call this when they buffer an out-of-order proposal."""
        if self._gap_timer is not None:
            return
        self._gap_timer = self.sim.schedule(
            self.config.request_timeout, self.guard(self._gap_check))

    def kick_pending_proposals(self) -> None:
        """Process the buffered proposal for the next cid, if any (decisions
        may then cascade from already-tallied vote quorums)."""
        self.engine.kick_pending()

    def _gap_check(self) -> None:
        self._gap_timer = None
        if self.engine.earliest_buffered() is None:
            return
        self.engine.kick_pending()
        gap_start = self.engine.earliest_buffered()
        if gap_start is None:
            return
        if gap_start <= self.last_decided + self.pipeline_window:
            self.arm_gap_check()
            return  # next proposal is within the window; progress resumes
        # A hole: decisions between last_decided and the earliest buffered
        # proposal can no longer be obtained from live traffic — fetch them
        # via state transfer.
        self.trace.emit(self.sim.now, "gap-detected", replica=self.id,
                        last_decided=self.last_decided, gap_start=gap_start)
        if not self.state_transfer.in_progress:
            self.state_transfer.start(lambda _cid: None)
        self.arm_gap_check()

    def _apply_view_manager_request(self, decision: Decision) -> None:
        """Classic BFT-SMART reconfiguration: a totally-ordered request
        signed by the trusted View Manager updates the replica set.  The
        request never reaches the application (Section II-C3)."""
        from repro.smr.viewmanager import validate_vm_request
        request = decision.batch[0]
        new_view = validate_vm_request(request,
                                       self.config.view_manager_public,
                                       self.registry)
        if new_view is None or new_view.view_id <= self.cv.view_id:
            result = ("error", "unauthorized reconfiguration")
        else:
            self.install_view(new_view)
            result = ("view", new_view.view_id, tuple(new_view.members))
        digest = hash_obj(("vm", request.client_id, request.req_id,
                           repr(result)))
        self.send_replies({request.key: (result, digest)}, [request])
        self.note_executed(decision)

    # ==================================================================
    # View installation
    # ==================================================================
    def install_view(self, new_view: View) -> None:
        """Adopt ``new_view`` (delivered in total order by a reconfiguration).

        Consensus state of undecided instances is reset: the new view's
        membership decides them under fresh quorums.
        """
        if new_view.view_id <= self.cv.view_id:
            return
        self.cv = new_view
        self.rotate_keys(new_view)
        self.regency = 0
        self.synchronizer.on_view_installed()
        self.engine.on_view_installed(new_view)
        self.inflight.clear()
        self.trace.emit(self.sim.now, "view-installed", replica=self.id,
                        view=new_view.view_id, members=new_view.members)
        rt = self.runtime
        if rt.observing:
            rt.notify("view-change", view=new_view.view_id,
                      members=list(new_view.members))
        if not new_view.contains(self.id):
            self.active = False
        self._rearm_proposer("view-installed")

    # ==================================================================
    # Crash / recovery
    # ==================================================================
    def crash(self) -> None:
        """Recoverable crash: all volatile state is lost, stable store keeps
        only what a completed sync covered."""
        if self.crashed:
            return
        self.crashed = True
        self._incarnation += 1
        self.net.unregister(self.id)
        self.cancel_batch_timer()
        if self._gap_timer is not None:
            self._gap_timer.cancel()
            self._gap_timer = None
        self.reset_proposer()
        self.synchronizer.on_crash()
        self.state_transfer.on_crash()
        self.engine.on_crash()
        self.pending.clear()
        self.seen.clear()
        self.verified.clear()
        self.inflight.clear()
        self.decision_buffer.clear()
        self._verify_waiters.clear()
        self.last_decided = -1
        self.last_executed = -1
        self.store.crash()
        self.delivery.on_crash()
        self.trace.emit(self.sim.now, "crash", replica=self.id)
        rt = self.runtime
        if rt.observing:
            rt.notify("crash", incarnation=self._incarnation)

    def recover(self, on_ready: Callable[[], None] | None = None) -> None:
        """Restart after a crash: reload local stable state, then run state
        transfer to catch up before participating again (recovery mode,
        Section III-b)."""
        if not self.crashed:
            return
        self.crashed = False
        self.active = False
        self.endpoint = self.net.register(self.id, self.runtime.deliver)
        recovered = self.delivery.recover_local()
        self.last_decided = recovered
        self.last_executed = recovered
        self.trace.emit(self.sim.now, "recovering", replica=self.id,
                        local_cid=recovered)
        rt = self.runtime
        if rt.observing:
            fields = dict(
                local_cid=recovered,
                height=getattr(getattr(self.delivery, "chain", None),
                               "height", -1))
            info = getattr(self.delivery, "last_recovery", None)
            if info is not None:
                # Replay evidence for the recovery auditor: the (cid,
                # recomputed batch hash) pairs of the replayed prefix.
                fields.update(
                    replayed=[[cid, digest]
                              for cid, digest in info.get("replayed", ())],
                    verified=info.get("verified", 0),
                    truncated=info.get("truncated", 0))
            rt.notify("recovering", **fields)

        def done(target_cid: int) -> None:
            self.active = True
            self.regency = 0
            self.trace.emit(self.sim.now, "recovered", replica=self.id,
                            cid=target_cid)
            if rt.observing:
                rt.notify(
                    "recover", cid=target_cid,
                    height=getattr(getattr(self.delivery, "chain", None),
                                   "height", -1))
            if on_ready is not None:
                on_ready()

        self.state_transfer.start(done)
