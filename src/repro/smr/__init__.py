"""State machine replication above a pluggable consensus engine.

The replica here is protocol-agnostic: pass ``engine="modsmart"`` (the
default, BFT-SMART's Mod-SMaRt) or any key registered with
:func:`repro.consensus.register_engine` to order under a different
agreement protocol.  Everything exported here is engine-independent.
"""

from repro.smr.durability import DuraSmartDelivery
from repro.smr.keydir import KeyDirectory
from repro.smr.replica import ModSmartReplica
from repro.smr.requests import (
    ClientRequest,
    Decision,
    ReplyBatchMsg,
    RequestBatchMsg,
    RequestKey,
)
from repro.smr.service import Application, DeliveryLayer, MemoryDelivery
from repro.smr.statetransfer import StateTransferEngine
from repro.smr.views import View

__all__ = [
    "DuraSmartDelivery",
    "KeyDirectory",
    "ModSmartReplica",
    "ClientRequest",
    "Decision",
    "ReplyBatchMsg",
    "RequestBatchMsg",
    "RequestKey",
    "Application",
    "DeliveryLayer",
    "MemoryDelivery",
    "StateTransferEngine",
    "View",
]
