"""State transfer: bringing recovered and joining replicas up to date.

Follows BFT-SMART's scheme (Section II-C2): the recovering replica probes
the group for the most recent decided consensus id, then asks one replica for
the full state and ``f`` others for a hash of it — installing only when f+1
replies (one full + f hashes) match, so no coalition of f liars can poison
the recovery.

Timing model: the sender serializes its state on the SM thread at
``state_serialize_bps`` and ships it in chunks (so consensus messages
interleave with the bulk transfer on its NIC instead of queueing behind one
gigantic message); the receiver pays an install cost.  With the calibrated
constants a 1 GB state takes ≈60 s end to end — the green spots of Figure 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.crypto.hashing import hash_obj
from repro.net.message import Message

if TYPE_CHECKING:  # pragma: no cover
    from repro.smr.replica import ModSmartReplica

def _package_digest(cid: int, package) -> bytes:
    """Digest of a state package (prefix + length keeps huge states cheap)."""
    text = repr(package)
    return hash_obj(("st", cid, len(text), text[:2048]))


__all__ = [
    "StateTransferEngine",
    "StProbeMsg",
    "StInfoMsg",
    "StRequestMsg",
    "StChunkMsg",
    "StHashMsg",
]

#: Chunk size for bulk state shipping (bytes).
CHUNK_BYTES = 8 * 1024 * 1024


@dataclass
class StProbeMsg(Message):
    """Recovering replica → all: what is your last decided cid?"""

    size: int = field(default=32, kw_only=True)


@dataclass
class StInfoMsg(Message):
    last_decided: int = -1
    #: The sender's chain is self-verifiable (strong variant): a single
    #: full package from it can be trusted after standalone validation.
    self_verifiable: bool = False
    size: int = field(default=40, kw_only=True)


@dataclass
class StRequestMsg(Message):
    """Ask for the state up to an agreed consensus id."""

    want_full: bool = True
    up_to_cid: int = -1
    size: int = field(default=48, kw_only=True)


@dataclass
class StChunkMsg(Message):
    """One chunk of a full state package; the final chunk carries the data."""

    seq: int = 0
    total: int = 1
    up_to_cid: int = -1
    final: bool = False
    package: Any = None
    digest: bytes = b""
    transfer_id: int = 0


@dataclass
class StHashMsg(Message):
    up_to_cid: int = -1
    digest: bytes = b""
    size: int = field(default=72, kw_only=True)


class StateTransferEngine:
    """Drives one state transfer at a time for its replica."""

    def __init__(self, replica: "ModSmartReplica"):
        self.replica = replica
        for msg_type in (StProbeMsg, StInfoMsg, StRequestMsg,
                         StChunkMsg, StHashMsg):
            replica.runtime.register_handler(msg_type, self.maybe_handle)
        self._on_done: Callable[[int], None] | None = None
        self._infos: dict[int, tuple[int, bool]] = {}
        self._expect_self_verified = False
        self._full: tuple[int, Any, bytes] | None = None   # (cid, package, digest)
        self._hashes: dict[int, tuple[int, bytes]] = {}
        self._retry_timer = None
        self._transfer_seq = 0
        self._probing = False
        # Statistics.
        self.transfers_completed = 0
        self.last_transfer_seconds = 0.0
        self._started_at = 0.0

    # ------------------------------------------------------------------
    # Receiver side
    # ------------------------------------------------------------------
    @property
    def in_progress(self) -> bool:
        return self._on_done is not None

    def start(self, on_done: Callable[[int], None]) -> None:
        """Probe the view and fetch the state; ``on_done(cid)`` fires once the
        replica is up to date (immediately if it already is).

        If a transfer is already running, the new callback is chained onto
        the existing one and the probe restarts (fresher target)."""
        replica = self.replica
        previous = self._on_done
        if previous is not None:
            def chained(cid: int, _prev=previous, _new=on_done) -> None:
                _prev(cid)
                _new(cid)
            on_done = chained
        self._on_done = on_done
        self._infos.clear()
        self._full = None
        self._hashes.clear()
        self._probing = True
        self._started_at = replica.sim.now
        rt = replica.runtime
        if rt.observing:
            rt.notify("state-transfer", phase="start",
                      from_cid=replica.last_decided)
        peers = [m for m in replica.cv.members if m != replica.id]
        if not peers:
            self._finish(replica.last_decided)
            return
        replica.runtime.broadcast(peers, StProbeMsg())
        self._arm_retry()

    def _arm_retry(self) -> None:
        replica = self.replica
        if self._retry_timer is not None:
            self._retry_timer.cancel()
        self._retry_timer = replica.sim.schedule(
            replica.config.request_timeout * 2, replica.guard(self._retry))

    def _retry(self) -> None:
        self._retry_timer = None
        if self._on_done is not None:
            self.start(self._on_done)

    def _on_info(self, src: int, msg: StInfoMsg) -> None:
        replica = self.replica
        if not self._probing:
            return
        self._infos[src] = (msg.last_decided, msg.self_verifiable)
        if len(self._infos) < replica.f + 1:
            return
        # Standard target: the highest cid vouched for by >= f+1 repliers.
        values = sorted((cid for cid, _ in self._infos.values()), reverse=True)
        target = values[replica.f]
        # Self-verifiable chains (strong variant) can be adopted from a
        # single source: certificates carry their own proof of persistence.
        sv_peers = {p: cid for p, (cid, sv) in self._infos.items() if sv}
        sv_target = max(sv_peers.values(), default=-1)
        self._expect_self_verified = sv_target > target
        if self._expect_self_verified:
            target = sv_target
        if target <= replica.last_decided:
            resume = replica.delivery.reconcile_local(target)
            replica.last_decided = resume
            replica.last_executed = resume
            self._finish(replica.last_decided)
            return
        if self._expect_self_verified:
            self._probing = False
            source = min(p for p, cid in sv_peers.items() if cid == target)
            replica.send(source, StRequestMsg(want_full=True,
                                              up_to_cid=target))
            return
        holders = sorted(p for p, (cid, _) in self._infos.items()
                         if cid >= target)
        if len(holders) < replica.f + 1:
            return  # wait for more probes (or the retry timer)
        self._probing = False
        # Prefer a non-leader as the full-state source: serving bulk state
        # perturbs the sender, and perturbing the leader stalls ordering.
        leader = replica.cv.leader(replica.regency)
        non_leaders = [p for p in holders if p != leader]
        full_source = (non_leaders[0] if non_leaders else holders[0])
        replica.send(full_source, StRequestMsg(want_full=True,
                                               up_to_cid=target))
        for other in holders[1:replica.f + 1]:
            replica.send(other, StRequestMsg(want_full=False,
                                             up_to_cid=target))

    def _on_chunk(self, src: int, msg: StChunkMsg) -> None:
        if not msg.final:
            return  # bulk filler chunk: only its bandwidth matters
        self._full = (msg.up_to_cid, msg.package, msg.digest)
        self._maybe_install()

    def _on_hash(self, src: int, msg: StHashMsg) -> None:
        self._hashes[src] = (msg.up_to_cid, msg.digest)
        self._maybe_install()

    def _maybe_install(self) -> None:
        replica = self.replica
        if self._full is None:
            return
        cid, package, digest = self._full
        if self._expect_self_verified:
            # One untrusted source suffices if the package proves itself.
            if not replica.delivery.verify_package(package):
                self._full = None
                return
        else:
            matching = sum(1 for (c, d) in self._hashes.values()
                           if c == cid and d == digest)
            # Full reply + f matching hashes = f+1 vouchers.
            if matching < replica.f:
                return
            material = replica.delivery.package_digest_material(package)
            if _package_digest(cid, material) != digest:
                # The full sender lied about its own package; restart.
                self._full = None
                return
        install_cost = self.replica.delivery.install_cost(package)
        replica.charge_sm(install_cost, self._install, cid, package)

    def _install(self, cid: int, package: Any) -> None:
        replica = self.replica
        replica.delivery.install_state(package)
        replica.last_decided = cid
        replica.last_executed = cid
        replica.decision_buffer = {
            c: d for c, d in replica.decision_buffer.items() if c > cid}
        replica.engine.discard_through(cid)
        # Any propose window this replica had in flight predates the
        # installed state: forget it so the windowed loop restarts cleanly.
        replica.reset_proposer()
        if replica.delivery.can_self_verify():
            # Blocks that missed their certificate while this replica was
            # behind may be waiting on exactly its PERSIST vote (same as
            # the recover() path).
            replica.sim.call_soon(replica.delivery.repersist_missing)
        self._finish(cid)

    def _finish(self, cid: int) -> None:
        if self._retry_timer is not None:
            self._retry_timer.cancel()
            self._retry_timer = None
        self._probing = False
        self.transfers_completed += 1
        self.last_transfer_seconds = self.replica.sim.now - self._started_at
        done, self._on_done = self._on_done, None
        self.replica.trace.emit(self.replica.sim.now, "state-transfer-done",
                                replica=self.replica.id, cid=cid,
                                seconds=self.last_transfer_seconds)
        rt = self.replica.runtime
        if rt.observing:
            rt.notify("state-transfer", phase="done", cid=cid,
                      seconds=self.last_transfer_seconds)
        if done is not None:
            done(cid)
        self.replica._rearm_proposer("state-transfer", kick=True)

    # ------------------------------------------------------------------
    # Sender side
    # ------------------------------------------------------------------
    def maybe_handle(self, src: int, msg: Message) -> None:
        """Default handler for state-transfer messages (wired by the replica)."""
        if isinstance(msg, StProbeMsg):
            self.replica.send(src, StInfoMsg(
                last_decided=self.replica.last_decided,
                self_verifiable=self.replica.delivery.can_self_verify()))
        elif isinstance(msg, StInfoMsg):
            self._on_info(src, msg)
        elif isinstance(msg, StRequestMsg):
            self._serve(src, msg)
        elif isinstance(msg, StChunkMsg):
            self._on_chunk(src, msg)
        elif isinstance(msg, StHashMsg):
            self._on_hash(src, msg)

    def _serve(self, src: int, msg: StRequestMsg) -> None:
        replica = self.replica
        cid = msg.up_to_cid if msg.up_to_cid >= 0 else replica.last_decided
        cid = min(cid, replica.last_decided)
        # Serve only once this replica has *processed* (executed) through
        # the agreed cid — otherwise two servers' packages for the same
        # target would differ by their delivery-pipeline lag.
        executed = getattr(replica.delivery, "executed_cid", replica.last_decided)
        if executed < cid:
            replica.sim.schedule(0.02, replica.guard(self._serve), src, msg)
            return
        package, nbytes = replica.delivery.capture_state(up_to_cid=cid)
        material = replica.delivery.package_digest_material(package)
        digest = _package_digest(cid, material)
        if not msg.want_full:
            # Hash-only replies are cheap: replicas maintain running state
            # digests (the PBFT optimization), so no serialization charge.
            replica.send(src, StHashMsg(up_to_cid=cid, digest=digest))
            return
        self._transfer_seq += 1
        transfer = self._transfer_seq
        total = max(1, -(-nbytes // CHUNK_BYTES))
        serialize_per_chunk = (nbytes / total) / replica.costs.state_serialize_bps

        def send_chunk(seq: int) -> None:
            if replica.crashed:
                return
            final = seq == total - 1
            chunk = StChunkMsg(
                seq=seq, total=total, up_to_cid=cid, final=final,
                package=package if final else None,
                digest=digest if final else b"",
                transfer_id=transfer,
                size=min(CHUNK_BYTES, max(1, nbytes - seq * CHUNK_BYTES)),
            )
            replica.send(src, chunk)
            if not final:
                # Serialization runs on background threads (the pool); the
                # state machine keeps executing — the paper observes only a
                # "slightly smaller" throughput while a replica serves state.
                replica.charge_pool(serialize_per_chunk, send_chunk, seq + 1)

        replica.charge_pool(serialize_per_chunk, send_chunk, 0)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def on_crash(self) -> None:
        if self._retry_timer is not None:
            self._retry_timer.cancel()
            self._retry_timer = None
        self._on_done = None
        self._probing = False
        self._infos.clear()
        self._full = None
        self._hashes.clear()
