"""The centralized View Manager — the reconfiguration baseline.

Classic BFT-SMART (Section II-C3) reconfigures through "a distinguished
trusted client known as the View Manager, which uses the state machine
protocol to issue updates to the replica set".  This is exactly the design
the paper argues against for blockchains (Observation 3: a trusted third
party with administrative privileges), implemented here as the baseline that
SMARTCHAIN's decentralized protocol (``repro.core.reconfig``) replaces.

The manager signs a reconfiguration request with its administrative key and
submits it through the ordering protocol like any other client operation;
replicas validate the signature against the configured manager key and
install the new view.  Nothing else gates the change — whoever holds the
manager's key owns the consortium.
"""

from __future__ import annotations

import itertools
from typing import Callable

from repro.crypto.hashing import hash_obj
from repro.crypto.keys import KeyPair, KeyRegistry, Signature
from repro.net.network import Network
from repro.sim.engine import Simulator
from repro.smr.requests import ClientRequest, ReplyBatchMsg, RequestBatchMsg
from repro.smr.views import View

__all__ = ["ViewManager", "validate_vm_request"]

#: ClientRequest.special tag of View-Manager reconfigurations.
VM_SPECIAL = "vmview"


def _vm_payload(view_id: int, members: tuple) -> bytes:
    return hash_obj(("vm-reconfig", view_id, tuple(members)))


def validate_vm_request(request: ClientRequest,
                        manager_public: str | None,
                        registry: KeyRegistry) -> View | None:
    """Deterministically validate a View-Manager request; returns the new
    view, or None when the request is not authorized."""
    if manager_public is None or request.special != VM_SPECIAL:
        return None
    try:
        _tag, view_id, members, signer, value = request.op
    except (TypeError, ValueError):
        return None
    signature = Signature(signer, value)
    if signer != manager_public:
        return None
    if not registry.verify(manager_public, _vm_payload(view_id, tuple(members)),
                           signature):
        return None
    try:
        return View(view_id, tuple(members))
    except Exception:
        return None


class ViewManager:
    """The trusted administrative client."""

    def __init__(self, sim: Simulator, network: Network,
                 registry: KeyRegistry, manager_id: int = 9999,
                 key: KeyPair | None = None):
        self.sim = sim
        self.net = network
        self.registry = registry
        self.id = manager_id
        self.key = key or registry.generate("view-manager")
        self._seq = itertools.count(1)
        self._pending: dict[tuple, tuple[set, Callable | None]] = {}
        network.register(manager_id, self._on_message)

    @property
    def public(self) -> str:
        """The key replicas must be configured with
        (``SMRConfig.view_manager_public``)."""
        return self.key.public

    def reconfigure(self, current_view: View, new_members: tuple,
                    on_done: Callable[[View], None] | None = None) -> View:
        """Sign and submit a view update through the ordering protocol."""
        new_view = View(current_view.view_id + 1, tuple(sorted(new_members)))
        obs = self.sim.obs
        if obs.record_events:
            obs.events.emit("reconfig", self.id, self.sim.now,
                            op="vm-request", view=new_view.view_id,
                            members=list(new_view.members))
        signature = self.key.sign(_vm_payload(new_view.view_id,
                                              new_view.members))
        request = ClientRequest(
            client_id=2_000_000 + self.id,
            req_id=next(self._seq),
            op=(VM_SPECIAL, new_view.view_id, new_view.members,
                signature.signer, signature.value),
            size=256,
            signed=False,
            sent_at=self.sim.now,
            station=self.id,
            reply_size=96,
            special=VM_SPECIAL,
        )
        self._pending[request.key] = (set(), on_done)
        nbytes = request.size + 16
        self.net.broadcast(self.id, list(current_view.members),
                           RequestBatchMsg(requests=[request], size=nbytes))
        return new_view

    def _on_message(self, src, msg) -> None:
        if not isinstance(msg, ReplyBatchMsg):
            return
        for key, (payload, _digest) in msg.results.items():
            entry = self._pending.get(key)
            if entry is None:
                continue
            voters, on_done = entry
            voters.add(msg.replica_id)
            if len(voters) >= 2 and on_done is not None:
                del self._pending[key]
                if isinstance(payload, tuple) and payload[0] == "view":
                    on_done(View(payload[1], tuple(payload[2])))
