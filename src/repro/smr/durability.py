"""The Dura-SMaRt durability layer (Bessani et al., USENIX ATC'13).

This is BFT-SMART's efficient durability layer, reproduced as a delivery
layer (Section II-C2 of the paper):

- **Parallel logging**: a decided batch is appended to the stable log while
  (not before) the service executes it; replies wait for both.
- **Group commit**: while one synchronous write is in flight, further
  decisions accumulate; the next write covers all of them with a single
  stable-media barrier — "the latency of writing one or ten request batches
  in the stable log is similar".
- **Batched delivery**: accumulated batches are handed to the service as one
  group, paying the per-delivery overhead once (this is the 3.6× of Table I).

It is the 'Durable-SMaRt' baseline of Table I and Figure 6.
"""

from __future__ import annotations

from typing import Any

from repro.config import StorageMode
from repro.crypto.hashing import hash_obj
from repro.smr import scheduler
from repro.smr.requests import Decision
from repro.smr.service import Application, DeliveryLayer
from repro.storage.stable import AsyncFlusher

__all__ = ["DuraSmartDelivery"]

#: Serialized overhead per logged decision: consensus metadata plus the
#: decision proof (a quorum of 72-byte signatures).
_LOG_ENTRY_OVERHEAD = 64


class DuraSmartDelivery(DeliveryLayer):
    """Durable delivery with parallel logging and group commit."""

    LOG = "dura-oplog"
    SNAPSHOT = "dura-snapshot"
    #: Oplog marker written when a state-transfer package is adopted: the
    #: entries that follow continue from the package's cid, so the cid gap
    #: before them is legitimate (verified recovery stops replaying there
    #: instead of flagging a torn write).
    RESUME = "resume"

    def __init__(self, app: Application, storage: StorageMode = StorageMode.SYNC,
                 checkpoint_every: int = 0):
        self.app = app
        self.storage = storage
        #: Take an application snapshot every this many decisions (0 = never).
        self.checkpoint_every = checkpoint_every
        self.executed_cid = -1
        self._pending_group: list[Decision] = []
        self._sync_in_flight = False
        self._flusher: AsyncFlusher | None = None
        self._since_checkpoint = 0
        # Statistics.
        self.group_sizes: list[int] = []
        self.decisions_logged = 0
        # Verified-recovery outcome (rolled into run metrics, docs/faults.md).
        self.recovery_verified_entries = 0
        self.recovery_truncated_entries = 0
        self.recovery_fallbacks = 0
        self.snapshots_rejected = 0
        #: Report of the most recent :meth:`recover_local` (``None`` before
        #: the first recovery); carried on the ``recovering`` event so the
        #: recovery auditor can compare the replayed prefix against the
        #: canonical decision stream.
        self.last_recovery: dict | None = None

    def attach(self, replica) -> None:
        super().attach(replica)
        if self.storage is StorageMode.ASYNC:
            self._flusher = AsyncFlusher(
                replica.store, replica.config.async_flush_interval)
            self._flusher.start()

    # ------------------------------------------------------------------
    # Delivery path
    # ------------------------------------------------------------------
    def on_decide(self, decision: Decision) -> None:
        replica = self.replica
        nbytes = (decision.payload_bytes() + _LOG_ENTRY_OVERHEAD
                  + 72 * len(decision.proof))
        if self.storage is not StorageMode.MEMORY:
            replica.store.append(self.LOG, self._log_payload(decision), nbytes)
        self.decisions_logged += 1
        self._pending_group.append(decision)
        if self.storage is StorageMode.SYNC:
            self._maybe_start_sync()
        else:
            # Async/memory: no stable barrier gates delivery.
            self._deliver_group(self._take_group())

    def _maybe_start_sync(self) -> None:
        if self._sync_in_flight or not self._pending_group:
            return
        group = self._take_group()
        self._sync_in_flight = True
        self.replica.store.sync(self._synced, group)

    def _take_group(self) -> list[Decision]:
        limit = self.replica.config.group_commit_limit
        group, self._pending_group = (
            self._pending_group[:limit], self._pending_group[limit:])
        return group

    def _synced(self, group: list[Decision]) -> None:
        self._sync_in_flight = False
        obs = self.replica.sim.obs
        if obs.trace_pipeline:
            now = self.replica.sim.now
            for decision in group:
                obs.trace_cid(self.replica.id, decision.cid, "body_write", now)
        self._deliver_group(group)
        self._maybe_start_sync()

    def _deliver_group(self, group: list[Decision]) -> None:
        if not group:
            return
        self.group_sizes.append(len(group))
        obs = self.replica.sim.obs
        if obs.enabled:
            obs.metrics.histogram(
                "dura.group_size", node=self.replica.id).observe(len(group))
        replica = self.replica
        costs = replica.costs
        if scheduler.parallel_execution(replica, self.app):
            # The whole group is one dependency plan — ordering across the
            # group's decisions is preserved by batch concatenation order —
            # while the per-delivery overhead and log serialization stay on
            # the SM thread.
            combined = [req for d in group for req in d.batch]
            serial = (costs.batch_overhead
                      + costs.dura_log_per_tx * len(combined))
            scheduler.charge_execution(replica, self.app, combined, serial,
                                       self._apply_group, group)
            return
        # One per-delivery overhead for the whole group (the key win).
        work = costs.batch_overhead
        for decision in group:
            work += replica.execution_cost(decision.batch) - costs.batch_overhead
            work += costs.dura_log_per_tx * len(decision.batch)
        replica.charge_sm(work, self._apply_group, group)

    def _apply_group(self, group: list[Decision]) -> None:
        replica = self.replica
        obs = replica.sim.obs
        for decision in group:
            results = self.app.execute_batch(decision.batch)
            self.executed_cid = decision.cid
            if obs.trace_pipeline:
                obs.trace_cid(replica.id, decision.cid, "execute",
                              replica.sim.now)
            replica.send_replies(results, decision.batch)
            replica.note_executed(decision)
        self._since_checkpoint += len(group)
        if self.checkpoint_every and self._since_checkpoint >= self.checkpoint_every:
            self._checkpoint()

    # ------------------------------------------------------------------
    # Checkpoints
    # ------------------------------------------------------------------
    def _checkpoint(self) -> None:
        self._since_checkpoint = 0
        snapshot, nbytes = self.app.snapshot()
        store = self.replica.store
        store.write_snapshot(self.SNAPSHOT, (self.executed_cid, snapshot), nbytes)

    # ------------------------------------------------------------------
    # State transfer / recovery
    # ------------------------------------------------------------------
    def capture_state(self, up_to_cid: int | None = None) -> tuple[Any, int]:
        snapshot, nbytes = self.app.snapshot()
        return (self.executed_cid, snapshot), nbytes

    def install_state(self, package: Any) -> None:
        cid, snapshot = package
        self.app.install_snapshot(snapshot)
        self.executed_cid = cid
        # Mark the oplog: decisions appended from here on continue after
        # ``cid``, so the gap to the pre-crash prefix is not a torn write.
        if self.storage is not StorageMode.MEMORY:
            self.replica.store.append(self.LOG, (self.RESUME, cid), 16)

    def recover_local(self) -> int:
        """Replay the stable log (from the last stable snapshot, if any).

        With ``SMRConfig(verify_recovery=True)`` (the default) every record
        is checked against its append-time checksum and for cid contiguity;
        the log is truncated at the first invalid record and the replica
        falls back to state transfer from the last valid cid.  The
        ``verify_recovery=False`` escape hatch replays blindly — the
        pre-hardening behavior kept as the negative control.
        """
        if self._flusher is not None:
            self._flusher.start()
        if not self.replica.config.verify_recovery:
            return self._recover_unverified()
        replica = self.replica
        store = replica.store
        rt = replica.runtime
        observing = rt.observing
        start_cid = -1
        snapshot_rejected = False
        checkpoint = store.read_cell(self.SNAPSHOT)
        if checkpoint is not None:
            if store.verify_cell(self.SNAPSHOT):
                start_cid, snapshot = checkpoint
                self.app.install_snapshot(snapshot)
                self.executed_cid = start_cid
            else:
                snapshot_rejected = True
                store.bitrot_detected += 1
                self.snapshots_rejected += 1
                if observing:
                    rt.notify("snapshot-rejected", key=self.SNAPSHOT)
        entries = store.read_entries(self.LOG)
        replayed: list[tuple[int, str]] = []
        valid = 0
        prev_cid: int | None = None
        bad_reason = ""
        stopped_at_marker = False
        for entry in entries:
            if not store.verify_entry(entry):
                bad_reason = "checksum"
                store.bitrot_detected += 1
                break
            payload = entry.payload
            if isinstance(payload, tuple) and payload[0] == self.RESUME:
                marker_cid = payload[1]
                if marker_cid != self.executed_cid:
                    # The entries past this marker continue from a state we
                    # do not hold locally (no snapshot covers it): stop the
                    # replay here and let state transfer close the gap.
                    stopped_at_marker = True
                    break
                valid += 1
                prev_cid = marker_cid
                continue
            cid, batch = payload
            if prev_cid is not None and cid != prev_cid + 1:
                bad_reason = "cid-gap"
                break
            prev_cid = cid
            valid += 1
            if cid <= start_cid:
                continue
            self.app.execute_batch(batch)
            self.executed_cid = cid
            if observing:
                replayed.append(
                    (cid,
                     hash_obj([r.to_canonical() for r in batch]).hex()))
        self.recovery_verified_entries += valid
        truncated = 0
        if bad_reason:
            truncated = len(entries) - valid
            store.truncate_log(self.LOG, valid)
            self.recovery_truncated_entries += truncated
            self.recovery_fallbacks += 1
            if observing:
                rt.notify("log-corruption-detected", log=self.LOG,
                          index=valid, reason=bad_reason, dropped=truncated)
                rt.notify("recovery-fallback", from_cid=self.executed_cid,
                          dropped=truncated)
        elif stopped_at_marker:
            self.recovery_fallbacks += 1
            if observing:
                rt.notify("recovery-fallback", from_cid=self.executed_cid,
                          dropped=0)
        if observing:
            rt.notify("recovery-verified", entries=valid,
                      truncated=truncated, cid=self.executed_cid)
        self.last_recovery = {
            "replayed": replayed, "verified": valid, "truncated": truncated,
            "snapshot_rejected": snapshot_rejected,
            "fallback": bool(bad_reason) or stopped_at_marker,
        }
        return self.executed_cid

    def _recover_unverified(self) -> int:
        """Blind replay (``verify_recovery=False``): no checksum or linkage
        checks — a corrupted record executes and silently diverges the
        replica, which is exactly what the recovery auditor must catch."""
        replica = self.replica
        store = replica.store
        rt = replica.runtime
        observing = rt.observing
        start_cid = -1
        checkpoint = store.read_cell(self.SNAPSHOT)
        if checkpoint is not None:
            start_cid, snapshot = checkpoint
            self.app.install_snapshot(snapshot)
            self.executed_cid = start_cid
        replayed: list[tuple[int, str]] = []
        for payload in store.read_log(self.LOG):
            if isinstance(payload, tuple) and payload[0] == self.RESUME:
                continue
            cid, batch = payload
            if cid <= start_cid:
                continue
            self.app.execute_batch(batch)
            self.executed_cid = cid
            if observing:
                replayed.append(
                    (cid,
                     hash_obj([r.to_canonical() for r in batch]).hex()))
        self.last_recovery = {
            "replayed": replayed, "verified": 0, "truncated": 0,
            "snapshot_rejected": False, "fallback": False,
        }
        return self.executed_cid

    def on_crash(self) -> None:
        self._pending_group.clear()
        self._sync_in_flight = False
        self.executed_cid = -1
        if self._flusher is not None:
            self._flusher.stop()

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _log_payload(decision: Decision) -> tuple[int, list]:
        return (decision.cid, decision.batch)
