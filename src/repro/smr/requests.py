"""Client requests, replies and decisions — the SMR data plane."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.crypto.keys import Signature
from repro.net.message import Message

__all__ = [
    "ClientRequest",
    "RequestKey",
    "Decision",
    "RequestBatchMsg",
    "ReplyBatchMsg",
]

RequestKey = tuple[int, int]


@dataclass(slots=True)
class ClientRequest:
    """One client operation submitted for total ordering.

    ``op`` is the application payload (e.g. a SMaRtCoin transaction).
    ``size`` is the serialized request size in bytes — the quantity the
    paper reports (180 B MINT / 310 B SPEND requests) and that drives the
    bandwidth model.  ``signed`` marks whether a signature must be verified
    (and its cost charged) before execution.
    """

    client_id: int
    req_id: int
    op: Any
    size: int = 128
    signed: bool = True
    sent_at: float = 0.0
    #: Client station (machine) hosting the issuing client; replies for all
    #: clients of one station travel in one ReplyBatchMsg.
    station: int = -1
    #: Serialized size of this request's reply (e.g. 270 B MINT / 380 B SPEND).
    reply_size: int = 128
    #: Special ordered operations that bypass the application (view
    #: reconfigurations); empty string for normal requests.
    special: str = ""
    #: (client_id, req_id) — precomputed: this pair is the dict key for
    #: every pending/ledger/reply lookup, making it the single most-read
    #: attribute in a run (millions of accesses), so a property is too slow.
    key: RequestKey = field(init=False, repr=False, compare=False)
    #: ``repr(op)`` — precomputed once; re-derived per replica otherwise
    #: (canonical encoding, naive block payloads).
    op_repr: str = field(init=False, repr=False, compare=False)
    _canonical: tuple = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.key = (self.client_id, self.req_id)
        self.op_repr = repr(self.op)
        self._canonical = ("req", self.client_id, self.req_id, self.special,
                           self.op_repr)

    def to_canonical(self) -> tuple:
        return self._canonical


@dataclass
class Decision:
    """The outcome of one consensus instance, handed to the delivery layer."""

    cid: int
    batch: list[ClientRequest]
    #: Quorum of signed ACCEPTs proving the decision (Section II-C1);
    #: mapping replica id -> signature over (cid, batch hash).
    proof: dict[int, Signature]
    batch_hash: bytes
    regency: int
    decided_at: float

    @property
    def size(self) -> int:
        return len(self.batch)

    def payload_bytes(self) -> int:
        return sum(req.size for req in self.batch)


@dataclass
class RequestBatchMsg(Message):
    """Client station → replicas: a group of client requests."""

    requests: list[ClientRequest] = field(default_factory=list)


@dataclass
class ReplyBatchMsg(Message):
    """Replica → client station: results for executed requests.

    ``results`` maps request key -> (result payload, result digest);
    stations match replies from distinct replicas by digest.
    """

    replica_id: int = -1
    results: dict[RequestKey, tuple[Any, bytes]] = field(default_factory=dict)
    block_number: int | None = None
