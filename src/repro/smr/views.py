"""Views: the replica group and its evolution.

A *view* is the set of replicas currently allowed to participate in the
ordering protocol (Section III).  Views are numbered; ``vinit`` is view 0 and
is written to the genesis block.  The failure threshold f follows from the
size: f = ⌊(n−1)/3⌋.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ViewError

__all__ = ["View"]


@dataclass(frozen=True)
class View:
    """An immutable replica-group configuration."""

    view_id: int
    members: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(set(self.members)) != len(self.members):
            raise ViewError(f"duplicate members in view {self.view_id}: {self.members}")
        if not self.members:
            raise ViewError("a view must have at least one member")

    @property
    def n(self) -> int:
        return len(self.members)

    @property
    def f(self) -> int:
        """Failures tolerated: ⌊(n−1)/3⌋."""
        return (self.n - 1) // 3

    @property
    def quorum(self) -> int:
        """Byzantine dissemination quorum ⌈(n+f+1)/2⌉ ≥ 2f+1."""
        return (self.n + self.f + 2) // 2

    @property
    def stop_quorum(self) -> int:
        """STOPs required to install a new regency."""
        return 2 * self.f + 1

    @property
    def cert_quorum(self) -> int:
        """Signatures required in a block certificate: the paper's
        ⌊(n+f+1)/2⌋ ≥ 2f+1.

        Weaker than the consensus quorum for non-3f+1 sizes, and sufficient:
        any certificate carries ≥ f+1 correct signatures, and a correct
        replica only signs the block it derived from the decided batch, so
        no conflicting block can gather a second certificate.  It also
        intersects every (n−f)-recovery group in a correct holder, which is
        what 0-Persistence needs.
        """
        return max(2 * self.f + 1, (self.n + self.f + 1) // 2)

    def leader(self, regency: int) -> int:
        """Leader replica for ``regency`` (round-robin over members)."""
        return self.members[regency % self.n]

    def contains(self, replica_id: int) -> bool:
        return replica_id in self.members

    def with_member(self, replica_id: int) -> "View":
        """Next view including ``replica_id``."""
        if replica_id in self.members:
            raise ViewError(f"replica {replica_id} already in view {self.view_id}")
        return View(self.view_id + 1, tuple(sorted(self.members + (replica_id,))))

    def without_member(self, replica_id: int) -> "View":
        """Next view excluding ``replica_id``."""
        if replica_id not in self.members:
            raise ViewError(f"replica {replica_id} not in view {self.view_id}")
        remaining = tuple(m for m in self.members if m != replica_id)
        return View(self.view_id + 1, remaining)

    def to_canonical(self) -> tuple:
        return ("view", self.view_id, tuple(self.members))

    def __str__(self) -> str:
        return f"v{self.view_id}{{{','.join(map(str, self.members))}}}"
