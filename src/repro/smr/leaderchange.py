"""Mod-SMaRt synchronization phase: regency (leader) changes.

When correct replicas stop making progress on pending requests, they vote to
abandon the current regency (STOP).  Once 2f+1 replicas vote, a new regency
is installed with a new leader (round-robin); replicas report the value they
may have vouched for in the unfinished instance (STOPDATA), and the new
leader re-proposes the highest vouched value — or declares a fresh start —
via SYNC.  This preserves agreement: if any replica decided a value in the
old regency, a WRITE quorum saw it, so at least one correct STOPDATA carries
it to the new leader.

Timeout policy (Bravo, Chockler & Gotsman, "Liveness and Latency of
Byzantine SMR"): under the default ``exponential`` policy the leader-change
timeout starts at ``config.request_timeout``, is multiplied by
``config.timeout_backoff`` on every regency change that happens without an
intervening decision (capped at ``config.timeout_max``), and resets to the
base on progress.  A fixed timeout smaller than the actual post-GST message
delay livelocks the sync phase — every SYNC is overtaken by the next
escalation — whereas the growing timeout eventually outwaits any unknown
delay bound, restoring bounded commit latency after GST.  The legacy
behavior survives as ``config.synchronizer = "fixed"`` (the liveness fault
plans use it as a negative control).

The synchronizer is instrumented: ``watchdog-armed``/``watchdog-fired`` and
``sync-phase`` protocol events (each carrying the timeout currently in
effect) feed the liveness auditor (:mod:`repro.obs.liveness`), and
``regency_changes``/``watchdog_fires``/``timeout_history`` surface as run
metrics.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.consensus.messages import StopDataMsg, StopMsg, SyncMsg
from repro.net.message import Message

if TYPE_CHECKING:  # pragma: no cover
    from repro.smr.replica import ModSmartReplica

__all__ = ["Synchronizer"]


class Synchronizer:
    """Leader-change state machine for one replica."""

    def __init__(self, replica: "ModSmartReplica"):
        self.replica = replica
        for msg_type in (StopMsg, StopDataMsg, SyncMsg):
            replica.runtime.register_handler(msg_type, self.on_message)
        self.in_sync_phase = False
        self._stop_votes: dict[int, set[int]] = {}
        self._stopdata: dict[int, dict[int, StopDataMsg]] = {}
        self._stop_sent_for = -1
        self._synced_regency = -1
        self._request_timer = None
        self._sync_timer = None
        self._last_progress = 0.0
        self._last_decision = 0.0
        #: Regency changes that happened without an intervening decision;
        #: drives the exponential backoff and resets on progress.
        self._failed_changes = 0
        # Statistics.
        self.regency_changes = 0
        self.watchdog_fires = 0
        #: regency -> leader-change timeout in effect when it was installed.
        self.timeout_history: dict[int, float] = {}

    # ------------------------------------------------------------------
    # Timeout policy
    # ------------------------------------------------------------------
    @property
    def current_timeout(self) -> float:
        """The leader-change timeout currently in effect."""
        config = self.replica.config
        base = config.request_timeout
        if config.synchronizer == "fixed" or self._failed_changes == 0:
            return base
        return min(base * config.timeout_backoff ** self._failed_changes,
                   config.timeout_max)

    # ------------------------------------------------------------------
    # Progress watchdog
    # ------------------------------------------------------------------
    def arm_request_timer(self) -> None:
        """Watch pending requests; fire a leader change on starvation."""
        replica = self.replica
        if self._request_timer is not None or not replica.pending:
            return
        if replica.crashed or not replica.active:
            return
        timeout = self.current_timeout
        self._request_timer = replica.sim.schedule(
            timeout, replica.guard(self._watchdog))
        rt = replica.runtime
        if rt.observing:
            rt.notify("watchdog-armed", timeout=timeout,
                      regency=replica.regency)

    def on_progress(self) -> None:
        """A decision was delivered: the current leader is doing its job.

        The backoff decays one step per decision — and only when the gap
        since the previous decision shows the *base* timeout would have
        sufficed.  An unconditional reset re-enters the leader-change storm
        after every single decision whenever the post-GST decision interval
        exceeds the base timeout (storm → recover → reset → storm, the
        oscillation the liveness auditor flags); a conditional decay keeps
        the timeout at the level that is demonstrably needed, yet walks it
        back to the base once the network is fast again.

        The gap is measured decision-to-decision, not against the watchdog's
        ``_last_progress`` (which SYNC adoption also refreshes): the first
        decision after a SYNC always lands quickly, and judging the decay by
        that gap would shed the backoff once per regency and re-enter the
        storm.
        """
        now = self.replica.sim.now
        if (self._failed_changes
                and now - self._last_decision
                <= self.replica.config.request_timeout):
            self._failed_changes -= 1
        self._last_decision = now
        self._last_progress = now

    def _watchdog(self) -> None:
        self._request_timer = None
        replica = self.replica
        if not replica.pending or not replica.active:
            return
        # Starvation is judged against the *current* (possibly backed-off)
        # timeout, not the fixed config constant — otherwise a backed-off
        # synchronizer would declare starvation long before its own timer
        # policy considers the leader late.
        starved = (replica.sim.now - self._last_progress
                   >= self.current_timeout)
        if starved and not self.in_sync_phase:
            self.watchdog_fires += 1
            rt = replica.runtime
            if rt.observing:
                rt.notify("watchdog-fired",
                          idle=replica.sim.now - self._last_progress,
                          timeout=self.current_timeout,
                          regency=replica.regency)
            self.request_change()
        self.arm_request_timer()

    # ------------------------------------------------------------------
    # STOP voting
    # ------------------------------------------------------------------
    def request_change(self) -> None:
        """Vote to move past the current regency."""
        self._send_stop(self.replica.regency + 1)

    def _send_stop(self, next_regency: int) -> None:
        if next_regency <= self._stop_sent_for:
            return
        self._stop_sent_for = next_regency
        self.replica.trace.emit(self.replica.sim.now, "stop",
                                replica=self.replica.id, regency=next_regency)
        rt = self.replica.runtime
        if rt.observing:
            rt.notify("sync-phase", phase="stop", regency=next_regency,
                      timeout=self.current_timeout)
        self.replica.broadcast_view(StopMsg(next_regency=next_regency))

    def on_message(self, src: int, msg: Message) -> None:
        if isinstance(msg, StopMsg):
            self._on_stop(src, msg)
        elif isinstance(msg, StopDataMsg):
            self._on_stopdata(src, msg)
        elif isinstance(msg, SyncMsg):
            self._on_sync(src, msg)

    def _on_stop(self, src: int, msg: StopMsg) -> None:
        replica = self.replica
        regency = msg.next_regency
        if regency <= replica.regency or not replica.cv.contains(src):
            return
        votes = self._stop_votes.setdefault(regency, set())
        votes.add(src)
        if len(votes) >= replica.f + 1:
            self._send_stop(regency)  # join the change
        if len(votes) >= replica.stop_quorum:
            self._install_regency(regency)

    def _install_regency(self, regency: int) -> None:
        replica = self.replica
        if regency <= replica.regency:
            return
        replica.regency = regency
        self.regency_changes += 1
        # The change itself is evidence the previous regency made no
        # progress: back the timeout off until a decision lands.
        self._failed_changes += 1
        self.timeout_history[regency] = self.current_timeout
        self.in_sync_phase = True
        replica.cancel_batch_timer()
        for stale in [r for r in self._stop_votes if r <= regency]:
            del self._stop_votes[stale]
        self._stop_sent_for = max(self._stop_sent_for, regency)
        replica.inflight.clear()

        pending_cid = replica.last_decided + 1
        writeset = replica.engine.abandon_regency(pending_cid, regency)
        # Pipelining: the whole in-flight window is abandoned, and every
        # instance this replica vouched a value for beyond the head is
        # reported alongside (empty at pipeline_depth=1).
        extra_writesets = []
        window = replica.pipeline_window
        if window > 1:
            for c in range(pending_cid + 1, pending_cid + window):
                ws = replica.engine.abandon_regency(c, regency)
                if ws is not None:
                    extra_writesets.append((c, ws))
        replica.reset_proposer()

        replica.trace.emit(replica.sim.now, "regency-installed",
                           replica=replica.id, regency=regency)
        rt = replica.runtime
        if rt.observing:
            rt.notify("leader-change", regency=regency,
                      leader=replica.cv.leader(regency),
                      timeout=self.current_timeout)
        extra_size = sum(16 + sum(r.size for r in ws[2])
                         for _c, ws in extra_writesets)
        stopdata = StopDataMsg(
            regency=regency,
            last_decided_cid=replica.last_decided,
            pending_cid=pending_cid,
            writeset=writeset,
            extra_writesets=tuple(extra_writesets),
            size=64 + (sum(r.size for r in writeset[2]) if writeset else 0)
            + extra_size,
        )
        if rt.observing:
            rt.notify("sync-phase", phase="stopdata", regency=regency,
                      leader=replica.cv.leader(regency),
                      timeout=self.current_timeout)
        replica.send(replica.cv.leader(regency), stopdata)
        self._arm_sync_timeout()
        if replica.cv.leader(regency) == replica.id:
            self._check_stopdata(regency)

    def _arm_sync_timeout(self) -> None:
        replica = self.replica
        if self._sync_timer is not None:
            self._sync_timer.cancel()
        self._sync_timer = replica.sim.schedule(
            self.current_timeout, replica.guard(self._sync_timeout))

    def _sync_timeout(self) -> None:
        self._sync_timer = None
        if self.in_sync_phase:
            # The new leader also failed: escalate.
            rt = self.replica.runtime
            if rt.observing:
                rt.notify("sync-phase", phase="sync-timeout",
                          regency=self.replica.regency,
                          timeout=self.current_timeout)
            self.request_change()

    # ------------------------------------------------------------------
    # STOPDATA collection (new leader) and SYNC
    # ------------------------------------------------------------------
    def _on_stopdata(self, src: int, msg: StopDataMsg) -> None:
        replica = self.replica
        if msg.regency < replica.regency:
            return
        if replica.cv.leader(msg.regency) != replica.id:
            return
        # Buffer even if our own regency install lags; _install_regency
        # re-checks the tally.
        self._stopdata.setdefault(msg.regency, {})[src] = msg
        self._check_stopdata(msg.regency)

    def _check_stopdata(self, regency: int) -> None:
        replica = self.replica
        if regency != replica.regency:
            return
        collected = self._stopdata.get(regency, {})
        needed = replica.cv.n - replica.f
        if len(collected) < needed or self._synced_regency >= regency:
            return
        highest = max(sd.last_decided_cid for sd in collected.values())
        if highest > replica.last_decided:
            # The new leader is behind: catch up before leading.
            replica.state_transfer.start(
                lambda _cid: self._emit_sync(regency))
            return
        self._emit_sync(regency)

    def _emit_sync(self, regency: int) -> None:
        replica = self.replica
        if self._synced_regency >= regency or replica.regency != regency:
            return
        self._synced_regency = regency
        collected = self._stopdata.get(regency, {})
        cid = replica.last_decided + 1
        # The safety rule: re-propose the vouched value with the highest
        # regency among the collected STOPDATAs for this cid.
        best = None
        for stopdata in collected.values():
            if stopdata.pending_cid != cid or stopdata.writeset is None:
                continue
            if best is None or stopdata.writeset[0] > best[0]:
                best = stopdata.writeset
        batch = best[2] if best is not None else None
        batch_hash = best[1] if best is not None else b""
        # Pipelining: the same highest-regency rule applies independently
        # to every vouched instance beyond ``cid`` (empty at depth 1).
        extra_best: dict[int, tuple] = {}
        for stopdata in collected.values():
            for c, ws in stopdata.extra_writesets:
                if c <= cid or ws is None:
                    continue
                current = extra_best.get(c)
                if current is None or ws[0] > current[0]:
                    extra_best[c] = ws
        extra = tuple((c, extra_best[c][2], extra_best[c][1])
                      for c in sorted(extra_best))
        size = (64 + (sum(r.size for r in batch) if batch else 0)
                + sum(sum(r.size for r in b) for _c, b, _h in extra))
        replica.trace.emit(replica.sim.now, "sync-sent", replica=replica.id,
                           regency=regency, reproposed=batch is not None)
        rt = replica.runtime
        if rt.observing:
            rt.notify("sync-phase", phase="sync", regency=regency,
                      reproposed=batch is not None,
                      timeout=self.current_timeout)
        replica.broadcast_view(SyncMsg(regency=regency, cid=cid, batch=batch,
                                       batch_hash=batch_hash,
                                       collected_from=tuple(collected),
                                       extra=extra,
                                       size=size))

    def _on_sync(self, src: int, msg: SyncMsg) -> None:
        replica = self.replica
        if msg.regency != replica.regency:
            return
        if src != replica.cv.leader(msg.regency):
            return
        if not self.in_sync_phase:
            return
        self.in_sync_phase = False
        if self._sync_timer is not None:
            self._sync_timer.cancel()
            self._sync_timer = None
        self._last_progress = replica.sim.now
        replica.trace.emit(replica.sim.now, "sync-adopted", replica=replica.id,
                           regency=msg.regency)
        rt = replica.runtime
        if rt.observing:
            rt.notify("sync-phase", phase="sync-adopted", regency=msg.regency,
                      timeout=self.current_timeout)
        adopted = False
        if msg.batch is not None and msg.cid == replica.last_decided + 1:
            # Adopt the re-proposal as if it were a PROPOSE from the leader.
            unseen = [r for r in msg.batch if r.key not in replica.seen]
            if unseen:
                replica.ingest_requests(unseen)
            replica.engine.adopt_sync(msg.cid, msg.regency, msg.batch,
                                      msg.batch_hash)
            adopted = True
        # Pipelining: re-proposals for vouched instances beyond the head
        # (extras are empty at pipeline_depth=1).
        for c, batch, batch_hash in msg.extra:
            if c <= replica.last_decided or batch is None:
                continue
            unseen = [r for r in batch if r.key not in replica.seen]
            if unseen:
                replica.ingest_requests(unseen)
            replica.engine.adopt_sync(c, msg.regency, batch, batch_hash)
        if not adopted or replica.pipeline_window > 1:
            # Sequential mode: propose fresh when nothing was re-proposed.
            # Pipelined mode: also refill the rest of the window.
            replica.maybe_propose()
        self.arm_request_timer()

    # ------------------------------------------------------------------
    # Lifecycle hooks
    # ------------------------------------------------------------------
    def on_view_installed(self) -> None:
        """A reconfiguration installed a new view: regency state restarts."""
        self.in_sync_phase = False
        self._stop_votes.clear()
        self._stopdata.clear()
        self._stop_sent_for = -1
        self._synced_regency = -1
        self._last_progress = self.replica.sim.now
        self._last_decision = self.replica.sim.now
        self._failed_changes = 0
        if self._sync_timer is not None:
            self._sync_timer.cancel()
            self._sync_timer = None

    def on_crash(self) -> None:
        if self._request_timer is not None:
            self._request_timer.cancel()
            self._request_timer = None
        if self._sync_timer is not None:
            self._sync_timer.cancel()
            self._sync_timer = None
        self.in_sync_phase = False
        self._stop_votes.clear()
        self._stopdata.clear()
        self._stop_sent_for = -1
        self._failed_changes = 0
