"""NodeRuntime: typed message dispatch with interceptor chains.

Extracted from :class:`~repro.smr.replica.ModSmartReplica`, which used to
hard-code its message dispatch (an ``isinstance`` ladder in ``_on_message``)
and scatter crosscutting concerns — the ``repro.obs`` event taps, tracing,
fault hooks — through the protocol code.  The runtime makes both pluggable:

- **Typed dispatch**: protocol components (the replica itself, the
  :class:`~repro.smr.leaderchange.Synchronizer`, the
  :class:`~repro.smr.statetransfer.StateTransferEngine`, the
  :class:`~repro.core.blockchain_layer.SmartChainDelivery` PERSIST phase)
  register a handler per message type via :meth:`register_handler`; the
  network delivers into :meth:`deliver`, which dispatches on ``type(msg)``.
- **Inbound chain**: every delivered message passes through the inbound
  interceptors before dispatch; an interceptor may replace the message or
  drop it (return ``None``).
- **Outbound chain**: every transmission through :meth:`send` /
  :meth:`broadcast` passes through the outbound interceptors per
  destination; an interceptor may rewrite one transmission into zero or
  more ``(dst, msg)`` pairs — the seam for equivocation, muting, vote
  withholding, batching, compression.
- **Event taps**: protocol code emits events through :meth:`notify` behind
  an ``if runtime.observing:`` guard (same zero-cost-when-off discipline as
  the old inline ``record_events`` checks).  ``notify`` forwards to the
  run's :class:`~repro.obs.events.EventLog` when recording is on, and to
  every registered tap — which is how fault behaviors trigger off protocol
  progress (e.g. the stale-certificate replayer waits for a view change).

With no interceptors installed the runtime is a plain dict dispatch plus a
direct ``Network.send`` — fault-free runs take exactly the code path the
pre-runtime replica took, and their event exports are byte-identical.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Iterable

from repro.net.message import Message
from repro.net.network import Network
from repro.sim.engine import Simulator

__all__ = ["Interceptor", "NodeRuntime"]

Handler = Callable[[Hashable, Message], None]


class Interceptor:
    """Crosscutting hook around one node's message I/O and protocol events.

    Subclass and override what you need; the defaults are pass-through.
    Interceptors run in installation order on both chains.
    """

    def on_inbound(self, src: Hashable, msg: Message) -> Message | None:
        """Filter or replace a delivered message; return ``None`` to drop."""
        return msg

    def on_outbound(self, dst: Hashable,
                    msg: Message) -> list[tuple[Hashable, Message]]:
        """Rewrite one transmission into zero or more ``(dst, msg)`` pairs."""
        return [(dst, msg)]

    def on_event(self, kind: str, fields: dict[str, Any]) -> None:
        """Observe a protocol event emitted through the runtime."""


class NodeRuntime:
    """Message plumbing of one node: dispatch, interceptors, event taps."""

    def __init__(self, sim: Simulator, network: Network, node_id: int):
        self.sim = sim
        self.net = network
        self.id = node_id
        self.handlers: dict[type, Handler] = {}
        #: Handler for message types without a registered handler (the
        #: replica wires the state-transfer engine here); ``None`` means
        #: unknown messages are silently ignored.
        self.fallback: Handler | None = None
        #: Delivery gate: checked before any inbound processing (the
        #: replica wires its crashed check here).
        self.gate: Callable[[], bool] = _always
        self._inbound: list[Interceptor] = []
        self._outbound: list[Interceptor] = []
        self._taps: list[Interceptor] = []

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def register_handler(self, msg_type: type, fn: Handler) -> None:
        """Route messages of exactly ``msg_type`` to ``fn(src, msg)``."""
        self.handlers[msg_type] = fn

    def add_inbound(self, interceptor: Interceptor) -> None:
        self._inbound.append(interceptor)

    def add_outbound(self, interceptor: Interceptor) -> None:
        self._outbound.append(interceptor)

    def add_tap(self, interceptor: Interceptor) -> None:
        self._taps.append(interceptor)

    def install(self, interceptor: Interceptor) -> None:
        """Attach ``interceptor`` to both chains and the event taps."""
        self.add_inbound(interceptor)
        self.add_outbound(interceptor)
        self.add_tap(interceptor)

    def remove(self, interceptor: Interceptor) -> None:
        for chain in (self._inbound, self._outbound, self._taps):
            while interceptor in chain:
                chain.remove(interceptor)

    @property
    def interceptors(self) -> list[Interceptor]:
        seen: list[Interceptor] = []
        for chain in (self._inbound, self._outbound, self._taps):
            for interceptor in chain:
                if interceptor not in seen:
                    seen.append(interceptor)
        return seen

    # ------------------------------------------------------------------
    # Inbound: network delivery -> interceptors -> typed dispatch
    # ------------------------------------------------------------------
    def deliver(self, src: Hashable, msg: Message) -> None:
        """Network-facing delivery entry point (wired to the endpoint)."""
        if not self.gate():
            return
        if self._inbound:
            for interceptor in self._inbound:
                filtered = interceptor.on_inbound(src, msg)
                if filtered is None:
                    return
                msg = filtered
        handler = self.handlers.get(type(msg), self.fallback)
        if handler is not None:
            handler(src, msg)

    # ------------------------------------------------------------------
    # Outbound: interceptors -> network
    # ------------------------------------------------------------------
    def send(self, dst: Hashable, msg: Message) -> None:
        if self._outbound:
            for real_dst, real_msg in self._run_outbound(dst, msg):
                self.net.send(self.id, real_dst, real_msg)
        else:
            self.net.send(self.id, dst, msg)

    def broadcast(self, dsts: Iterable[Hashable], msg: Message) -> None:
        if self._outbound:
            for dst in dsts:
                self.send(dst, msg)
        else:
            self.net.broadcast(self.id, dsts, msg)

    def send_raw(self, dst: Hashable, msg: Message) -> None:
        """Transmit bypassing the outbound chain (used by interceptors that
        fabricate traffic, so their own output is not re-intercepted)."""
        self.net.send(self.id, dst, msg)

    def _run_outbound(self, dst: Hashable,
                      msg: Message) -> list[tuple[Hashable, Message]]:
        pairs = [(dst, msg)]
        for interceptor in self._outbound:
            rewritten: list[tuple[Hashable, Message]] = []
            for pair_dst, pair_msg in pairs:
                rewritten.extend(interceptor.on_outbound(pair_dst, pair_msg))
            pairs = rewritten
            if not pairs:
                break
        return pairs

    # ------------------------------------------------------------------
    # Protocol event taps
    # ------------------------------------------------------------------
    @property
    def observing(self) -> bool:
        """Guard for event emission: protocol code checks this before
        computing event fields, exactly like the old inline
        ``if obs.record_events:`` checks — disabled runs pay nothing."""
        return self.sim.obs.record_events or bool(self._taps)

    def notify(self, kind: str, **fields: Any) -> None:
        """Emit a protocol event from this node: recorded in the run's
        event log (when recording is on) and fanned to every tap."""
        obs = self.sim.obs
        if obs.record_events:
            obs.events.emit(kind, self.id, self.sim.now, **fields)
        for tap in self._taps:
            tap.on_event(kind, fields)


def _always() -> bool:
    return True
