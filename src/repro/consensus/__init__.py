"""VP-Consensus: the Byzantine consensus primitive under Mod-SMaRt."""

from repro.consensus.instance import ConsensusInstance, Phase
from repro.consensus.messages import (
    AcceptMsg,
    ProposeMsg,
    StopDataMsg,
    StopMsg,
    SyncMsg,
    WriteMsg,
    batch_wire_size,
)

__all__ = [
    "ConsensusInstance",
    "Phase",
    "AcceptMsg",
    "ProposeMsg",
    "StopDataMsg",
    "StopMsg",
    "SyncMsg",
    "WriteMsg",
    "batch_wire_size",
]
