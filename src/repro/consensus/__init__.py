"""Pluggable Byzantine consensus: the engine API and its implementations.

The public surface of this package is the engine seam (see
``docs/engines.md``): :class:`ConsensusEngine` plus the registry
functions, and the two shipped engines — Mod-SMaRt's three-round
VP-Consensus (the default) and the two-round n = 5f−1 fast path.
:class:`ConsensusInstance` remains exported for Mod-SMaRt's per-instance
bookkeeping (it is unit-tested directly); the message dataclasses are
exported for fault behaviors and tests that inspect the wire.
"""

from repro.consensus.engine import (
    ENGINES,
    ConsensusEngine,
    EngineError,
    create_engine,
    engine_names,
    register_engine,
)
from repro.consensus.fastbft import FastBftEngine
from repro.consensus.instance import ConsensusInstance, Phase
from repro.consensus.messages import (
    AcceptMsg,
    FastCommitMsg,
    FastVoteMsg,
    ProposeMsg,
    StopDataMsg,
    StopMsg,
    SyncMsg,
    WriteMsg,
    batch_wire_size,
)
from repro.consensus.modsmart import ModSmartEngine

__all__ = [
    # Engine API (the seam everything above consensus depends on).
    "ConsensusEngine",
    "EngineError",
    "ENGINES",
    "register_engine",
    "create_engine",
    "engine_names",
    "ModSmartEngine",
    "FastBftEngine",
    # Mod-SMaRt bookkeeping.
    "ConsensusInstance",
    "Phase",
    # Wire messages.
    "AcceptMsg",
    "ProposeMsg",
    "FastVoteMsg",
    "FastCommitMsg",
    "StopDataMsg",
    "StopMsg",
    "SyncMsg",
    "WriteMsg",
    "batch_wire_size",
]
