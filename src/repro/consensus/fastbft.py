"""FastBFT: a 2-round good-case engine at n = 5f−1.

The second :class:`~repro.consensus.engine.ConsensusEngine` — the proof
that the stack above consensus is protocol-agnostic.  It reproduces the
good-case pattern of Abraham, Nayak, Ren & Xiang ("Good-case Latency of
Byzantine Broadcast", PAPERS.md): with n ≥ 5f−1 replicas, agreement can
finish in two message rounds instead of Mod-SMaRt's three.

Normal case
-----------
1. The leader broadcasts PROPOSE (the batch).
2. Every replica broadcasts one signed FAST-VOTE for the first proposal
   it sees from the current leader.
3. A **fast quorum** qf = ⌈(n+3f−1)/2⌉ of matching votes decides; the
   vote signatures are the decision proof.

Slow path
---------
When votes arrive but the fast quorum cannot form (a withholder, a slow
link), any replica holding a **classic quorum** qs = ⌈(n+f+1)/2⌉ of
matching votes waits a short grace period and then broadcasts a signed
FAST-COMMIT; qs matching commits decide (one extra round, PBFT-style).
If not even the classic quorum forms — an equivocating leader splitting
the correct replicas — nothing decides and the ordinary Mod-SMaRt
synchronization phase (STOP/STOPDATA/SYNC, unchanged) replaces the
leader; the writeset reported in STOPDATA is the value this replica
fast-voted for.

Safety sketch (why these quorums)
---------------------------------
With f = ⌊(n+1)/5⌋ (so n ≥ 5f−1 with equality for the showcase sizes):

- two fast quorums intersect in ≥ 2·qf − n ≥ 3f−1 > f replicas, so in a
  correct one — and a correct replica fast-votes one value per instance;
- a fast and a classic quorum intersect in ≥ qf + qs − n ≥ 2f > f;
- two classic quorums intersect in ≥ f+1 > f (the usual argument).

Hence no two conflicting decisions, on either path, in the same regency;
across regencies the synchronization phase re-proposes the highest
vouched writeset exactly as for Mod-SMaRt.  For n=4 (f=1) the fast and
classic quorums coincide at 3; n=9 (f=2) shows the split: qf=7, qs=6.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.consensus.engine import ConsensusEngine, register_engine
from repro.consensus.messages import (
    FastCommitMsg,
    FastVoteMsg,
    ProposeMsg,
    batch_wire_size,
)
from repro.crypto.hashing import hash_obj, hash_obj_cached
from repro.crypto.keys import Signature
from repro.net.message import Message
from repro.smr.requests import Decision

if TYPE_CHECKING:  # pragma: no cover
    from repro.smr.requests import ClientRequest
    from repro.smr.views import View

__all__ = ["FastBftEngine", "FastInstance"]

#: Grace period before falling back to the slow path once a classic (but
#: not fast) quorum of votes is held — long enough for straggler votes of
#: a healthy round, short against the request timeout.
SLOW_PATH_GRACE = 0.002


class FastInstance:
    """Vote/commit bookkeeping for one consensus id at one replica."""

    def __init__(self, cid: int):
        self.cid = cid
        self.regency: int | None = None
        self.batch: "list[ClientRequest] | None" = None
        self.batch_hash: bytes | None = None
        #: hash -> {replica: signature} for each round.
        self.votes: dict[bytes, dict[int, Signature]] = {}
        self.commits: dict[bytes, dict[int, Signature]] = {}
        self.voted = False
        self.committed = False
        self.decided = False
        self.decided_hash: bytes | None = None
        #: (regency, hash, batch) this replica fast-voted for (STOPDATA).
        self.writeset: tuple[int, bytes, list] | None = None
        self.slow_timer = None

    def cancel_timer(self) -> None:
        if self.slow_timer is not None:
            self.slow_timer.cancel()
            self.slow_timer = None

    def reset_for_regency(self, regency: int) -> None:
        """Leader change: tallies restart, the writeset is preserved."""
        self.regency = regency
        self.batch = None
        self.batch_hash = None
        self.votes.clear()
        self.commits.clear()
        self.voted = False
        self.committed = False
        self.cancel_timer()

    def reset_for_view(self) -> None:
        """View change: old-view signatures are void; the batch is kept."""
        self.votes.clear()
        self.commits.clear()
        self.voted = False
        self.committed = False
        self.cancel_timer()


class FastBftEngine(ConsensusEngine):
    """Two-round fast path at n = 5f−1 with a PBFT-style slow path."""

    name = "fastbft"
    phases = ("vote", "commit")
    #: Per-cid FastInstance tallies are independent, so concurrent
    #: instances compose exactly as in Mod-SMaRt; the same sanity cap.
    max_pipeline = 16

    def __init__(self) -> None:
        super().__init__()
        self.instances: dict[int, FastInstance] = {}
        self.future_proposals: dict[int, tuple[int, ProposeMsg]] = {}
        # Statistics (surface in bench metrics).
        self.fast_decisions = 0
        self.slow_decisions = 0

    # ------------------------------------------------------------------
    # Quorum policy: n = 5f−1 arithmetic
    # ------------------------------------------------------------------
    def fault_threshold(self, n: int) -> int:
        """Largest f with n ≥ 5f−1 (and always n ≥ 3f+1)."""
        return min((n + 1) // 5, (n - 1) // 3)

    def quorum(self, n: int) -> int:
        """Classic quorum ⌈(n+f+1)/2⌉ — slow path, replies, certificates."""
        return (n + self.fault_threshold(n) + 2) // 2

    def fast_quorum(self, n: int) -> int:
        """Fast quorum ⌈(n+3f−1)/2⌉ — two-round decisions."""
        return (n + 3 * self.fault_threshold(n)) // 2

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def attach(self, replica) -> None:
        super().attach(replica)
        replica.runtime.register_handler(ProposeMsg, self._on_propose)
        replica.runtime.register_handler(FastVoteMsg, self._on_vote)
        replica.runtime.register_handler(FastCommitMsg, self._on_commit)

    def propose(self, batch: "list[ClientRequest]",
                cid: int | None = None) -> None:
        replica = self.replica
        if cid is None:
            cid = replica.last_decided + 1
        batch_hash = hash_obj([r.to_canonical() for r in batch])
        replica.inflight.update(r.key for r in batch)
        msg = ProposeMsg(cid=cid, regency=replica.regency, batch=batch,
                         batch_hash=batch_hash, size=batch_wire_size(batch))
        replica.trace.emit(replica.sim.now, "propose", replica=replica.id,
                           cid=cid, batch=len(batch))
        obs = replica.sim.obs
        if obs.trace_pipeline and replica.id == obs.pipeline_node:
            now = replica.sim.now
            obs.tracer.mark_cid(cid, "propose", now)
            for req in batch:
                if obs.trace_request(req.key, "batch", now):
                    obs.tracer.bind(req.key, cid)
        replica.broadcast_view(msg)

    def has_open_proposal(self, cid: int) -> bool:
        instance = self.instances.get(cid)
        return instance is not None and instance.batch_hash is not None

    def on_delivered(self, cid: int) -> None:
        instance = self.instances.pop(cid, None)
        if instance is not None:
            instance.cancel_timer()

    def on_view_installed(self, new_view: "View") -> None:
        replica = self.replica
        members = set(new_view.members)
        for cid in list(self.instances):
            if cid <= replica.last_decided:
                continue
            instance = self.instances[cid]
            if instance.decided:
                continue
            instance.reset_for_view()
            if (instance.batch_hash is not None
                    and replica.active and replica.id in members):
                self._send_vote(instance)

    def on_crash(self) -> None:
        for instance in self.instances.values():
            instance.cancel_timer()
        self.instances.clear()
        self.future_proposals.clear()

    # ------------------------------------------------------------------
    # Buffered out-of-order proposals
    # ------------------------------------------------------------------
    def kick_pending(self) -> None:
        replica = self.replica
        # Same windowed re-scan as ModSmartEngine.kick_pending: everything
        # now inside the processing window is eligible, and processing can
        # advance last_decided, so loop until a pass pops nothing.
        while True:
            limit = replica.last_decided + replica.pipeline_window
            eligible = sorted(c for c in self.future_proposals
                              if c <= limit)
            if not eligible:
                return
            for c in eligible:
                pending = self.future_proposals.pop(c, None)
                if pending is not None and c > replica.last_decided:
                    self._process_propose(*pending)

    def earliest_buffered(self) -> int | None:
        return min(self.future_proposals) if self.future_proposals else None

    def discard_through(self, cid: int) -> None:
        self.future_proposals = {
            c: p for c, p in self.future_proposals.items() if c > cid}
        for c in [c for c in self.instances if c <= cid]:
            self.instances.pop(c).cancel_timer()

    # ------------------------------------------------------------------
    # Synchronization-phase hooks
    # ------------------------------------------------------------------
    def abandon_regency(self, cid: int, regency: int):
        instance = self.instances.get(cid)
        if instance is None:
            return None
        writeset = instance.writeset
        instance.reset_for_regency(regency)
        return writeset

    def adopt_sync(self, cid: int, regency: int,
                   batch: "list[ClientRequest]", batch_hash: bytes) -> None:
        instance = self._instance(cid)
        if instance.decided or instance.batch_hash is not None:
            return
        instance.regency = regency
        instance.batch = batch
        instance.batch_hash = batch_hash
        self._phase_event(cid, "proposed", batch_hash)
        if self.replica.active:
            self._send_vote(instance)

    # ------------------------------------------------------------------
    # Fault-injection hooks
    # ------------------------------------------------------------------
    def vote_phase_of(self, msg_type: type) -> str | None:
        return {FastVoteMsg: "vote", FastCommitMsg: "commit"}.get(msg_type)

    def value_bearing_types(self) -> tuple[type, ...]:
        return (ProposeMsg, FastVoteMsg)

    def fabricate_votes(self, cid: int, regency: int,
                        batch_hash: bytes) -> list[Message]:
        key = self.replica.consensus_key()
        if key.is_erased:
            return []
        vote_sig = key.sign(hash_obj(("fastvote", cid, batch_hash)))
        commit_sig = key.sign(hash_obj(("fastcommit", cid, batch_hash)))
        return [
            FastVoteMsg(cid=cid, regency=regency, batch_hash=batch_hash,
                        signature=vote_sig),
            FastCommitMsg(cid=cid, regency=regency, batch_hash=batch_hash,
                          signature=commit_sig),
        ]

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def _instance(self, cid: int) -> FastInstance:
        instance = self.instances.get(cid)
        if instance is None:
            instance = FastInstance(cid)
            self.instances[cid] = instance
        return instance

    def _phase_event(self, cid: int, phase: str,
                     batch_hash: bytes | None) -> None:
        rt = self.replica.runtime
        if rt.observing:
            rt.notify("consensus-phase", cid=cid, phase=phase,
                      batch_hash=(batch_hash or b"").hex())

    def _on_propose(self, src: int, msg: ProposeMsg) -> None:
        replica = self.replica
        if msg.cid <= replica.last_decided:
            return
        if msg.cid > replica.last_decided + replica.pipeline_window:
            self.future_proposals[msg.cid] = (src, msg)
            replica.arm_gap_check()
            return
        self._process_propose(src, msg)

    def _process_propose(self, src: int, msg: ProposeMsg) -> None:
        replica = self.replica
        if src != replica.cv.leader(msg.regency):
            return
        if msg.regency != replica.regency:
            return
        unseen = [r for r in msg.batch if r.key not in replica.seen]
        if unseen:
            replica.ingest_requests(unseen)
        instance = self._instance(msg.cid)
        if instance.decided:
            return
        if (instance.batch_hash is not None
                and instance.batch_hash != msg.batch_hash):
            return  # conflicting proposal: first one wins locally
        first = instance.batch_hash is None
        instance.regency = msg.regency
        instance.batch = msg.batch
        instance.batch_hash = msg.batch_hash
        if first:
            self._phase_event(msg.cid, "proposed", msg.batch_hash)
            if replica.active:
                obs = replica.sim.obs
                if obs.trace_pipeline:
                    obs.trace_cid(replica.id, msg.cid, "write",
                                  replica.sim.now)
                self._send_vote(instance)
        # A lagging replica may hold a quorum of votes/commits that was
        # waiting only for the batch itself.
        self._maybe_decide(instance)

    def _send_vote(self, instance: FastInstance) -> None:
        if instance.voted:
            return
        instance.voted = True
        replica = self.replica
        cid, regency = instance.cid, instance.regency or 0
        batch_hash = instance.batch_hash
        # The value this replica vouches for: reported in STOPDATA so a
        # new leader must re-propose any possibly-decided value.
        instance.writeset = (regency, batch_hash, instance.batch)
        key = replica.consensus_key()
        payload = hash_obj_cached(("fastvote", cid, batch_hash))

        def signed() -> None:
            if key.is_erased:
                return
            vote = FastVoteMsg(cid=cid, regency=regency,
                               batch_hash=batch_hash,
                               signature=key.sign(payload))
            replica.broadcast_view(vote)
        replica.charge_pool(replica.costs.crypto.sign_time, signed)

    def _on_vote(self, src: int, msg: FastVoteMsg) -> None:
        self._tally(src, msg, "fastvote", self._count_vote)

    def _on_commit(self, src: int, msg: FastCommitMsg) -> None:
        self._tally(src, msg, "fastcommit", self._count_commit)

    def _tally(self, src: int, msg, tag: str, count) -> None:
        """Verify the signature on the pool, then tally the round."""
        replica = self.replica
        if msg.cid <= replica.last_decided:
            return
        if msg.signature is None:
            return
        public = replica.keydir.lookup(replica.cv.view_id, src)
        if public is None:
            return
        payload = hash_obj_cached((tag, msg.cid, msg.batch_hash))

        def verified() -> None:
            if not replica.registry.verify(public, payload, msg.signature):
                replica.trace.emit(replica.sim.now, f"bad-{tag}-signature",
                                   replica=replica.id, src=src, cid=msg.cid)
                return
            if msg.cid <= replica.last_decided:
                return
            count(src, msg)
        replica.charge_pool(replica.costs.crypto.verify_time, verified)

    def _count_vote(self, src: int, msg: FastVoteMsg) -> None:
        instance = self._instance(msg.cid)
        if instance.decided:
            return
        votes = instance.votes.setdefault(msg.batch_hash, {})
        if src in votes:
            return
        votes[src] = msg.signature
        self._maybe_decide(instance)
        if instance.decided:
            return
        # Slow path: a classic quorum formed but the fast quorum has not —
        # give straggler votes a grace period, then commit.
        n = self.replica.cv.n
        if (len(votes) >= self.quorum(n)
                and instance.batch_hash == msg.batch_hash
                and not instance.committed
                and instance.slow_timer is None):
            instance.slow_timer = self.replica.sim.schedule(
                SLOW_PATH_GRACE, self.replica.guard(self._slow_path),
                instance)

    def _slow_path(self, instance: FastInstance) -> None:
        instance.slow_timer = None
        if instance.decided or instance.committed:
            return
        replica = self.replica
        batch_hash = instance.batch_hash
        if batch_hash is None or not replica.active:
            return
        votes = instance.votes.get(batch_hash, {})
        if len(votes) < self.quorum(replica.cv.n):
            return
        instance.committed = True
        cid, regency = instance.cid, instance.regency or 0
        self._phase_event(cid, "committed", batch_hash)
        key = replica.consensus_key()
        payload = hash_obj_cached(("fastcommit", cid, batch_hash))

        def signed() -> None:
            if key.is_erased:
                return
            commit = FastCommitMsg(cid=cid, regency=regency,
                                   batch_hash=batch_hash,
                                   signature=key.sign(payload))
            replica.broadcast_view(commit)
        replica.charge_pool(replica.costs.crypto.sign_time, signed)

    def _count_commit(self, src: int, msg: FastCommitMsg) -> None:
        instance = self._instance(msg.cid)
        if instance.decided:
            return
        commits = instance.commits.setdefault(msg.batch_hash, {})
        if src in commits:
            return
        commits[src] = msg.signature
        self._maybe_decide(instance)

    def _maybe_decide(self, instance: FastInstance) -> None:
        """Decide once either quorum is complete *and* the batch is known."""
        if instance.decided or instance.batch is None:
            return
        batch_hash = instance.batch_hash
        n = self.replica.cv.n
        votes = instance.votes.get(batch_hash, {})
        commits = instance.commits.get(batch_hash, {})
        if len(votes) >= self.fast_quorum(n):
            proof, fast = dict(votes), True
        elif len(commits) >= self.quorum(n):
            proof, fast = dict(commits), False
        else:
            return
        instance.decided = True
        instance.decided_hash = batch_hash
        instance.cancel_timer()
        if fast:
            self.fast_decisions += 1
        else:
            self.slow_decisions += 1
        self._phase_event(instance.cid, "decided", batch_hash)
        replica = self.replica
        replica.handle_decision(Decision(
            cid=instance.cid,
            batch=instance.batch,
            proof=proof,
            batch_hash=batch_hash or b"",
            regency=replica.regency,
            decided_at=replica.sim.now,
        ))


register_engine("fastbft", FastBftEngine)
