"""Mod-SMaRt's VP-Consensus repackaged as the default ConsensusEngine.

The protocol is unchanged from the pre-engine replica (Section II-C /
Figure 1 of the paper): PROPOSE carries the batch, WRITE echoes its hash,
ACCEPT is signed and a ⌈(n+f+1)/2⌉ quorum of ACCEPTs decides the instance
and forms the decision proof.  The per-instance vote bookkeeping stays in
:class:`~repro.consensus.instance.ConsensusInstance`.

Fault-free runs take exactly the code path the pre-engine replica took —
same hash-cache keys, same pool charges, same message and event order —
so event exports and bench results are byte-identical to the committed
baselines.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.consensus.engine import ConsensusEngine, register_engine
from repro.consensus.instance import ConsensusInstance, Phase
from repro.consensus.messages import (
    AcceptMsg,
    ProposeMsg,
    WriteMsg,
    batch_wire_size,
)
from repro.crypto.hashing import hash_obj, hash_obj_cached
from repro.errors import ConsensusError
from repro.net.message import Message
from repro.smr.requests import Decision

if TYPE_CHECKING:  # pragma: no cover
    from repro.smr.requests import ClientRequest
    from repro.smr.views import View

__all__ = ["ModSmartEngine"]


class ModSmartEngine(ConsensusEngine):
    """Three-round VP-Consensus (PROPOSE / WRITE / signed-ACCEPT)."""

    name = "modsmart"
    phases = ("write", "accept")
    #: Instances tally independently (per-cid ConsensusInstance objects),
    #: so the protocol itself places no bound on concurrent instances; 16
    #: is a sanity cap matching BFT-SMART's pending-request bookkeeping.
    max_pipeline = 16

    def __init__(self) -> None:
        super().__init__()
        self.instances: dict[int, ConsensusInstance] = {}
        self.future_proposals: dict[int, tuple[int, ProposeMsg]] = {}

    # ------------------------------------------------------------------
    # Quorum policy: classic n = 3f+1 arithmetic
    # ------------------------------------------------------------------
    def fault_threshold(self, n: int) -> int:
        return (n - 1) // 3

    def quorum(self, n: int) -> int:
        """Byzantine dissemination quorum ⌈(n+f+1)/2⌉ ≥ 2f+1."""
        return (n + self.fault_threshold(n) + 2) // 2

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def attach(self, replica) -> None:
        super().attach(replica)
        replica.runtime.register_handler(ProposeMsg, self._on_propose)
        replica.runtime.register_handler(WriteMsg, self._on_write)
        replica.runtime.register_handler(AcceptMsg, self._on_accept)

    def propose(self, batch: "list[ClientRequest]",
                cid: int | None = None) -> None:
        replica = self.replica
        if cid is None:
            cid = replica.last_decided + 1
        batch_hash = hash_obj([r.to_canonical() for r in batch])
        replica.inflight.update(r.key for r in batch)
        msg = ProposeMsg(cid=cid, regency=replica.regency, batch=batch,
                         batch_hash=batch_hash, size=batch_wire_size(batch))
        replica.trace.emit(replica.sim.now, "propose", replica=replica.id,
                           cid=cid, batch=len(batch))
        obs = replica.sim.obs
        if obs.trace_pipeline and replica.id == obs.pipeline_node:
            now = replica.sim.now
            obs.tracer.mark_cid(cid, "propose", now)
            for req in batch:
                if obs.trace_request(req.key, "batch", now):
                    obs.tracer.bind(req.key, cid)
        replica.broadcast_view(msg)

    def has_open_proposal(self, cid: int) -> bool:
        instance = self.instances.get(cid)
        return instance is not None and instance.batch_hash is not None

    def on_delivered(self, cid: int) -> None:
        self.instances.pop(cid, None)

    def on_view_installed(self, new_view: "View") -> None:
        replica = self.replica
        members = set(new_view.members)
        quorum = self.quorum(new_view.n)
        for cid in list(self.instances):
            if cid <= replica.last_decided:
                continue
            # Old-view votes are void — their ACCEPT signatures used the
            # now-rotated consensus keys — so the tallies restart (the
            # proposed batch is kept).  Re-voting under the new view lets
            # the quorum re-form with the new membership and fresh keys.
            instance = self.instances[cid]
            instance.reset_for_view(quorum)
            if (instance.batch_hash is not None and not instance.decided
                    and replica.active and replica.id in members):
                replica.broadcast_view(WriteMsg(
                    cid=cid, regency=replica.regency,
                    batch_hash=instance.batch_hash))

    def on_crash(self) -> None:
        self.instances.clear()
        self.future_proposals.clear()

    # ------------------------------------------------------------------
    # Buffered out-of-order proposals
    # ------------------------------------------------------------------
    def kick_pending(self) -> None:
        replica = self.replica
        # Every buffered proposal that now falls inside the processing
        # window becomes eligible (the whole window at pipeline depth > 1;
        # exactly last_decided + 1 in sequential mode).  Processing one may
        # advance last_decided, so re-scan until a pass pops nothing.
        while True:
            limit = replica.last_decided + replica.pipeline_window
            eligible = sorted(c for c in self.future_proposals
                              if c <= limit)
            if not eligible:
                return
            for c in eligible:
                pending = self.future_proposals.pop(c, None)
                if pending is not None and c > replica.last_decided:
                    self._process_propose(*pending)

    def earliest_buffered(self) -> int | None:
        return min(self.future_proposals) if self.future_proposals else None

    def discard_through(self, cid: int) -> None:
        self.future_proposals = {
            c: p for c, p in self.future_proposals.items() if c > cid}
        # Drop instance bookkeeping a state transfer made obsolete (with
        # pipelining several stale instances may be open at once).
        for c in [c for c in self.instances if c <= cid]:
            del self.instances[c]

    # ------------------------------------------------------------------
    # Synchronization-phase hooks
    # ------------------------------------------------------------------
    def abandon_regency(self, cid: int, regency: int):
        instance = self.instances.get(cid)
        if instance is None:
            return None
        writeset = instance.writeset
        instance.reset_for_regency(regency)
        return writeset

    def adopt_sync(self, cid: int, regency: int,
                   batch: "list[ClientRequest]", batch_hash: bytes) -> None:
        instance = self._instance(cid)
        if instance.on_propose(regency, batch, batch_hash):
            self.replica.broadcast_view(
                WriteMsg(cid=cid, regency=regency, batch_hash=batch_hash))

    # ------------------------------------------------------------------
    # Fault-injection hooks
    # ------------------------------------------------------------------
    def vote_phase_of(self, msg_type: type) -> str | None:
        return {WriteMsg: "write", AcceptMsg: "accept"}.get(msg_type)

    def value_bearing_types(self) -> tuple[type, ...]:
        return (ProposeMsg, WriteMsg)

    def fabricate_votes(self, cid: int, regency: int,
                        batch_hash: bytes) -> list[Message]:
        key = self.replica.consensus_key()
        if key.is_erased:
            return []
        signature = key.sign(hash_obj(("accept", cid, batch_hash)))
        return [
            WriteMsg(cid=cid, regency=regency, batch_hash=batch_hash),
            AcceptMsg(cid=cid, regency=regency, batch_hash=batch_hash,
                      signature=signature),
        ]

    # ------------------------------------------------------------------
    # Consensus message handling (verbatim from the pre-engine replica)
    # ------------------------------------------------------------------
    def _instance(self, cid: int) -> ConsensusInstance:
        instance = self.instances.get(cid)
        if instance is None:
            replica = self.replica
            observer = (self._consensus_event
                        if replica.runtime.observing else None)
            instance = ConsensusInstance(cid, replica.quorum,
                                         observer=observer)
            self.instances[cid] = instance
        return instance

    def _consensus_event(self, cid: int, phase: str,
                         batch_hash: bytes | None) -> None:
        rt = self.replica.runtime
        if rt.observing:
            rt.notify("consensus-phase", cid=cid, phase=phase,
                      batch_hash=(batch_hash or b"").hex())

    def _on_propose(self, src: int, msg: ProposeMsg) -> None:
        replica = self.replica
        if msg.cid <= replica.last_decided:
            return
        if msg.cid > replica.last_decided + replica.pipeline_window:
            # Beyond the processing window (the next instance in sequential
            # mode): hold until this replica catches up.
            self.future_proposals[msg.cid] = (src, msg)
            replica.arm_gap_check()
            return
        self._process_propose(src, msg)

    def _process_propose(self, src: int, msg: ProposeMsg) -> None:
        replica = self.replica
        if src != replica.cv.leader(msg.regency):
            return  # not from the leader of that regency
        if msg.regency != replica.regency:
            return
        # Adopt requests we have not seen from stations yet (and verify them).
        unseen = [r for r in msg.batch if r.key not in replica.seen]
        if unseen:
            replica.ingest_requests(unseen)
        instance = self._instance(msg.cid)
        if instance.on_propose(msg.regency, msg.batch, msg.batch_hash):
            if replica.active:
                write = WriteMsg(cid=msg.cid, regency=msg.regency,
                                 batch_hash=msg.batch_hash)
                obs = replica.sim.obs
                if obs.trace_pipeline:
                    obs.trace_cid(replica.id, msg.cid, "write",
                                  replica.sim.now)
                replica.broadcast_view(write)
        # A lagging replica may already hold a quorum of ACCEPTs that was
        # waiting only for the batch itself.
        if (not instance.decided
                and instance.accept_count(msg.batch_hash) >= replica.quorum):
            instance.phase = Phase.DECIDED
            instance.decided_hash = msg.batch_hash
            self._on_instance_decided(instance)

    def _on_write(self, src: int, msg: WriteMsg) -> None:
        replica = self.replica
        if msg.cid <= replica.last_decided:
            return
        if msg.regency != replica.regency and replica.active:
            return
        instance = self._instance(msg.cid)
        if instance.on_write(src, msg.batch_hash) and replica.active:
            self._send_accept(instance, msg)

    def _send_accept(self, instance: ConsensusInstance,
                     write: WriteMsg) -> None:
        replica = self.replica
        instance.record_accept_sent(write.regency)
        key = replica.consensus_key()
        # Memoized: every replica derives the same payload for this (cid,
        # hash) — once per simulation instead of once per replica per vote.
        payload = hash_obj_cached(("accept", write.cid, write.batch_hash))
        # Signing happens on the crypto pool (it would block a protocol
        # thread, not the state machine).
        def signed() -> None:
            if key.is_erased:
                # A view change rotated the keys while this job was queued;
                # the instance will be re-run under the new view.
                return
            signature = key.sign(payload)
            accept = AcceptMsg(cid=write.cid, regency=write.regency,
                               batch_hash=write.batch_hash,
                               signature=signature)
            replica.broadcast_view(accept)
        replica.charge_pool(replica.costs.crypto.sign_time, signed)

    def _on_accept(self, src: int, msg: AcceptMsg) -> None:
        replica = self.replica
        if msg.cid <= replica.last_decided:
            return
        if msg.signature is None:
            return
        public = replica.keydir.lookup(replica.cv.view_id, src)
        if public is None:
            return
        payload = hash_obj_cached(("accept", msg.cid, msg.batch_hash))
        # Verify on the pool, then tally.
        def verified() -> None:
            if not replica.registry.verify(public, payload, msg.signature):
                replica.trace.emit(replica.sim.now, "bad-accept-signature",
                                   replica=replica.id, src=src, cid=msg.cid)
                return
            if msg.cid <= replica.last_decided:
                return
            instance = self._instance(msg.cid)
            if instance.on_accept(src, msg.batch_hash, msg.signature):
                self._on_instance_decided(instance)
        replica.charge_pool(replica.costs.crypto.verify_time, verified)

    def _on_instance_decided(self, instance: ConsensusInstance) -> None:
        replica = self.replica
        if instance.batch is None:
            raise ConsensusError(
                f"replica {replica.id} decided cid {instance.cid} "
                "without a batch")
        decision = Decision(
            cid=instance.cid,
            batch=instance.batch,
            proof=instance.decision_proof(),
            batch_hash=instance.decided_hash or b"",
            regency=replica.regency,
            decided_at=replica.sim.now,
        )
        replica.handle_decision(decision)


register_engine("modsmart", ModSmartEngine)
