"""Per-instance consensus bookkeeping (VP-Consensus / Byzantine Paxos).

One :class:`ConsensusInstance` tracks the PROPOSE/WRITE/ACCEPT progress of a
single consensus id at a single replica.  The replica drives transitions; the
instance only counts votes and enforces quorum rules, which keeps the state
machine testable in isolation.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Callable

from repro.crypto.keys import Signature

if TYPE_CHECKING:  # pragma: no cover - avoid the smr <-> consensus cycle
    from repro.smr.requests import ClientRequest

__all__ = ["Phase", "ConsensusInstance"]


class Phase(enum.Enum):
    IDLE = "idle"
    PROPOSED = "proposed"    # batch received, WRITE sent
    ACCEPTED = "accepted"    # WRITE quorum seen, ACCEPT sent
    DECIDED = "decided"


class ConsensusInstance:
    """Vote-counting state for consensus instance ``cid`` at one replica.

    ``observer``, when set, is called as ``observer(cid, phase_name,
    batch_hash)`` on every phase advance (the replica wires it to the
    protocol event stream when event recording is on; ``None`` keeps the
    hot path free of any observability cost).
    """

    def __init__(self, cid: int, quorum: int,
                 observer: Callable[[int, str, bytes | None], None] | None = None):
        self.cid = cid
        self.quorum = quorum
        self.observer = observer
        self.phase = Phase.IDLE
        self.regency: int | None = None
        self.batch: list[ClientRequest] | None = None
        self.batch_hash: bytes | None = None
        # hash -> set of replicas that sent WRITE for it
        self.writes: dict[bytes, set[int]] = {}
        # hash -> {replica: signature} from ACCEPT messages
        self.accepts: dict[bytes, dict[int, Signature]] = {}
        #: Value this replica ACCEPTed, with the regency it did so in —
        #: reported in STOPDATA during a leader change.
        self.writeset: tuple[int, bytes, list[ClientRequest]] | None = None
        self.decided_hash: bytes | None = None

    # ------------------------------------------------------------------
    # Transitions (return True when the event advances the phase)
    # ------------------------------------------------------------------
    def on_propose(self, regency: int, batch: list[ClientRequest],
                   batch_hash: bytes) -> bool:
        """Record the leader's proposal; returns True if a WRITE should be sent."""
        if self.phase is Phase.DECIDED:
            return False
        if self.batch_hash is not None and self.batch_hash != batch_hash:
            # A conflicting proposal for the same instance: ignore (the
            # first one wins locally; equivocation is resolved by quorums).
            return False
        self.regency = regency
        self.batch = batch
        self.batch_hash = batch_hash
        if self.phase is Phase.IDLE:
            self.phase = Phase.PROPOSED
            self._notify("proposed", batch_hash)
            return True
        return False

    def on_write(self, sender: int, batch_hash: bytes) -> bool:
        """Count a WRITE; returns True when the quorum is first reached
        (the replica should then send its signed ACCEPT)."""
        voters = self.writes.setdefault(batch_hash, set())
        if sender in voters:
            return False
        voters.add(sender)
        if (len(voters) >= self.quorum
                and self.phase in (Phase.IDLE, Phase.PROPOSED)
                and self.batch_hash == batch_hash):
            self.phase = Phase.ACCEPTED
            self._notify("accepted", batch_hash)
            return True
        return False

    def record_accept_sent(self, regency: int) -> None:
        """Remember the value we vouched for (used in STOPDATA)."""
        if self.batch_hash is not None and self.batch is not None:
            self.writeset = (regency, self.batch_hash, self.batch)

    def on_accept(self, sender: int, batch_hash: bytes,
                  signature: Signature) -> bool:
        """Count a signed ACCEPT; returns True when the decision quorum is
        first reached."""
        votes = self.accepts.setdefault(batch_hash, {})
        if sender in votes:
            return False
        votes[sender] = signature
        if (len(votes) >= self.quorum
                and self.phase is not Phase.DECIDED
                and self.batch_hash == batch_hash):
            self.phase = Phase.DECIDED
            self.decided_hash = batch_hash
            self._notify("decided", batch_hash)
            return True
        return False

    def _notify(self, phase_name: str, batch_hash: bytes | None) -> None:
        if self.observer is not None:
            self.observer(self.cid, phase_name, batch_hash)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def decided(self) -> bool:
        return self.phase is Phase.DECIDED

    def decision_proof(self) -> dict[int, Signature]:
        """Quorum of ACCEPT signatures for the decided hash."""
        if self.decided_hash is None:
            return {}
        return dict(self.accepts.get(self.decided_hash, {}))

    def write_count(self, batch_hash: bytes) -> int:
        return len(self.writes.get(batch_hash, ()))

    def accept_count(self, batch_hash: bytes) -> int:
        return len(self.accepts.get(batch_hash, ()))

    def reset_for_view(self, quorum: int) -> None:
        """Re-arm the instance after a view change (reconfiguration).

        Votes cast in the old view are discarded — their ACCEPT signatures
        were made with now-rotated consensus keys, so they can never count
        toward a certificate in the new view — but the proposed batch is
        kept: wiping it would lose an in-flight proposal to the
        view-change race.
        """
        self.quorum = quorum
        self.writes.clear()
        self.accepts.clear()
        if self.phase is not Phase.DECIDED:
            self.phase = (Phase.PROPOSED if self.batch_hash is not None
                          else Phase.IDLE)

    def reset_for_regency(self, regency: int) -> None:
        """Re-arm the instance after a leader change.

        WRITE/ACCEPT tallies restart for the new regency, but the writeset
        (the value this replica vouched for) is preserved — it is the
        safety-critical piece the new leader collects.
        """
        self.phase = Phase.IDLE
        self.regency = regency
        self.batch = None
        self.batch_hash = None
        self.writes.clear()
        self.accepts.clear()
