"""VP-Consensus and synchronization-phase wire messages.

The normal-case pattern follows Figure 1 of the paper (and PBFT):
PROPOSE carries the batch, WRITE echoes its hash, ACCEPT is signed and a
quorum of ACCEPTs forms the decision proof.  STOP / STOPDATA / SYNC
implement Mod-SMaRt's synchronization phase (leader change).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from typing import TYPE_CHECKING

from repro.crypto.keys import Signature
from repro.net.message import Message

if TYPE_CHECKING:  # pragma: no cover - avoid the smr <-> consensus cycle
    from repro.smr.requests import ClientRequest

__all__ = [
    "ProposeMsg",
    "WriteMsg",
    "AcceptMsg",
    "FastVoteMsg",
    "FastCommitMsg",
    "StopMsg",
    "StopDataMsg",
    "SyncMsg",
    "batch_wire_size",
]

#: Serialized overhead of consensus message headers, bytes.
_CONSENSUS_HEADER = 48


def batch_wire_size(batch: list[ClientRequest]) -> int:
    """Wire size of a proposed batch: payload plus per-request framing."""
    return sum(req.size for req in batch) + 16 * len(batch) + _CONSENSUS_HEADER


@dataclass
class ProposeMsg(Message):
    """Leader → all: the batch proposed for consensus instance ``cid``."""

    cid: int = 0
    regency: int = 0
    batch: list[ClientRequest] = field(default_factory=list)
    batch_hash: bytes = b""


@dataclass
class WriteMsg(Message):
    """Replica → all: echo of the proposed batch hash."""

    cid: int = 0
    regency: int = 0
    batch_hash: bytes = b""
    size: int = field(default=_CONSENSUS_HEADER + 32, kw_only=True)


@dataclass
class AcceptMsg(Message):
    """Replica → all: signed acceptance; a quorum forms the decision proof."""

    cid: int = 0
    regency: int = 0
    batch_hash: bytes = b""
    signature: Signature | None = None
    size: int = field(default=_CONSENSUS_HEADER + 32 + Signature.WIRE_SIZE, kw_only=True)


@dataclass
class FastVoteMsg(Message):
    """Replica → all: signed first-round vote of the fast-path engine.

    In the n = 5f−1 fast path (Abraham, Nayak, Ren & Xiang) every replica
    broadcasts a signed vote straight off the leader's proposal; a fast
    quorum ⌈(n+3f−1)/2⌉ of matching votes decides in two rounds and the
    vote signatures double as the decision proof.
    """

    cid: int = 0
    regency: int = 0
    batch_hash: bytes = b""
    signature: Signature | None = None
    size: int = field(default=_CONSENSUS_HEADER + 32 + Signature.WIRE_SIZE, kw_only=True)


@dataclass
class FastCommitMsg(Message):
    """Replica → all: signed slow-path commit of the fast-path engine.

    Sent when a classic quorum ⌈(n+f+1)/2⌉ of votes formed but the fast
    quorum did not (faults or partitions); a classic quorum of commits
    decides, PBFT-style, in one extra round.
    """

    cid: int = 0
    regency: int = 0
    batch_hash: bytes = b""
    signature: Signature | None = None
    size: int = field(default=_CONSENSUS_HEADER + 32 + Signature.WIRE_SIZE, kw_only=True)


@dataclass
class StopMsg(Message):
    """Replica → all: vote to abandon the current regency."""

    next_regency: int = 0
    size: int = field(default=_CONSENSUS_HEADER, kw_only=True)


@dataclass
class StopDataMsg(Message):
    """Replica → new leader: state needed to safely resume ordering.

    ``writeset`` carries the value (hash and batch) this replica observed a
    WRITE quorum for in the pending instance, if any — the new leader must
    re-propose the highest such value to preserve agreement.
    """

    regency: int = 0
    last_decided_cid: int = -1
    pending_cid: int | None = None
    writeset: tuple[int, bytes, list[ClientRequest]] | None = None  # (regency, hash, batch)
    #: Pipelining: writesets of the in-flight instances *beyond*
    #: ``pending_cid``, as ``(cid, (regency, hash, batch))`` pairs.  Empty
    #: at pipeline_depth=1 (the wire format is unchanged there).
    extra_writesets: tuple = ()


@dataclass
class SyncMsg(Message):
    """New leader → all: resolution of the synchronization phase."""

    regency: int = 0
    cid: int = 0
    batch: list[ClientRequest] | None = None
    batch_hash: bytes = b""
    collected_from: tuple[int, ...] = ()
    #: Pipelining: re-proposals for vouched in-flight instances beyond
    #: ``cid``, as ``(cid, batch, batch_hash)`` triples in cid order.
    #: Empty at pipeline_depth=1.
    extra: tuple = ()
