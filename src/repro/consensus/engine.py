"""The consensus-engine seam: SMR above, interchangeable protocols below.

The paper's thesis is that the blockchain layer is independent of the
consensus module ("consensus is only the beginning").  This module makes
that independence an explicit, executable contract: everything above
consensus — request batching, decision sequencing, leader-change
synchronization, state transfer, the blockchain delivery layer, the
safety auditor — talks to a :class:`ConsensusEngine`, never to a concrete
protocol.

An engine owns the *agreement* part of one replica:

- its wire messages and their handlers (registered on the replica's
  :class:`~repro.smr.runtime.NodeRuntime`);
- the per-instance vote bookkeeping;
- its **quorum policy** — the fault threshold and every quorum size are
  declared by the engine, not assumed by the stack, so that n = 3f+1
  protocols (Mod-SMaRt) and n = 5f−1 protocols (the fast-path engine)
  run under the same replica, synchronizer and blockchain layer.

The replica owns everything protocol-independent: request ingestion and
verification gating, the decision buffer and in-order delivery, crash /
recovery, keys, and the collaborator wiring.  Regency (leader) changes
stay in the :class:`~repro.smr.leaderchange.Synchronizer`, which reaches
the engine only through the narrow hooks below (``writeset_for`` /
``abandon_regency`` / ``adopt_sync``).

Engines register under a string key (:func:`register_engine`) so scenarios
and the bench CLI can select them by name: ``Scenario(engine="fastbft")``,
``run_smartchain(engine="fastbft")``, ``python -m repro.bench --engine
fastbft``.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Callable

from repro.errors import ReproError
from repro.net.message import Message

if TYPE_CHECKING:  # pragma: no cover - avoid the smr <-> consensus cycle
    from repro.smr.replica import ModSmartReplica
    from repro.smr.requests import ClientRequest
    from repro.smr.views import View

__all__ = [
    "ConsensusEngine",
    "EngineError",
    "ENGINES",
    "register_engine",
    "create_engine",
    "engine_names",
]


class EngineError(ReproError):
    """An engine key is unknown or an engine contract is violated."""


class ConsensusEngine(abc.ABC):
    """One replica's pluggable agreement protocol.

    Lifecycle: construct, then :meth:`attach` to exactly one replica (the
    engine registers its message handlers there).  After that the replica
    calls :meth:`propose` when it leads and has a batch; the engine calls
    ``replica.handle_decision(decision)`` whenever an instance decides —
    in any order; the replica sequences decisions by consensus id.

    Class attributes every engine must define:

    ``name``
        The registry key (``"modsmart"``, ``"fastbft"``).
    ``phases``
        Ordered names of the engine's vote-carrying phases — the valid
        vocabulary for fault-plan knobs such as the withhold-votes
        ``phases`` parameter.  Plans naming a phase the engine lacks are
        rejected at install time (no silent no-ops).
    ``max_pipeline``
        Largest consensus-instance window the engine supports running
        concurrently (DISPEL-style pipelining).  The replica proposes at
        most ``min(config.pipeline_depth, engine.max_pipeline)`` instances
        ahead of the last decision.  The default of 1 declares a strictly
        sequential engine; engines that can tally independent instances
        concurrently raise it.
    """

    name: str = ""
    phases: tuple[str, ...] = ()
    max_pipeline: int = 1

    def __init__(self) -> None:
        self.replica: "ModSmartReplica | None" = None

    # ------------------------------------------------------------------
    # Quorum policy (pure functions of the group size)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def fault_threshold(self, n: int) -> int:
        """Failures tolerated in a group of ``n`` replicas."""

    @abc.abstractmethod
    def quorum(self, n: int) -> int:
        """Votes that decide an instance (and match client replies)."""

    def stop_quorum(self, n: int) -> int:
        """STOP votes that install a new regency (default 2f+1)."""
        return 2 * self.fault_threshold(n) + 1

    def cert_quorum(self, n: int) -> int:
        """Signatures in a block certificate (paper: ⌊(n+f+1)/2⌋ ≥ 2f+1)."""
        f = self.fault_threshold(n)
        return max(2 * f + 1, (n + f + 1) // 2)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def attach(self, replica: "ModSmartReplica") -> None:
        """Bind to ``replica`` and register this engine's message types."""
        if self.replica is not None:
            raise EngineError(
                f"engine {self.name!r} is already attached to replica "
                f"{self.replica.id}")
        self.replica = replica

    @abc.abstractmethod
    def propose(self, batch: "list[ClientRequest]",
                cid: int | None = None) -> None:
        """Leader path: start agreement on ``batch`` for ``cid`` (default
        ``last_decided + 1``).  A pipelining replica passes explicit cids
        beyond the head so several instances run concurrently."""

    @abc.abstractmethod
    def has_open_proposal(self, cid: int) -> bool:
        """True when a value is already being ordered for ``cid`` (the
        replica then must not propose again for it)."""

    @abc.abstractmethod
    def on_delivered(self, cid: int) -> None:
        """``cid`` was delivered: drop its instance bookkeeping."""

    @abc.abstractmethod
    def on_view_installed(self, new_view: "View") -> None:
        """A reconfiguration installed ``new_view``: re-arm undecided
        instances under the new membership, quorums and keys."""

    @abc.abstractmethod
    def on_crash(self) -> None:
        """The replica crashed: drop all volatile consensus state."""

    # ------------------------------------------------------------------
    # Buffered out-of-order proposals (gap healing)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def kick_pending(self) -> None:
        """Process the buffered proposal for ``last_decided + 1``, if any
        (decisions may then cascade from already-tallied vote quorums)."""

    @abc.abstractmethod
    def earliest_buffered(self) -> int | None:
        """Lowest buffered future-proposal cid, or None (gap detection)."""

    @abc.abstractmethod
    def discard_through(self, cid: int) -> None:
        """A state transfer installed through ``cid``: drop buffered
        proposals at or below it."""

    # ------------------------------------------------------------------
    # Synchronization-phase hooks (leader change)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def abandon_regency(self, cid: int, regency: int):
        """A new regency installs while ``cid`` is pending: reset the
        instance's tallies for ``regency`` and return the writeset — the
        ``(regency, batch_hash, batch)`` this replica vouched for, or
        ``None`` — for the STOPDATA message."""

    @abc.abstractmethod
    def adopt_sync(self, cid: int, regency: int,
                   batch: "list[ClientRequest]", batch_hash: bytes) -> None:
        """Adopt the new leader's SYNC re-proposal as if it were a fresh
        proposal (including this replica's first-round vote)."""

    # ------------------------------------------------------------------
    # Fault-injection hooks (Byzantine behaviors stay engine-agnostic)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def vote_phase_of(self, msg_type: type) -> str | None:
        """The phase name a message type carries a vote for, or None —
        what the withhold-votes behavior consults before dropping."""

    @abc.abstractmethod
    def value_bearing_types(self) -> tuple[type, ...]:
        """Message types whose receipt reveals a value under agreement —
        what the equivocation behavior double-votes in response to."""

    @abc.abstractmethod
    def fabricate_votes(self, cid: int, regency: int,
                        batch_hash: bytes) -> list[Message]:
        """All of this replica's vote messages for ``batch_hash`` —
        signed where the protocol signs — regardless of what it already
        voted.  Exactly what an honest replica may never produce; used by
        the equivocation behavior to attack any engine's quorums."""


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
#: String key -> engine factory.  Populated by the concrete engine
#: modules at import time (see repro/consensus/__init__.py).
ENGINES: dict[str, Callable[[], ConsensusEngine]] = {}


def register_engine(key: str,
                    factory: Callable[[], ConsensusEngine]) -> None:
    """Register an engine factory under ``key`` (last write wins, so tests
    can shadow built-ins)."""
    ENGINES[key] = factory


def create_engine(engine: "str | ConsensusEngine | None") -> ConsensusEngine:
    """Resolve ``engine`` — a registry key, an instance (returned as-is),
    or None for the default ``"modsmart"`` — into a fresh engine."""
    if engine is None:
        engine = "modsmart"
    if isinstance(engine, ConsensusEngine):
        return engine
    factory = ENGINES.get(engine)
    if factory is None:
        raise EngineError(
            f"unknown consensus engine {engine!r}; "
            f"registered engines: {', '.join(sorted(ENGINES))}")
    return factory()


def engine_names() -> list[str]:
    """Registered engine keys, sorted (CLI help and validation)."""
    return sorted(ENGINES)
