"""Byzantine behaviors as :class:`~repro.smr.runtime.Interceptor` subclasses.

Each behavior attacks one of the paper's safety/liveness arguments through
the real protocol — no hand-seeded event traces:

- :class:`EquivocateBehavior` — an equivocating leader sends conflicting
  PROPOSEs to disjoint subsets of the correct replicas and double-votes for
  every value it sees (attacks agreement, Section II-C / Figure 1: with
  ≤ f traitors no two conflicting ⌈(n+f+1)/2⌉ quorums can form).
- :class:`MuteBehavior` — a silent (or selectively silent) replica
  (attacks liveness; the synchronization phase must route around it).
- :class:`WithholdVotesBehavior` — participates everywhere except the
  engine's vote steps (a stealthier liveness attack: the replica still
  looks alive to failure detectors).
- :class:`StaleReplayBehavior` — refuses to erase retired per-view
  consensus keys and, after a reconfiguration, replays PERSIST votes signed
  with the retired key (attacks the forgetting protocol end-to-end,
  Section V-D / Observation 3: the group must reject the stale signature).
- :class:`StopSpamBehavior` — floods the group with unsolicited STOP votes
  for regencies ahead of the current one (attacks the synchronization
  phase: with ≤ f spammers the f+1 join threshold is never reached, so
  correct replicas must keep the current leader and keep deciding).

Behaviors are engine-agnostic: they consult the compromised replica's
:class:`~repro.consensus.engine.ConsensusEngine` for which message types
carry values and votes (``value_bearing_types``/``vote_phase_of``) and
for fabricated double-votes (``fabricate_votes``), so the same plan
attacks Mod-SMaRt and the fast-path engine alike.  Overrides that only
make sense for one engine — e.g. ``withhold-votes`` naming a ``write``
phase under an engine without one — fail fast at install time.

A behavior's random draws come from its own seeded RNG stream, so chaos
runs replay bit-for-bit; its first activation is announced with a
``behavior-activated`` protocol event so audited runs show the attack next
to the invariant checks.
"""

from __future__ import annotations

import random
from typing import Any, Hashable

from repro.consensus.messages import ProposeMsg, StopMsg, batch_wire_size
from repro.core.persistence import PersistMsg
from repro.crypto.hashing import hash_obj
from repro.faults.plan import BehaviorSpec
from repro.net.message import Message
from repro.smr.runtime import Interceptor

__all__ = [
    "Behavior",
    "EquivocateBehavior",
    "MuteBehavior",
    "WithholdVotesBehavior",
    "StaleReplayBehavior",
    "StopSpamBehavior",
    "build_behavior",
]


class Behavior(Interceptor):
    """Base class tying one behavior spec to one compromised replica."""

    def __init__(self, replica, spec: BehaviorSpec,
                 byzantine: frozenset[int], seed_material: str):
        self.replica = replica
        self.spec = spec
        #: Every Byzantine node in the plan — colluders are never fooled by
        #: each other's equivocation, so attacks target correct nodes only.
        self.byzantine = byzantine
        self.rng = random.Random(seed_material)
        self.activated = False

    def install(self) -> None:
        """Attach to the replica's runtime (both chains + event taps)."""
        self.replica.runtime.install(self)

    def validate(self) -> str | None:
        """Check the spec against the replica's engine before installing.

        Returns an error message when the spec only makes sense for an
        engine this replica is not running (the injector turns it into a
        :class:`FaultInjectionError`), or None when the spec applies.
        """
        return None

    def window_active(self, cid: int | None = None) -> bool:
        """Is the behavior's trigger window (time and cid) open?"""
        spec = self.spec
        now = self.replica.sim.now
        if now < spec.after:
            return False
        if spec.until is not None and now >= spec.until:
            return False
        if cid is not None and spec.cids is not None and cid not in spec.cids:
            return False
        return True

    def activate(self, **detail: Any) -> None:
        """Announce the first engagement of this behavior (once)."""
        if self.activated:
            return
        self.activated = True
        rt = self.replica.runtime
        if rt.observing:
            rt.notify("behavior-activated", behavior=self.spec.behavior,
                      **detail)


class EquivocateBehavior(Behavior):
    """Equivocating leader + double-voter.

    Outbound: when this replica leads and proposes a batch of two or more
    requests, the correct replicas are split into two halves that receive
    *conflicting* PROPOSEs for the same consensus id (the second half gets
    the batch in reverse order, a genuinely different value with a different
    hash).  Colluding Byzantine peers and the traitor itself keep the
    original, so each half sees a self-consistent leader.

    Inbound: the traitor votes in *every* phase for *every* value it
    learns of in the instance (the engine's ``value_bearing_types`` says
    which inbound messages reveal a value, its ``fabricate_votes``
    produces the full forbidden vote set), trying to complete conflicting
    quorums.
    With ≤ f traitors both values can reach at most f + ⌈(n-f)/2⌉ < quorum
    votes, the instance stalls, and the synchronization phase replaces the
    leader — the run must stay audit-clean.  With f+1 traitors the vote
    arithmetic breaks and the auditor must report a fork.
    """

    def __init__(self, replica, spec, byzantine, seed_material):
        super().__init__(replica, spec, byzantine, seed_material)
        self._variants: dict[int, dict[Hashable, ProposeMsg]] = {}
        self._voted: set[tuple[int, bytes]] = set()

    def on_outbound(self, dst: Hashable, msg: Message):
        if not isinstance(msg, ProposeMsg) or not self.window_active(msg.cid):
            return [(dst, msg)]
        if len(msg.batch) < 2:
            return [(dst, msg)]  # a 1-request batch has no second ordering
        variants = self._variants.get(msg.cid)
        if variants is None:
            variants = self._split(msg)
            self._variants[msg.cid] = variants
        return [(dst, variants.get(dst, msg))]

    def _split(self, msg: ProposeMsg) -> dict[Hashable, ProposeMsg]:
        replica = self.replica
        correct = [m for m in replica.cv.members if m not in self.byzantine]
        group_b = correct[len(correct) // 2:]
        batch_b = list(reversed(msg.batch))
        conflict = ProposeMsg(
            cid=msg.cid, regency=msg.regency, batch=batch_b,
            batch_hash=hash_obj([r.to_canonical() for r in batch_b]),
            size=batch_wire_size(batch_b))
        self.activate(cid=msg.cid, split=sorted(group_b),
                      conflicting_hash=conflict.batch_hash.hex())
        return {dst: conflict for dst in group_b}

    def on_inbound(self, src: Hashable, msg: Message):
        cid = getattr(msg, "cid", None)
        batch_hash = getattr(msg, "batch_hash", None)
        if (isinstance(msg, self.replica.engine.value_bearing_types())
                and cid is not None
                and batch_hash is not None and self.window_active(cid)
                and cid > self.replica.last_decided
                and (cid, batch_hash) not in self._voted):
            self._voted.add((cid, batch_hash))
            self._double_vote(cid, msg.regency, batch_hash)
        return msg

    def _double_vote(self, cid: int, regency: int, batch_hash: bytes) -> None:
        """Vote for this value in every phase regardless of previous votes
        — exactly what an honest replica may never do."""
        replica = self.replica
        rt = replica.runtime
        self.activate(cid=cid)
        votes = replica.engine.fabricate_votes(cid, regency, batch_hash)
        # send_raw: fabricated votes must not loop back through this chain.
        for dst in replica.cv.members:
            for vote in votes:
                rt.send_raw(dst, vote)


class MuteBehavior(Behavior):
    """Silent replica: drops outbound traffic inside its window.

    ``params['kinds']`` restricts the muting to specific message kinds
    (class names); ``params['targets']`` to specific destinations.
    """

    def on_outbound(self, dst: Hashable, msg: Message):
        if not self.window_active(getattr(msg, "cid", None)):
            return [(dst, msg)]
        kinds = self.spec.params.get("kinds")
        if kinds is not None and msg.kind not in kinds:
            return [(dst, msg)]
        targets = self.spec.params.get("targets")
        if targets is not None and dst not in targets:
            return [(dst, msg)]
        self.activate(muted=msg.kind)
        return []


class WithholdVotesBehavior(Behavior):
    """Drops this replica's own consensus votes (and PERSIST shares).

    ``params['phases']`` may restrict withholding to a subset of the
    engine's vote phases (``engine.phases``, e.g. ``write``/``accept``
    under Mod-SMaRt, ``vote``/``commit`` under the fast path) plus
    ``persist``; the default withholds all of them.  Naming a phase the
    replica's engine lacks fails fast at install time.
    """

    def _valid_phases(self) -> tuple[str, ...]:
        return tuple(self.replica.engine.phases) + ("persist",)

    def validate(self) -> str | None:
        phases = self.spec.params.get("phases")
        if phases is None:
            return None
        unknown = sorted(set(phases) - set(self._valid_phases()))
        if unknown:
            engine = self.replica.engine
            return (f"withhold-votes names phase(s) {unknown} that engine "
                    f"{engine.name!r} lacks (valid: "
                    f"{list(self._valid_phases())})")
        return None

    def _phase_of(self, msg: Message) -> str | None:
        if isinstance(msg, PersistMsg):
            return "persist"
        return self.replica.engine.vote_phase_of(type(msg))

    def on_outbound(self, dst: Hashable, msg: Message):
        phase = self._phase_of(msg)
        if phase is None or not self.window_active(getattr(msg, "cid", None)):
            return [(dst, msg)]
        phases = self.spec.params.get("phases", self._valid_phases())
        if phase not in phases:
            return [(dst, msg)]
        self.activate(withheld=phase)
        return []


class StaleReplayBehavior(Behavior):
    """Retired-key replayer attacking the forgetting protocol.

    On install the compromised replica stops erasing retired per-view keys
    (``replica.erase_retired_keys = False`` — modelling key exfiltration
    before the rotation).  When a later view installs, it waits briefly and
    then replays a PERSIST vote for the next block signed with the retired
    key of the *previous* view.  A correct group must refuse the vote: the
    current view's key directory no longer vouches for that key, and the
    rejection is recorded as a ``stale-reject`` protocol event
    (Observation 3: compromising retired members' keys breaks nothing).

    ``params['delay']`` tunes how long after the view change the replay
    fires (default 0.05 s).
    """

    def __init__(self, replica, spec, byzantine, seed_material):
        super().__init__(replica, spec, byzantine, seed_material)
        self._replayed_views: set[int] = set()

    def install(self) -> None:
        super().install()
        self.replica.erase_retired_keys = False

    def on_event(self, kind: str, fields: dict[str, Any]) -> None:
        if kind != "view-change" or not self.window_active():
            return
        new_view = fields.get("view", 0)
        retired = new_view - 1
        if retired < 0 or retired in self._replayed_views:
            return
        self._replayed_views.add(retired)
        delay = self.spec.params.get("delay", 0.05)
        members = list(fields.get("members", ()))
        self.replica.sim.schedule(delay, self._replay, retired, members)

    def _replay(self, retired_view: int, members: list[int]) -> None:
        replica = self.replica
        key = replica.consensus_keys.get(retired_view)
        if key is None or key.is_erased or replica.crashed:
            return
        height = getattr(getattr(replica.delivery, "chain", None),
                         "height", 0)
        target = height + 1
        digest = hash_obj(("stale-replay", replica.id, target,
                           self.rng.random()))
        msg = PersistMsg(block_number=target, header_digest=digest,
                         replica_id=replica.id, signature=key.sign(digest))
        self.activate(retired_view=retired_view, block=target)
        for dst in members:
            if dst != replica.id:
                replica.runtime.send_raw(dst, msg)


class StopSpamBehavior(Behavior):
    """STOP-vote spammer attacking the synchronization phase.

    Inside its window the compromised replica periodically broadcasts
    unsolicited STOP votes for regencies ahead of the current one
    (``params['ahead']`` of them, default 2, every ``params['period']``
    seconds, default 0.05).  Correct replicas only *join* a change once
    f+1 distinct members vote for it, so with ≤ f spammers the votes can
    never recruit anyone: the group must keep the current leader and keep
    deciding.  The liveness auditor confirms that nothing wedges and no
    request misses its bound.
    """

    def install(self) -> None:
        super().install()
        period = self.spec.params.get("period", 0.05)
        self.replica.sim.schedule_at(self.spec.after + period, self._spam)

    def _spam(self) -> None:
        replica = self.replica
        spec = self.spec
        if spec.until is not None and replica.sim.now >= spec.until:
            return  # window closed for good: stop rescheduling
        if not replica.crashed and self.window_active():
            self.activate(regency=replica.regency)
            ahead = spec.params.get("ahead", 2)
            for k in range(1, ahead + 1):
                msg = StopMsg(next_regency=replica.regency + k)
                # send_raw: the spam must not loop back through this chain.
                for dst in replica.cv.members:
                    if dst != replica.id:
                        replica.runtime.send_raw(dst, msg)
        replica.sim.schedule(spec.params.get("period", 0.05), self._spam)


_BEHAVIOR_CLASSES = {
    "equivocate": EquivocateBehavior,
    "mute": MuteBehavior,
    "withhold-votes": WithholdVotesBehavior,
    "stale-replay": StaleReplayBehavior,
    "stop-spam": StopSpamBehavior,
}


def build_behavior(replica, spec: BehaviorSpec, byzantine: frozenset[int],
                   seed_material: str) -> Behavior:
    """Instantiate the behavior class named by ``spec`` for ``replica``."""
    cls = _BEHAVIOR_CLASSES[spec.behavior]
    return cls(replica, spec, byzantine, seed_material)
