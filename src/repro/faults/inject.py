"""Turns a :class:`~repro.faults.plan.FaultPlan` into scheduled chaos.

The injector is the bridge between declarative plans and the live system:
behavior interceptors are installed on the compromised replicas' runtimes,
network actions and crash/recover cycles become simulator events, and every
action announces itself with a ``fault-injected`` protocol event so audited
runs show the attack timeline next to the invariant checks (network-wide
actions carry ``node=-1``; the auditor ignores negative nodes for
membership tracking).
"""

from __future__ import annotations

import random
from typing import Any

from repro.errors import ReproError
from repro.faults.behaviors import Behavior, build_behavior
from repro.faults.plan import FaultPlan, load_plan

__all__ = ["FaultInjector"]


class FaultInjectionError(ReproError):
    """The plan references nodes or facilities the scenario lacks."""


class FaultInjector:
    """Installs one fault plan into one built scenario.

    Parameters of :meth:`install`:

    ``sim``/``network``
        The simulation substrate.
    ``replicas``
        ``{replica_id: ModSmartReplica}`` — behaviors attach to these.
    ``nodes``
        Optional ``{node_id: SmartChainNode}``; when present, crash/recover
        cycles go through the node wrapper (which re-certifies blocks on
        recovery) and membership actions become real reconfiguration
        requests.  Membership actions *require* nodes.
    """

    def __init__(self, plan: "FaultPlan | dict | str"):
        self.plan = load_plan(plan)
        self.behaviors: list[Behavior] = []
        self.installed = False

    # ------------------------------------------------------------------
    def install(self, sim, network, replicas: dict,
                nodes: dict | None = None) -> "FaultInjector":
        if self.installed:
            raise FaultInjectionError("fault plan already installed")
        self.installed = True
        self._sim = sim
        plan = self.plan
        byzantine = plan.byzantine_nodes
        missing = sorted(set(byzantine) - set(replicas))
        if missing:
            raise FaultInjectionError(
                f"plan {plan.name!r} compromises nodes {missing} "
                f"not present in the scenario (have {sorted(replicas)})")

        if plan.protocol:
            configs: list[Any] = []
            for replica in replicas.values():
                if any(replica.config is c for c in configs):
                    continue  # replicas usually share one config object
                configs.append(replica.config)
                for key, value in plan.protocol.items():
                    if not hasattr(replica.config, key):
                        raise FaultInjectionError(
                            f"plan {plan.name!r} overrides unknown protocol "
                            f"knob {key!r}")
                    setattr(replica.config, key, value)
            self._announce(0.0, -1, action="protocol",
                           overrides=dict(plan.protocol))

        for index, spec in enumerate(plan.behaviors):
            for node_id in spec.nodes:
                behavior = build_behavior(
                    replicas[node_id], spec, byzantine,
                    f"faults:{sim.seed}:{plan.seed}:{index}:{node_id}")
                problem = behavior.validate()
                if problem is not None:
                    raise FaultInjectionError(
                        f"plan {plan.name!r}: {problem}")
                behavior.install()
                self.behaviors.append(behavior)
                self._announce(0.0, node_id, action="behavior",
                               behavior=spec.behavior, after=spec.after)

        for action in plan.network:
            sim.schedule_at(action.at, self._network_action, network, action)

        for spec in plan.crashes:
            target = (nodes or replicas).get(spec.node)
            if target is None:
                raise FaultInjectionError(
                    f"plan {plan.name!r} crashes unknown node {spec.node}")
            for cycle in range(max(1, spec.repeat)):
                offset = cycle * spec.period
                sim.schedule_at(spec.at + offset, self._crash, target, spec)
                if spec.recover_at is not None:
                    sim.schedule_at(spec.recover_at + offset, self._recover,
                                    target, spec)

        for index, spec in enumerate(plan.storage):
            replica = replicas.get(spec.node)
            if replica is None:
                raise FaultInjectionError(
                    f"plan {plan.name!r} injects a storage fault into "
                    f"unknown node {spec.node}")
            # A private RNG stream per fault, so the corruption site is a
            # pure function of (sim seed, plan seed, fault index, node).
            rng = random.Random(
                f"faults:{sim.seed}:{plan.seed}:storage:{index}:{spec.node}")
            sim.schedule_at(spec.at, self._storage_fault, replica, spec, rng)

        for action in plan.membership:
            if nodes is None or action.node not in nodes:
                raise FaultInjectionError(
                    f"plan {plan.name!r} needs SmartChain node {action.node} "
                    "for membership actions")
            sim.schedule_at(action.at, self._leave, nodes[action.node])
        return self

    # ------------------------------------------------------------------
    # Scheduled actions (each announces itself when it fires)
    # ------------------------------------------------------------------
    def _network_action(self, network, action) -> None:
        if action.op == "partition":
            network.partition(*action.groups)
            self._announce(self._sim.now, -1, action="partition",
                           groups=[sorted(g) for g in action.groups])
        elif action.op == "heal":
            network.heal()
            self._announce(self._sim.now, -1, action="heal")
        elif action.op == "drop":
            network.set_drop_probability(action.src, action.dst, action.p)
            self._announce(self._sim.now, -1, action="drop",
                           src=action.src, dst=action.dst, p=action.p)
        elif action.op == "delay":
            network.set_extra_delay(action.src, action.dst, action.seconds)
            self._announce(self._sim.now, -1, action="delay",
                           src=action.src, dst=action.dst,
                           seconds=action.seconds)

    def _crash(self, target, spec) -> None:
        replica = getattr(target, "replica", target)
        if not replica.crashed:
            self._announce(self._sim.now, spec.node, action="crash")
            target.crash()

    def _recover(self, target, spec) -> None:
        replica = getattr(target, "replica", target)
        if replica.crashed:
            self._announce(self._sim.now, spec.node, action="recover")
            target.recover()

    def _storage_fault(self, replica, spec, rng) -> None:
        applied = dict(replica.store.inject_fault(
            spec.kind, rng, **spec.params))
        applied.pop("kind", None)
        self._announce(self._sim.now, spec.node, action="storage",
                       fault=spec.kind, **applied)

    def _leave(self, node) -> None:
        self._announce(self._sim.now, node.id, action="leave")
        node.leave()

    def _announce(self, time: float, node: int, **fields: Any) -> None:
        obs = self._sim.obs
        if obs.record_events:
            obs.events.emit("fault-injected", node, time, plan=self.plan.name,
                            **fields)
