"""Declarative fault plans: what goes wrong, where, and when.

A :class:`FaultPlan` is a seeded, serializable description of an adversarial
scenario: which replicas run which Byzantine behavior (and inside which
time/consensus-id window), what the network does (partitions, healing,
lossy/slow links), which nodes crash and recover on what schedule, and any
membership changes.  The :class:`~repro.faults.inject.FaultInjector` turns a
plan into installed behavior interceptors and scheduled simulator actions.

Plans are data, not code, so the same chaos scenario can be named on the
bench CLI (``--faults equivocate``), stored in a file, or constructed in a
test — and the same plan + the same simulator seed always reproduces the
same run bit for bit.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from typing import Any

from repro.errors import ReproError
from repro.storage.stable import STORAGE_FAULT_KINDS

__all__ = [
    "BehaviorSpec",
    "NetworkAction",
    "CrashSpec",
    "MembershipAction",
    "StorageFaultSpec",
    "FaultPlan",
    "NAMED_PLANS",
    "load_plan",
]

#: Behaviors implemented in :mod:`repro.faults.behaviors`.
BEHAVIOR_KINDS = ("equivocate", "mute", "withhold-votes", "stale-replay",
                  "stop-spam")


class FaultPlanError(ReproError):
    """A fault plan is malformed or cannot be resolved."""


@dataclass(frozen=True)
class BehaviorSpec:
    """One Byzantine behavior assigned to one or more replicas.

    ``after``/``until`` bound the active window in simulated seconds;
    ``cids`` (optional) restricts the behavior to specific consensus ids.
    ``params`` are behavior-specific knobs (see :mod:`repro.faults.behaviors`).
    """

    behavior: str
    nodes: tuple[int, ...]
    after: float = 0.0
    until: float | None = None
    cids: tuple[int, ...] | None = None
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.behavior not in BEHAVIOR_KINDS:
            raise FaultPlanError(
                f"unknown behavior {self.behavior!r}; "
                f"expected one of {BEHAVIOR_KINDS}")
        object.__setattr__(self, "nodes", tuple(self.nodes))
        if self.cids is not None:
            object.__setattr__(self, "cids", tuple(self.cids))


@dataclass(frozen=True)
class NetworkAction:
    """One scheduled network manipulation.

    ``op`` is one of ``partition`` (needs ``groups``), ``heal``, ``drop``
    (needs ``src``/``dst``/``p``) or ``delay`` (needs ``src``/``dst``/
    ``seconds``).
    """

    op: str
    at: float
    groups: tuple[tuple[int, ...], ...] = ()
    src: int | None = None
    dst: int | None = None
    p: float = 0.0
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.op not in ("partition", "heal", "drop", "delay"):
            raise FaultPlanError(f"unknown network op {self.op!r}")
        object.__setattr__(
            self, "groups", tuple(tuple(g) for g in self.groups))


@dataclass(frozen=True)
class CrashSpec:
    """A crash (and optional recovery) cycle for one node.

    ``repeat`` > 1 with a ``period`` produces a crash-recover storm: the
    cycle re-fires every ``period`` seconds.
    """

    node: int
    at: float
    recover_at: float | None = None
    repeat: int = 1
    period: float = 0.0

    def __post_init__(self) -> None:
        if self.repeat > 1 and self.period <= 0.0:
            raise FaultPlanError("repeated crashes need a positive period")
        if self.recover_at is not None and self.recover_at <= self.at:
            raise FaultPlanError("recover_at must come after the crash")


@dataclass(frozen=True)
class StorageFaultSpec:
    """One scheduled storage fault against one node's stable store.

    ``kind`` is one of :data:`repro.storage.stable.STORAGE_FAULT_KINDS`
    (``bit-rot``, ``torn-write``, ``gray-disk``, ``fsync-lie``); ``at`` is
    when the fault is injected (simulated seconds); ``params`` are
    kind-specific knobs passed to
    :meth:`~repro.storage.stable.StableStore.inject_fault` (e.g. ``factor``/
    ``duration``/``budget`` for gray-disk, ``index`` for bit-rot).  The
    corruption site is otherwise drawn from the plan's seeded RNG stream,
    so the same (sim seed, plan) pair always damages the same record.
    """

    node: int
    kind: str
    at: float
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in STORAGE_FAULT_KINDS:
            raise FaultPlanError(
                f"unknown storage fault {self.kind!r}; "
                f"expected one of {STORAGE_FAULT_KINDS}")
        if self.at < 0.0:
            raise FaultPlanError("storage fault time must be >= 0")


@dataclass(frozen=True)
class MembershipAction:
    """A scheduled reconfiguration request (currently: ``leave``)."""

    op: str
    node: int
    at: float

    def __post_init__(self) -> None:
        if self.op != "leave":
            raise FaultPlanError(f"unknown membership op {self.op!r}")


@dataclass(frozen=True)
class FaultPlan:
    """A complete adversarial scenario, serializable and seeded.

    ``seed`` is folded together with the simulator seed into the behaviors'
    private RNG stream, so the same (sim seed, plan) pair is deterministic
    while distinct plans draw independently.
    """

    name: str
    seed: int = 0
    behaviors: tuple[BehaviorSpec, ...] = ()
    network: tuple[NetworkAction, ...] = ()
    crashes: tuple[CrashSpec, ...] = ()
    #: Storage faults (bit-rot, torn-write, gray-disk, fsync-lie) scheduled
    #: against individual nodes' stable stores — composable with ``crashes``
    #: so a damaged log is actually *read back* (docs/faults.md, "Storage
    #: faults & verified recovery").
    storage: tuple[StorageFaultSpec, ...] = ()
    membership: tuple[MembershipAction, ...] = ()
    #: SMR config overrides applied to every replica at install time, e.g.
    #: ``{"request_timeout": 0.25}`` so a short chaos run still exercises
    #: the leader-change path (the default 2 s trigger outlasts the run).
    protocol: dict[str, Any] = field(default_factory=dict)
    #: Hints for the liveness auditor (``Scenario(audit_liveness=True)``):
    #: ``gst`` (when the plan's chaos settles into bounded delays),
    #: ``bound`` (post-GST latency bound the plan is expected to meet) and
    #: ``wedge_k``.  Explicit Scenario values win over these.
    liveness: dict[str, Any] = field(default_factory=dict)
    #: Shard this plan targets in a sharded run (``None`` = unscoped).  The
    #: plan's node ids are *shard-relative* (0..n-1); the harness offsets
    #: them by the shard's base id before installing, so the same chaos
    #: plan can be pointed at any group (see docs/sharding.md).
    shard: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "behaviors", tuple(self.behaviors))
        object.__setattr__(self, "network", tuple(self.network))
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(self, "storage", tuple(self.storage))
        object.__setattr__(self, "membership", tuple(self.membership))
        if self.shard is not None and self.shard < 0:
            raise FaultPlanError(f"shard must be >= 0, got {self.shard}")

    @property
    def byzantine_nodes(self) -> frozenset[int]:
        """Every node running at least one Byzantine behavior."""
        return frozenset(n for spec in self.behaviors for n in spec.nodes)

    def scoped_to(self, base: int) -> "FaultPlan":
        """The same plan with every node id offset by ``base`` — how a
        shard-relative plan lands on the replicas of shard ``base //
        SHARD_STRIDE``.  ``base == 0`` returns the plan unchanged."""
        if base == 0:
            return self

        def off(node: int | None) -> int | None:
            return None if node is None else node + base

        return FaultPlan(
            name=self.name,
            seed=self.seed,
            behaviors=tuple(
                BehaviorSpec(spec.behavior,
                             tuple(n + base for n in spec.nodes),
                             after=spec.after, until=spec.until,
                             cids=spec.cids, params=dict(spec.params))
                for spec in self.behaviors),
            network=tuple(
                NetworkAction(action.op, action.at,
                              groups=tuple(tuple(n + base for n in group)
                                           for group in action.groups),
                              src=off(action.src), dst=off(action.dst),
                              p=action.p, seconds=action.seconds)
                for action in self.network),
            crashes=tuple(
                CrashSpec(spec.node + base, spec.at,
                          recover_at=spec.recover_at,
                          repeat=spec.repeat, period=spec.period)
                for spec in self.crashes),
            storage=tuple(
                StorageFaultSpec(spec.node + base, spec.kind, spec.at,
                                 params=dict(spec.params))
                for spec in self.storage),
            membership=tuple(
                MembershipAction(action.op, action.node + base, action.at)
                for action in self.membership),
            protocol=dict(self.protocol),
            liveness=dict(self.liveness),
            shard=self.shard,
        )

    def to_json(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "FaultPlan":
        try:
            return cls(
                name=data["name"],
                seed=int(data.get("seed", 0)),
                behaviors=tuple(BehaviorSpec(**spec)
                                for spec in data.get("behaviors", ())),
                network=tuple(NetworkAction(**action)
                              for action in data.get("network", ())),
                crashes=tuple(CrashSpec(**spec)
                              for spec in data.get("crashes", ())),
                storage=tuple(StorageFaultSpec(**spec)
                              for spec in data.get("storage", ())),
                membership=tuple(MembershipAction(**action)
                                 for action in data.get("membership", ())),
                protocol=dict(data.get("protocol", {})),
                liveness=dict(data.get("liveness", {})),
                shard=data.get("shard"),
            )
        except (KeyError, TypeError) as exc:
            raise FaultPlanError(f"malformed fault plan: {exc}") from exc


# ----------------------------------------------------------------------
# Named plans: one canonical scenario per behavior, sized for the default
# n=4 (f=1) SMARTCHAIN consortium — each stays within the fault threshold,
# so an audited run must come out clean.
# ----------------------------------------------------------------------
NAMED_PLANS: dict[str, FaultPlan] = {
    # An equivocating leader: replica 0 (the initial leader) sends
    # conflicting PROPOSEs to disjoint halves of the correct replicas and
    # double-votes for both values.  With a single traitor no conflicting
    # quorums can form; the protocol stalls the instance and changes leader
    # (the shortened request timeout lets that happen within a short run).
    # The window bounds the attack to one equivocating instance so the run
    # also demonstrates recovery; drop ``until`` to model a permanently
    # faulty leader.
    "equivocate": FaultPlan(
        name="equivocate",
        behaviors=(BehaviorSpec("equivocate", nodes=(0,),
                                after=0.3, until=0.45),),
        protocol={"request_timeout": 0.25},
    ),
    # A silent replica: replica 2 stops transmitting entirely mid-run.
    "mute": FaultPlan(
        name="mute",
        behaviors=(BehaviorSpec("mute", nodes=(2,), after=0.5),),
    ),
    # A vote-withholding replica: replica 1 keeps proposing/receiving but
    # never contributes WRITE or ACCEPT votes.
    "withhold-votes": FaultPlan(
        name="withhold-votes",
        behaviors=(BehaviorSpec("withhold-votes", nodes=(1,), after=0.5),),
    ),
    # The forgetting-protocol attack (Section V-D): replica 3 refuses to
    # erase retired per-view consensus keys, leaves the group, and after
    # the reconfiguration replays PERSIST votes signed with its retired
    # key — the group must reject them (Observation 3).
    "stale-replay": FaultPlan(
        name="stale-replay",
        behaviors=(BehaviorSpec("stale-replay", nodes=(3,), after=0.0),),
        membership=(MembershipAction("leave", node=3, at=0.6),),
    ),
    # A crash-recover storm composed with network chaos: replica 2 cycles
    # through crash/recovery while a brief partition isolates replica 3
    # and the 1->3 link stays lossy.
    "crash-storm": FaultPlan(
        name="crash-storm",
        crashes=(CrashSpec(node=2, at=0.6, recover_at=1.0,
                           repeat=2, period=1.0),),
        network=(
            NetworkAction("drop", at=0.5, src=1, dst=3, p=0.05),
            NetworkAction("partition", at=0.7, groups=((0, 1, 2), (3,))),
            NetworkAction("heal", at=1.1),
        ),
    ),
    # The same storm confined to shard 0 of a sharded deployment: node
    # ids are shard-relative, so the harness offsets them by the shard's
    # base id and the other groups never see a fault (their throughput
    # must be unaffected — see docs/sharding.md).
    "crash-storm-shard0": FaultPlan(
        name="crash-storm-shard0",
        shard=0,
        crashes=(CrashSpec(node=2, at=0.6, recover_at=1.0,
                           repeat=2, period=1.0),),
        network=(
            NetworkAction("drop", at=0.5, src=1, dst=3, p=0.05),
            NetworkAction("partition", at=0.7, groups=((0, 1, 2), (3,))),
            NetworkAction("heal", at=1.1),
        ),
    ),
}


def _replica_link_delays(at: float, seconds: float,
                         n: int = 4) -> tuple[NetworkAction, ...]:
    """Slow every inter-replica link (client links stay fast)."""
    return tuple(NetworkAction("delay", at=at, src=src, dst=dst,
                               seconds=seconds)
                 for src in range(n) for dst in range(n) if src != dst)


# Liveness-attacking plans (Bravo et al.): each pairs with
# ``Scenario(audit_liveness=True)``.  The adversary here controls message
# *timing*, not content — exactly the partial-synchrony threat model.
NAMED_PLANS.update({
    # Leader-targeted message delay: from t=0.4 the adversary holds every
    # message the current leader exchanges with the group for 0.3 s — and
    # since leadership rotates round-robin under escalation, every
    # inter-replica link is slowed.  The delays are *bounded*, so the
    # network is synchronous with an unknown Δ ≈ 0.3 s; the shortened
    # fixed request timeout (0.25 s < Δ) sits below it.  Under the
    # exponential synchronizer the timeout doubles past Δ within two
    # regency changes and progress resumes (slowly); under the legacy
    # fixed policy every SYNC is overtaken by the next escalation and the
    # system wedges — see "leader-delay-fixed".
    "leader-delay": FaultPlan(
        name="leader-delay",
        network=_replica_link_delays(at=0.4, seconds=0.3),
        protocol={"request_timeout": 0.25},
        liveness={"gst": 0.4, "bound": 4.0},
    ),
    # Negative control: the same attack against the legacy fixed-timeout
    # synchronizer.  An audited run must FAIL (wedge + unreplied
    # requests, exit code 2 on the CLI).
    "leader-delay-fixed": FaultPlan(
        name="leader-delay-fixed",
        network=_replica_link_delays(at=0.4, seconds=0.3),
        protocol={"request_timeout": 0.25, "synchronizer": "fixed"},
        liveness={"gst": 0.4, "bound": 4.0},
    ),
    # Timeout-edge jitter: link delays oscillate just around the (short)
    # request timeout, provoking spurious watchdog fires at the worst
    # moments.  The synchronizer must absorb the churn — every change
    # completes, the backoff resets once decisions resume, and no request
    # misses its bound.
    "timeout-jitter": FaultPlan(
        name="timeout-jitter",
        network=(_replica_link_delays(at=0.5, seconds=0.2)
                 + _replica_link_delays(at=1.1, seconds=0.0)
                 + _replica_link_delays(at=1.7, seconds=0.22)
                 + _replica_link_delays(at=2.3, seconds=0.0)),
        protocol={"request_timeout": 0.25},
        liveness={"gst": 2.3, "bound": 3.0},
    ),
    # STOP spam: replica 3 floods the group with unsolicited STOP votes
    # for regencies ahead of the current one.  With one spammer the f+1
    # join threshold is never met, so the group must keep the leader and
    # keep replying within the (tight) bound.
    "stop-spam": FaultPlan(
        name="stop-spam",
        behaviors=(BehaviorSpec("stop-spam", nodes=(3,), after=0.4,
                                params={"period": 0.05, "ahead": 2}),),
        liveness={"bound": 1.0},
    ),
})


# Storage-fault plans (docs/faults.md, "Storage faults & verified
# recovery"): each composes a storage fault with a crash-recover storm so
# the damaged stable log is actually read back, and pairs with
# ``Scenario(audit=True)`` — verified recovery must keep the recovered
# replica on the canonical chain (the recovery auditor's
# ``recovery-divergence`` invariant).
NAMED_PLANS.update({
    # Bit-rot under a crash storm: a stable log record on replica 2 is
    # silently corrupted, then the replica crash-recovers twice.  Verified
    # recovery must detect the checksum mismatch, truncate to the longest
    # valid prefix and state-transfer the rest.
    "bitrot-recovery": FaultPlan(
        name="bitrot-recovery",
        storage=(StorageFaultSpec(node=2, kind="bit-rot", at=0.8),),
        crashes=(CrashSpec(node=2, at=1.0, recover_at=1.4,
                           repeat=2, period=1.0),),
    ),
    # Torn write: replica 1's next sync commits only a prefix of its group
    # before the replica crash-recovers.  Verified recovery must stop at
    # the resulting hole (cid/linkage gap) instead of replaying past it.
    "torn-write-recovery": FaultPlan(
        name="torn-write-recovery",
        storage=(StorageFaultSpec(node=1, kind="torn-write", at=0.7),),
        crashes=(CrashSpec(node=1, at=1.0, recover_at=1.4,
                           repeat=2, period=1.0),),
    ),
    # Gray disk (fail-slow, not fail-stop): replica 0's disk serves syncs
    # 8x slower for 0.6 s.  No crash — the run must stay live and every
    # over-budget sync must surface as a ``disk-degraded`` event.
    "gray-disk": FaultPlan(
        name="gray-disk",
        storage=(StorageFaultSpec(node=0, kind="gray-disk", at=0.5,
                                  params={"factor": 8.0, "duration": 0.6,
                                          "budget": 0.01}),),
    ),
    # Negative control: the same bit-rot storm with recovery verification
    # switched off.  The corrupted record replays blindly, so an audited
    # run must FAIL with a ``recovery-divergence`` violation (exit code 2
    # on the CLI) — this is what checksummed recovery buys.
    "bitrot-unverified": FaultPlan(
        name="bitrot-unverified",
        storage=(StorageFaultSpec(node=2, kind="bit-rot", at=0.8),),
        crashes=(CrashSpec(node=2, at=1.0, recover_at=1.4,
                           repeat=2, period=1.0),),
        protocol={"verify_recovery": False},
    ),
})


def load_plan(source: "FaultPlan | dict | str") -> FaultPlan:
    """Resolve ``source`` into a :class:`FaultPlan`.

    Accepts a plan object (returned as-is), a JSON mapping, the name of a
    plan in :data:`NAMED_PLANS`, a path to a JSON file, or an inline JSON
    string.
    """
    if isinstance(source, FaultPlan):
        return source
    if isinstance(source, dict):
        return FaultPlan.from_json(source)
    if source in NAMED_PLANS:
        return NAMED_PLANS[source]
    if source.lstrip().startswith("{"):
        try:
            return FaultPlan.from_json(json.loads(source))
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"bad inline fault plan JSON: {exc}") from exc
    if os.path.exists(source):
        with open(source, encoding="utf-8") as fh:
            return FaultPlan.from_json(json.load(fh))
    raise FaultPlanError(
        f"unknown fault plan {source!r}; named plans: "
        f"{', '.join(sorted(NAMED_PLANS))}")
