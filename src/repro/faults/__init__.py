"""Byzantine fault injection (``repro.faults``).

The paper's safety claims are only as strong as the adversary they are
tested against.  This package supplies that adversary: declarative,
seeded :class:`FaultPlan` scenarios (:mod:`repro.faults.plan`), Byzantine
behaviors implemented as node-runtime interceptors
(:mod:`repro.faults.behaviors`), and the :class:`FaultInjector` that
installs a plan into a built scenario (:mod:`repro.faults.inject`).

Entry points: ``Scenario(faults=...)`` in the bench harness, the
``--faults PLAN`` CLI flag, or direct use in tests::

    from repro.faults import FaultInjector
    FaultInjector("equivocate").install(sim, network, replicas, nodes)
"""

from repro.faults.behaviors import (
    Behavior,
    EquivocateBehavior,
    MuteBehavior,
    StaleReplayBehavior,
    WithholdVotesBehavior,
)
from repro.faults.inject import FaultInjectionError, FaultInjector
from repro.faults.plan import (
    NAMED_PLANS,
    BehaviorSpec,
    CrashSpec,
    FaultPlan,
    FaultPlanError,
    MembershipAction,
    NetworkAction,
    StorageFaultSpec,
    load_plan,
)

__all__ = [
    "Behavior",
    "BehaviorSpec",
    "CrashSpec",
    "EquivocateBehavior",
    "FaultInjectionError",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "MembershipAction",
    "MuteBehavior",
    "NAMED_PLANS",
    "NetworkAction",
    "StaleReplayBehavior",
    "StorageFaultSpec",
    "WithholdVotesBehavior",
    "load_plan",
]
