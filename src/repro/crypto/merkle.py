"""Merkle trees over transaction/result lists.

Block headers commit to the transactions and results of the block body via
Merkle roots (the paper's footnote 4 notes results can be a "compact
representation (e.g., a Merkle tree) of the state changes"), and membership
proofs let light clients check a single transaction against a header.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.crypto.hashing import EMPTY_DIGEST, digest, hash_obj
from repro.errors import CryptoError

__all__ = ["MerkleTree", "MerkleProof", "merkle_root"]


class MerkleProof:
    """Authentication path for one leaf."""

    __slots__ = ("index", "leaf", "path")

    def __init__(self, index: int, leaf: bytes, path: list[tuple[bool, bytes]]):
        self.index = index
        self.leaf = leaf
        #: List of (sibling_is_left, sibling_digest) from leaf to root.
        self.path = path

    def compute_root(self) -> bytes:
        node = self.leaf
        for sibling_is_left, sibling in self.path:
            if sibling_is_left:
                node = digest(sibling + node)
            else:
                node = digest(node + sibling)
        return node


class MerkleTree:
    """Binary Merkle tree; odd nodes are promoted (Bitcoin-style duplication
    is avoided because it admits mutation attacks)."""

    def __init__(self, items: Sequence[Any]):
        self.leaves = [hash_obj(item) for item in items]
        self.levels: list[list[bytes]] = [list(self.leaves)]
        if not self.leaves:
            self._root = EMPTY_DIGEST
            return
        level = self.leaves
        while len(level) > 1:
            nxt = []
            for i in range(0, len(level) - 1, 2):
                nxt.append(digest(level[i] + level[i + 1]))
            if len(level) % 2 == 1:
                nxt.append(level[-1])
            self.levels.append(nxt)
            level = nxt
        self._root = level[0]

    @property
    def root(self) -> bytes:
        return self._root

    def __len__(self) -> int:
        return len(self.leaves)

    def proof(self, index: int) -> MerkleProof:
        """Authentication path for the leaf at ``index``."""
        if not 0 <= index < len(self.leaves):
            raise CryptoError(f"leaf index {index} out of range")
        path: list[tuple[bool, bytes]] = []
        position = index
        for level in self.levels[:-1]:
            sibling_index = position ^ 1
            if sibling_index < len(level):
                path.append((sibling_index < position, level[sibling_index]))
            position //= 2
        return MerkleProof(index, self.leaves[index], path)

    @staticmethod
    def verify(root: bytes, item: Any, proof: MerkleProof) -> bool:
        """Check that ``item`` is the leaf authenticated by ``proof``."""
        if hash_obj(item) != proof.leaf:
            return False
        return proof.compute_root() == root


def merkle_root(items: Sequence[Any]) -> bytes:
    """Root digest of ``items`` (EMPTY_DIGEST for an empty list)."""
    return MerkleTree(items).root
