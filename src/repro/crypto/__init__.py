"""Cryptographic substrate: simulated signatures, hashing, Merkle trees."""

from repro.crypto.hashing import (
    EMPTY_DIGEST,
    canonical_bytes,
    digest,
    digest_hex,
    hash_obj,
)
from repro.crypto.keys import CryptoCosts, KeyPair, KeyRegistry, Signature
from repro.crypto.merkle import MerkleProof, MerkleTree, merkle_root

__all__ = [
    "EMPTY_DIGEST",
    "canonical_bytes",
    "digest",
    "digest_hex",
    "hash_obj",
    "CryptoCosts",
    "KeyPair",
    "KeyRegistry",
    "Signature",
    "MerkleProof",
    "MerkleTree",
    "merkle_root",
]
