"""Cryptographic substrate: simulated signatures, hashing, Merkle trees."""

from repro.crypto.hashing import (
    EMPTY_DIGEST,
    cache_stats,
    canonical_bytes,
    clear_caches,
    digest,
    digest_hex,
    hash_obj,
    hash_obj_cached,
    reset_cache_stats,
    set_caches_enabled,
)
from repro.crypto.keys import CryptoCosts, KeyPair, KeyRegistry, Signature
from repro.crypto.merkle import MerkleProof, MerkleTree, merkle_root

__all__ = [
    "EMPTY_DIGEST",
    "cache_stats",
    "canonical_bytes",
    "clear_caches",
    "digest",
    "digest_hex",
    "hash_obj",
    "hash_obj_cached",
    "reset_cache_stats",
    "set_caches_enabled",
    "CryptoCosts",
    "KeyPair",
    "KeyRegistry",
    "Signature",
    "MerkleProof",
    "MerkleTree",
    "merkle_root",
]
