"""Simulated digital signatures with key erasure.

Substitution note (see DESIGN.md): real asymmetric cryptography is not in
the Python standard library and its constant factors are irrelevant to the
reproduced results, so signatures are *simulated*: a signature is
``SHA-256(seed || data)`` and a :class:`KeyRegistry` — a stand-in for the
mathematics that lets anyone verify with the public key — holds the
verification material.  The properties the paper relies on hold by
construction inside the simulation:

- **Unforgeability**: only code holding the live :class:`KeyPair` object can
  produce valid signatures; adversarial test code models key compromise by
  *taking the object*.
- **Third-party verifiability**: anyone can verify a signature given the
  public key string via the registry.
- **Erasure** (the forgetting protocol of Section V-D): ``erase()`` destroys
  the private seed inside the key pair; a later compromise of the owner
  yields nothing, while previously produced signatures remain verifiable.

The CPU cost of sign/verify is charged by the *caller* on its simulated CPU
resources using :class:`CryptoCosts`; these functions are computationally
trivial on purpose.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass

from repro.crypto import hashing as _hashing
from repro.errors import CryptoError

__all__ = ["Signature", "KeyPair", "KeyRegistry", "CryptoCosts"]


@dataclass(frozen=True)
class Signature:
    """A signature: who signed (public key id) and the MAC-style value."""

    signer: str          # public key (hex id)
    value: bytes

    def to_canonical(self) -> tuple:
        return ("sig", self.signer, self.value)

    #: Serialized size of an individual signature on the wire/ledger, bytes.
    WIRE_SIZE = 72


class KeyPair:
    """A public/private key pair whose private half can be erased."""

    def __init__(self, registry: "KeyRegistry", seed: bytes, public: str, label: str):
        self._registry = registry
        self._seed: bytes | None = seed
        self.public = public
        self.label = label

    @property
    def is_erased(self) -> bool:
        return self._seed is None

    def sign(self, data: bytes) -> Signature:
        """Sign ``data``.  Raises :class:`CryptoError` if the key was erased."""
        if self._seed is None:
            raise CryptoError(f"key {self.label} ({self.public[:8]}…) was erased")
        value = hashlib.sha256(self._seed + data).digest()
        return Signature(self.public, value)

    def erase(self) -> None:
        """Destroy the private seed (forgetting protocol).

        Signatures already produced remain verifiable; no new signature can
        ever be produced with this key, even by an attacker who captures the
        owner afterwards.
        """
        self._seed = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "erased" if self.is_erased else "live"
        return f"KeyPair({self.label}, {self.public[:8]}…, {state})"


class KeyRegistry:
    """Generates key pairs and verifies signatures.

    One registry per simulation; it is the 'mathematics oracle' — the
    verification side of the simulated scheme.  It never *signs*, so holding
    a reference to it grants no forging power to protocol code.
    """

    #: Bound on the per-registry verify cache; the quorum working set of a
    #: Table-scale run is a few thousand distinct (key, payload) pairs.
    VERIFY_CACHE_MAX = 8192

    def __init__(self, seed: int = 0):
        self._counter = itertools.count(1)
        self._master = seed
        self._verification: dict[str, bytes] = {}
        # (public, data, sig value) -> bool.  Safe to memoize because a
        # key's verification seed never changes once generated; results are
        # cached only for *known* keys, so a signature probed before its key
        # registers is re-checked (never a stale False).
        self._verify_cache: dict[tuple[str, bytes, bytes], bool] = {}

    def generate(self, label: str = "") -> KeyPair:
        """Create a fresh key pair."""
        index = next(self._counter)
        seed = hashlib.sha256(f"key:{self._master}:{index}:{label}".encode()).digest()
        public = hashlib.sha256(b"pub:" + seed).hexdigest()
        self._verification[public] = seed
        return KeyPair(self, seed, public, label or f"key-{index}")

    def verify(self, public: str, data: bytes, signature: Signature) -> bool:
        """Check ``signature`` over ``data`` against ``public``.

        Results for known keys are memoized: the same certificate signature
        is re-checked by the replica, the PERSIST tally, the auditor and the
        third-party verifier, and the underlying hash only needs computing
        once.  The modeled CPU time (:class:`CryptoCosts`) is charged by the
        caller regardless, so caching never changes simulated timing.
        """
        if signature.signer != public:
            return False
        if _hashing.caches_enabled():
            key = (public, data, signature.value)
            cached = self._verify_cache.get(key)
            if cached is not None:
                _hashing.CACHE_COUNTERS["verify_cache_hits"] += 1
                return cached
            seed = self._verification.get(public)
            if seed is None:
                # Unknown key: do not cache — it may register later.
                return False
            _hashing.CACHE_COUNTERS["verify_cache_misses"] += 1
            result = hashlib.sha256(seed + data).digest() == signature.value
            if len(self._verify_cache) >= self.VERIFY_CACHE_MAX:
                for old in list(self._verify_cache)[: self.VERIFY_CACHE_MAX // 2]:
                    del self._verify_cache[old]
            self._verify_cache[key] = result
            return result
        seed = self._verification.get(public)
        if seed is None:
            return False
        expected = hashlib.sha256(seed + data).digest()
        return expected == signature.value

    def is_known(self, public: str) -> bool:
        return public in self._verification


@dataclass
class CryptoCosts:
    """CPU service times for cryptographic operations (charged by callers).

    Calibrated so a single core verifies ≈3k signatures/second — consistent
    with RSA-1024/ECDSA verification on the paper's 2.27 GHz Xeon E5520 and
    with the sequential-verification throughput of Table I.
    """

    sign_time: float = 450e-6        # seconds per signature creation
    verify_time: float = 330e-6      # seconds per signature verification
    hash_time_per_kb: float = 3e-6   # seconds per KiB hashed
