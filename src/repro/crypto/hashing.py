"""Cryptographic hashing and canonical serialization.

All hash-chaining in the ledger uses real SHA-256 over a canonical byte
encoding, so tamper-detection in tests is genuine: flipping any bit of a
stored block changes its digest and breaks the chain.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Any

from repro.errors import CryptoError

__all__ = ["digest", "digest_hex", "canonical_bytes", "hash_obj", "EMPTY_DIGEST"]


def digest(data: bytes) -> bytes:
    """SHA-256 digest of raw bytes."""
    return hashlib.sha256(data).digest()


def digest_hex(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


#: Digest of the empty byte string — used as ``hash(∅)`` for the genesis
#: block's previous-hash field (Algorithm 1, line 6).
EMPTY_DIGEST = digest(b"")


def canonical_bytes(obj: Any) -> bytes:
    """Deterministically encode nested Python values to bytes.

    Supports ``None``, ``bool``, ``int``, ``float``, ``str``, ``bytes`` and
    (nested) tuples, lists and dicts with sortable keys.  The encoding is
    type-tagged and length-prefixed, so distinct values never collide
    structurally (e.g. ``["ab"]`` vs ``["a", "b"]``).
    """
    out = bytearray()
    _encode(obj, out)
    return bytes(out)


def _encode(obj: Any, out: bytearray) -> None:
    if obj is None:
        out += b"N"
    elif obj is True:
        out += b"T"
    elif obj is False:
        out += b"F"
    elif isinstance(obj, int):
        body = str(obj).encode()
        out += b"I" + struct.pack(">I", len(body)) + body
    elif isinstance(obj, float):
        out += b"D" + struct.pack(">d", obj)
    elif isinstance(obj, str):
        body = obj.encode("utf-8")
        out += b"S" + struct.pack(">I", len(body)) + body
    elif isinstance(obj, bytes):
        out += b"B" + struct.pack(">I", len(obj)) + obj
    elif isinstance(obj, (tuple, list)):
        out += b"L" + struct.pack(">I", len(obj))
        for item in obj:
            _encode(item, out)
    elif isinstance(obj, dict):
        items = sorted(obj.items(), key=lambda kv: canonical_bytes(kv[0]))
        out += b"M" + struct.pack(">I", len(items))
        for key, value in items:
            _encode(key, out)
            _encode(value, out)
    elif hasattr(obj, "to_canonical"):
        _encode(obj.to_canonical(), out)
    else:
        raise CryptoError(f"cannot canonically encode {type(obj).__name__}")


def hash_obj(obj: Any) -> bytes:
    """SHA-256 over the canonical encoding of ``obj``."""
    return digest(canonical_bytes(obj))
