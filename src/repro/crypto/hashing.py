"""Cryptographic hashing and canonical serialization.

All hash-chaining in the ledger uses real SHA-256 over a canonical byte
encoding, so tamper-detection in tests is genuine: flipping any bit of a
stored block changes its digest and breaks the chain.

Hot-path engineering (see docs/performance.md)
----------------------------------------------
Canonical encoding and hashing dominate the simulator's wall-clock: a
Table I run encodes hundreds of thousands of small tuples.  Two
complementary optimizations keep the *bytes produced identical* while
cutting the cost severalfold:

- :func:`canonical_bytes` dispatches on the exact type and inlines the
  dominant shapes (str/bytes/int leaves inside flat tuples), so the
  common ``("coin", a, b, c)``-style payload encodes without per-element
  function calls; subclasses and ``to_canonical`` objects fall back to
  the original recursive path.
- :func:`hash_obj_cached` memoizes digests of *hashable, immutable*
  payloads in a bounded content-addressed table.  Protocol payloads that
  every replica re-derives per message (the ACCEPT payload of a consensus
  instance, for example) hash once per content instead of once per hop.

Both caches sit behind :func:`set_caches_enabled` — the escape hatch used
by the determinism tests to prove cached and uncached runs produce
byte-identical exports — and report hit/miss counts via
:func:`cache_stats` (surfaced as ``digest_cache_hits``/``_misses`` run
metrics).  The verify cache of :class:`repro.crypto.keys.KeyRegistry`
shares the same switch and counter table.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Any

from repro.errors import CryptoError

__all__ = [
    "digest",
    "digest_hex",
    "canonical_bytes",
    "hash_obj",
    "hash_obj_cached",
    "EMPTY_DIGEST",
    "set_caches_enabled",
    "caches_enabled",
    "cache_stats",
    "reset_cache_stats",
    "clear_caches",
    "register_cache",
    "CACHE_COUNTERS",
]

_sha256 = hashlib.sha256


def digest(data: bytes) -> bytes:
    """SHA-256 digest of raw bytes."""
    return _sha256(data).digest()


def digest_hex(data: bytes) -> str:
    return _sha256(data).hexdigest()


#: Digest of the empty byte string — used as ``hash(∅)`` for the genesis
#: block's previous-hash field (Algorithm 1, line 6).
EMPTY_DIGEST = digest(b"")

_pack_u32 = struct.Struct(">I").pack
_pack_f64 = struct.Struct(">d").pack


# ----------------------------------------------------------------------
# Cache switch and statistics
# ----------------------------------------------------------------------
#: Cross-module cache counter table.  ``repro.crypto.keys`` records its
#: signature-verify cache here too, so one snapshot covers all crypto
#: caches; the bench harness diffs it around a run and exposes the deltas
#: as run metrics.
CACHE_COUNTERS: dict[str, int] = {
    "digest_cache_hits": 0,
    "digest_cache_misses": 0,
    "verify_cache_hits": 0,
    "verify_cache_misses": 0,
}

_caches_enabled = True

#: Bound on the content-addressed digest memo (FIFO eviction of the older
#: half when full — entries are tiny tuples and digests).
_MEMO_MAX = 16384
_memo: dict[Any, bytes] = {}

#: Satellite memo tables (e.g. SMaRtCoin's coin-id memo) registered so the
#: master switch clears them all at once.
_registered_caches: list[dict] = []

#: Interning tables for encoded int / short-str *elements*.  Unlike the
#: digest memo these cache an encoding, not a result: the bytes stored are
#: exactly what :func:`_encode` would produce, so they cannot affect output
#: even in principle.  They still honor the master switch (stores are gated
#: on ``_caches_enabled`` and disabling clears them) so the determinism
#: tests exercise a genuinely cache-free encoder.  Client ids, request ids
#: and tag strings ("coin", "accept", addresses) recur across hundreds of
#: thousands of otherwise-unique payloads, which is where encoding time
#: goes on a Table I run.
_INTERN_MAX = 4096
_INTERN_STR_LEN = 24
_int_enc: dict[int, bytes] = {}
_str_enc: dict[str, bytes] = {}


def register_cache(table: dict) -> dict:
    """Register an external memo table to be cleared whenever the caches
    are disabled.  Returns the table for inline use."""
    _registered_caches.append(table)
    return table


def set_caches_enabled(enabled: bool) -> None:
    """Master switch for the crypto caches (digest memo, per-object digest
    slots, signature verify cache, registered satellite memos).  Disabling
    clears the memos so a later re-enable starts cold; used by tests to
    prove determinism under caching."""
    global _caches_enabled
    _caches_enabled = bool(enabled)
    if not _caches_enabled:
        clear_caches()


def clear_caches() -> None:
    """Empty every memo table (digest memo, interning tables, registered
    satellite memos) without touching the enabled flag or the counters.

    The bench harness calls this at the start of each run so per-run cache
    hit/miss deltas are cold-start deterministic — a run's reported metrics
    must not depend on which runs happened earlier in the same process."""
    _memo.clear()
    _int_enc.clear()
    _str_enc.clear()
    for table in _registered_caches:
        table.clear()


def caches_enabled() -> bool:
    return _caches_enabled


def cache_stats() -> dict[str, int]:
    """Copy of the cumulative cache counters (process-wide; diff around a
    run for per-run numbers)."""
    return dict(CACHE_COUNTERS)


def reset_cache_stats() -> None:
    for key in CACHE_COUNTERS:
        CACHE_COUNTERS[key] = 0


# ----------------------------------------------------------------------
# Canonical encoding
# ----------------------------------------------------------------------
def canonical_bytes(obj: Any) -> bytes:
    """Deterministically encode nested Python values to bytes.

    Supports ``None``, ``bool``, ``int``, ``float``, ``str``, ``bytes`` and
    (nested) tuples, lists and dicts with sortable keys.  The encoding is
    type-tagged and length-prefixed, so distinct values never collide
    structurally (e.g. ``["ab"]`` vs ``["a", "b"]``).
    """
    out = bytearray()
    _encode(obj, out)
    return bytes(out)


def _encode(obj: Any, out: bytearray) -> None:
    # Exact-type dispatch with the dominant shapes inlined: protocol
    # payloads are overwhelmingly flat tuples of str/int/bytes, which this
    # loop encodes without a function call per element.  Anything else
    # (bool/None/float/dict, subclasses, to_canonical objects) takes the
    # general path; the bytes produced are identical either way.
    t = obj.__class__
    if t is tuple or t is list:
        out += b"L" + _pack_u32(len(obj))
        for item in obj:
            it = item.__class__
            if it is str:
                enc = _str_enc.get(item)
                if enc is None:
                    body = item.encode("utf-8")
                    enc = b"S" + _pack_u32(len(body)) + body
                    if (_caches_enabled and len(item) <= _INTERN_STR_LEN
                            and len(_str_enc) < _INTERN_MAX):
                        _str_enc[item] = enc
                out += enc
            elif it is int:
                enc = _int_enc.get(item)
                if enc is None:
                    body = str(item).encode()
                    enc = b"I" + _pack_u32(len(body)) + body
                    if _caches_enabled and len(_int_enc) < _INTERN_MAX:
                        _int_enc[item] = enc
                out += enc
            elif it is bytes:
                out += b"B" + _pack_u32(len(item)) + item
            else:
                _encode(item, out)
    elif t is str:
        body = obj.encode("utf-8")
        out += b"S" + _pack_u32(len(body)) + body
    elif t is bytes:
        out += b"B" + _pack_u32(len(obj)) + obj
    elif t is int:
        body = str(obj).encode()
        out += b"I" + _pack_u32(len(body)) + body
    else:
        _encode_general(obj, out)


def _encode_general(obj: Any, out: bytearray) -> None:
    # The original isinstance chain: handles bool/None/float/dict, the
    # subclasses the fast path deliberately skips (IntEnum, str subclasses)
    # and objects exposing ``to_canonical``.
    if obj is None:
        out += b"N"
    elif obj is True:
        out += b"T"
    elif obj is False:
        out += b"F"
    elif isinstance(obj, int):
        body = str(obj).encode()
        out += b"I" + _pack_u32(len(body)) + body
    elif isinstance(obj, float):
        out += b"D" + _pack_f64(obj)
    elif isinstance(obj, str):
        body = obj.encode("utf-8")
        out += b"S" + _pack_u32(len(body)) + body
    elif isinstance(obj, bytes):
        out += b"B" + _pack_u32(len(obj)) + obj
    elif isinstance(obj, (tuple, list)):
        out += b"L" + _pack_u32(len(obj))
        for item in obj:
            _encode(item, out)
    elif isinstance(obj, dict):
        items = sorted(obj.items(), key=lambda kv: canonical_bytes(kv[0]))
        out += b"M" + _pack_u32(len(items))
        for key, value in items:
            _encode(key, out)
            _encode(value, out)
    elif hasattr(obj, "to_canonical"):
        _encode(obj.to_canonical(), out)
    else:
        raise CryptoError(f"cannot canonically encode {type(obj).__name__}")


def hash_obj(obj: Any) -> bytes:
    """SHA-256 over the canonical encoding of ``obj``."""
    out = bytearray()
    _encode(obj, out)
    return _sha256(out).digest()


def hash_obj_cached(obj: Any) -> bytes:
    """:func:`hash_obj` through the bounded content-addressed memo.

    ``obj`` must be hashable *and treated as immutable* — use this only for
    value-type payloads (tuples of primitives).  Repeated protocol
    payloads (an instance's ACCEPT payload re-derived by every receiver)
    hash once per content instead of once per hop.

    Like ``functools.lru_cache``, the memo keys by equality, so
    numerically-equal values of different types share an entry (``1`` /
    ``True`` / ``1.0``) even though their canonical encodings differ.  Only
    use this for payload shapes with fixed field types — every call site in
    this repo passes ``(str, int, bytes)`` tuples; use :func:`hash_obj` for
    anything type-ambiguous.
    """
    if not _caches_enabled:
        return hash_obj(obj)
    cached = _memo.get(obj)
    if cached is not None:
        CACHE_COUNTERS["digest_cache_hits"] += 1
        return cached
    CACHE_COUNTERS["digest_cache_misses"] += 1
    value = hash_obj(obj)
    if len(_memo) >= _MEMO_MAX:
        # FIFO eviction of the older half (insertion order is kept by dict).
        for key in list(_memo)[: _MEMO_MAX // 2]:
            del _memo[key]
    _memo[obj] = value
    return value
