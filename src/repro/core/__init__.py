"""SMARTCHAIN: the paper's blockchain platform (Algorithm 1 + reconfiguration)."""

from repro.core.blockchain_layer import ReconfigOutcome, SmartChainDelivery
from repro.core.node import Consortium, SmartChainNode, bootstrap
from repro.core.persistence import (
    PersistenceLevel,
    PersistMsg,
    persistence_level_of,
)
from repro.core.reconfig import (
    ReconfigAskMsg,
    ReconfigManager,
    ReconfigVoteMsg,
    accept_all_policy,
)

__all__ = [
    "ReconfigOutcome",
    "SmartChainDelivery",
    "Consortium",
    "SmartChainNode",
    "bootstrap",
    "PersistenceLevel",
    "PersistMsg",
    "persistence_level_of",
    "ReconfigAskMsg",
    "ReconfigManager",
    "ReconfigVoteMsg",
    "accept_all_policy",
]
