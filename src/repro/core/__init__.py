"""SMARTCHAIN: the paper's blockchain platform (Algorithm 1 + reconfiguration)."""

from repro.core.blockchain_layer import ReconfigOutcome, SmartChainDelivery
from repro.core.multichain import (
    SHARD_STRIDE,
    MultiChain,
    bootstrap_shards,
    shard_of_node,
)
from repro.core.node import Consortium, ReplicaGroup, SmartChainNode, bootstrap
from repro.core.persistence import (
    PersistenceLevel,
    PersistMsg,
    persistence_level_of,
)
from repro.core.reconfig import (
    ReconfigAskMsg,
    ReconfigManager,
    ReconfigVoteMsg,
    accept_all_policy,
)

__all__ = [
    "ReconfigOutcome",
    "SmartChainDelivery",
    "Consortium",
    "ReplicaGroup",
    "SmartChainNode",
    "bootstrap",
    "SHARD_STRIDE",
    "MultiChain",
    "bootstrap_shards",
    "shard_of_node",
    "PersistenceLevel",
    "PersistMsg",
    "persistence_level_of",
    "ReconfigAskMsg",
    "ReconfigManager",
    "ReconfigVoteMsg",
    "accept_all_policy",
]
