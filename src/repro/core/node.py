"""SmartChainNode: a complete SMARTCHAIN platform node.

Composes a Mod-SMaRt replica (per-view consensus keys), the blockchain
delivery layer (Algorithm 1) and the decentralized reconfiguration manager,
and adds:

- a *system invoker* so the node itself can submit special transactions
  (join/leave/remove/keyreg) through the ordering protocol and match reply
  quorums like a client;
- crash / recovery orchestration (including re-running the PERSIST phase
  for blocks whose certificates were lost in a full crash);
- a :func:`bootstrap` helper that generates the consortium keys, writes the
  genesis block and builds the initial nodes — the zero-to-running path the
  examples use.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.config import CostModel, SmartChainConfig
from repro.core.blockchain_layer import SmartChainDelivery
from repro.core.reconfig import ReconfigManager
from repro.crypto.keys import KeyRegistry
from repro.crypto.hashing import hash_obj
from repro.ledger.block import KeyAnnouncement
from repro.ledger.genesis import GenesisBlock
from repro.net.network import Network
from repro.sim.engine import Simulator
from repro.sim.trace import TraceLog
from repro.smr.keydir import KeyDirectory
from repro.smr.replica import ModSmartReplica
from repro.smr.requests import ClientRequest, ReplyBatchMsg, RequestBatchMsg
from repro.smr.service import Application
from repro.smr.views import View
from repro.storage.stable import StableStore

__all__ = ["SmartChainNode", "bootstrap", "ReplicaGroup", "Consortium"]


@dataclass
class _SystemCall:
    request: ClientRequest
    on_reply: Callable[[Any], None] | None
    votes: dict[bytes, set[int]] = field(default_factory=dict)
    payloads: dict[bytes, Any] = field(default_factory=dict)


class SmartChainNode:
    """One member (or candidate member) of a SMARTCHAIN consortium."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        registry: KeyRegistry,
        keydir: KeyDirectory,
        node_id: int,
        genesis: GenesisBlock,
        config: SmartChainConfig,
        costs: CostModel,
        app: Application,
        store: StableStore | None = None,
        trace: TraceLog | None = None,
        view: View | None = None,
        permanent_key=None,
        initial_consensus_key=None,
        policy: Callable[[str, int, Any], bool] | None = None,
        engine=None,
    ):
        self.sim = sim
        self.id = node_id
        self.genesis = genesis
        self.config = config
        self.app = app
        current_view = view or genesis.view
        self.permanent_keys: dict[int, str] = dict(genesis.permanent_keys)
        self.delivery = SmartChainDelivery(app, config, genesis)
        self.delivery.node = self
        self.replica = ModSmartReplica(
            sim, network, registry, keydir, node_id, current_view,
            config.smr, costs, self.delivery, store=store, trace=trace,
            key_policy="per_view",
            active=current_view.contains(node_id),
            permanent_key=permanent_key,
            initial_consensus_key=initial_consensus_key,
            engine=engine,
        )
        self.reconfig = ReconfigManager(self, policy=policy)
        self.replica.register_handler(ReplyBatchMsg, self._on_reply_batch)
        self._system_seq = itertools.count(1)
        self._system_calls: dict[tuple[int, int], _SystemCall] = {}
        #: Invoked after every reconfiguration block (tests/benches hook it).
        self.view_listeners: list[Callable[[View], None]] = []

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    @property
    def view(self) -> View:
        return self.replica.cv

    @property
    def chain(self):
        return self.delivery.chain

    @property
    def active(self) -> bool:
        return self.replica.active and not self.replica.crashed

    def chain_records(self) -> list[tuple]:
        return self.delivery.chain_records()

    # ------------------------------------------------------------------
    # System transactions (the node acting as its own client)
    # ------------------------------------------------------------------
    def submit_system_request(self, op: Any, special: str,
                              on_reply: Callable[[Any], None] | None = None) -> None:
        replica = self.replica
        request = ClientRequest(
            client_id=1_000_000 + self.id,
            req_id=next(self._system_seq),
            op=op,
            size=320,
            signed=False,
            sent_at=self.sim.now,
            station=self.id,
            reply_size=128,
            special=special,
        )
        self._system_calls[request.key] = _SystemCall(request, on_reply)
        targets = list(replica.cv.members)
        nbytes = request.size + 16
        replica.net.broadcast(self.id, targets, RequestBatchMsg(
            requests=[request], size=nbytes))

    def _on_reply_batch(self, src: int, msg: ReplyBatchMsg) -> None:
        quorum = self.replica.quorum
        for key, (payload, digest) in msg.results.items():
            call = self._system_calls.get(key)
            if call is None:
                continue
            voters = call.votes.setdefault(digest, set())
            voters.add(msg.replica_id)
            call.payloads[digest] = payload
            if len(voters) >= quorum:
                del self._system_calls[key]
                if call.on_reply is not None:
                    call.on_reply(call.payloads[digest])

    # ------------------------------------------------------------------
    # Membership operations (Figure 5)
    # ------------------------------------------------------------------
    def join(self, credentials: Any = None,
             on_done: Callable[[], None] | None = None) -> None:
        """Ask the consortium for admission, then catch up and activate."""

        def on_view_reply(result: Any) -> None:
            if not (isinstance(result, tuple) and result
                    and result[0] == "view"):
                self.replica.trace.emit(self.sim.now, "join-rejected",
                                        replica=self.id, result=repr(result))
                return
            _tag, view_id, members = result
            new_view = View(view_id, tuple(members))
            self.replica.install_view(new_view)
            self.replica.state_transfer.start(lambda _cid: self._activate(on_done))

        self.reconfig.request_join(credentials, on_done=on_view_reply)

    def _activate(self, on_done: Callable[[], None] | None) -> None:
        if self.replica.active:
            return
        self.replica.active = True
        self.replica.trace.emit(self.sim.now, "joined", replica=self.id,
                                view=self.view.view_id)
        self.replica.maybe_propose()
        if on_done is not None:
            on_done()

    def leave(self, on_done: Callable[[], None] | None = None) -> None:
        """Ask to leave; the node keeps serving until the new view installs
        (a leaver that stops early is considered faulty — Section III)."""

        def on_view_reply(result: Any) -> None:
            self.replica.trace.emit(self.sim.now, "left", replica=self.id,
                                    result=repr(result))
            if on_done is not None:
                on_done()

        self.reconfig.request_leave(on_done=on_view_reply)

    def vote_exclude(self, target: int) -> None:
        self.reconfig.vote_exclude(target)

    def on_view_change(self, block, new_view: View) -> None:
        """Called by the reconfiguration manager after a view installs."""
        for listener in self.view_listeners:
            listener(new_view)

    # ------------------------------------------------------------------
    # Crash / recovery
    # ------------------------------------------------------------------
    def crash(self) -> None:
        self.replica.crash()

    def recover(self, on_ready: Callable[[], None] | None = None) -> None:
        """Recover from a crash: local stable state, then state transfer,
        then (strong variant) re-certify any block that lost its
        certificate in the crash."""

        def ready() -> None:
            if self.delivery.can_self_verify():
                self.delivery.repersist_missing()
            if on_ready is not None:
                on_ready()

        self.replica.recover(ready)


class ReplicaGroup:
    """One independent SMARTCHAIN replica group: nodes plus substrate.

    A group owns everything consensus-scoped — its view, genesis block,
    key directory, per-node chains and apps — while the simulation
    substrate (``sim``, and in sharded deployments the network and key
    registry) may be shared with other groups.  The single-group
    deployment of :func:`bootstrap` is the ``shard=0`` special case; a
    sharded multi-chain (:mod:`repro.core.multichain`) hosts several
    groups side by side, each with member ids offset by its shard base.
    """

    def __init__(self, sim, network, registry, keydir, genesis, nodes,
                 config, costs, engine=None, shard=0, base_id=0):
        self.sim = sim
        self.network = network
        self.registry = registry
        self.keydir = keydir
        self.genesis = genesis
        self.nodes: dict[int, SmartChainNode] = {n.id: n for n in nodes}
        self.config = config
        self.costs = costs
        self.engine = engine
        #: Which shard this group orders for (0 in single-group runs).
        self.shard = shard
        #: First member id of the group (``shard * SHARD_STRIDE``).
        self.base_id = base_id

    @property
    def view(self) -> View:
        for node in self.nodes.values():
            if node.active:
                return node.view
        return self.genesis.view

    def node(self, node_id: int) -> SmartChainNode:
        return self.nodes[node_id]

    def active_nodes(self) -> list[SmartChainNode]:
        return [n for n in self.nodes.values() if n.active]

    def add_candidate(self, node_id: int, app: Application,
                      policy=None) -> SmartChainNode:
        """Create a not-yet-member node that can request to join."""
        node = SmartChainNode(
            self.sim, self.network, self.registry, self.keydir, node_id,
            self.genesis, self.config, self.costs, app,
            view=self.view, policy=policy, engine=self.engine,
        )
        node.replica.active = False
        self.nodes[node_id] = node
        return node

    def heads(self) -> dict[int, int]:
        return {nid: n.chain.height for nid, n in self.nodes.items()}


#: Back-compat alias: the pre-sharding name of the single-group result.
Consortium = ReplicaGroup


def bootstrap(
    sim: Simulator,
    member_ids: tuple[int, ...],
    app_factory: Callable[[], Application],
    config: SmartChainConfig,
    costs: CostModel | None = None,
    app_setup: Any = None,
    registry: KeyRegistry | None = None,
    network: Network | None = None,
    trace: TraceLog | None = None,
    policy: Callable[[str, int, Any], bool] | None = None,
    engine: str | None = None,
    shard: int = 0,
) -> ReplicaGroup:
    """Create a replica group from scratch: keys, genesis block, nodes.

    This is the deployment path a real operator would follow: generate each
    member's permanent key pair and initial consensus key pair, certify the
    consensus keys with the permanent keys, write everything into the
    genesis block, and start one node per member.

    ``registry`` and ``network`` default to fresh per-group instances (the
    classic single-group deployment); a sharded deployment passes shared
    ones so groups can exchange verifiable artifacts (see
    :mod:`repro.core.multichain`).  Key labels derive from member ids, so
    groups with disjoint member ids draw disjoint keys from a shared
    registry.
    """
    costs = costs or CostModel()
    registry = registry or KeyRegistry(seed=sim.seed)
    network = network or Network(sim, costs.network)
    keydir = KeyDirectory()
    view = View(0, tuple(sorted(member_ids)))

    permanent = {}
    consensus = {}
    announcements = []
    for member in view.members:
        perm_key = registry.generate(f"perm-r{member}")
        cons_key = registry.generate(f"cons-r{member}-v0")
        permanent[member] = perm_key
        consensus[member] = cons_key
        payload = hash_obj(("keyann", 0, member, cons_key.public))
        announcements.append(KeyAnnouncement(
            0, member, cons_key.public, perm_key.sign(payload)))

    genesis = GenesisBlock(
        view=view,
        permanent_keys={m: k.public for m, k in permanent.items()},
        key_announcements=announcements,
        checkpoint_period=config.checkpoint_period,
        app_setup=app_setup,
        created_at=sim.now,
    )

    nodes = []
    for member in view.members:
        node = SmartChainNode(
            sim, network, registry, keydir, member, genesis, config, costs,
            app_factory(), trace=trace,
            permanent_key=permanent[member],
            initial_consensus_key=consensus[member],
            policy=policy,
            engine=engine,
        )
        nodes.append(node)
    return ReplicaGroup(sim, network, registry, keydir, genesis, nodes,
                        config, costs, engine=engine, shard=shard,
                        base_id=min(view.members) if view.members else 0)
