"""The SMARTCHAIN blockchain layer: Algorithm 1 of the paper.

A delivery layer that turns the Mod-SMaRt decision stream into a durable,
self-verifiable chain of blocks:

- the transaction batch is written to the blockchain file *asynchronously,
  in parallel with execution* (lines 17-19);
- results are appended after execution (line 20) — auditability;
- the header closes the block and a ``syncDisk`` makes it stable before
  clients see replies (lines 21-29);
- in the **strong** variant the PERSIST phase then collects a Byzantine
  quorum of header signatures into the block certificate (lines 31-36) —
  0-Persistence.  Only signatures by consensus keys *recorded on the chain*
  (genesis, reconfiguration blocks, keyreg transactions) count, because a
  third-party verifier can validate no others.  If the recorded quorum is
  temporarily unreachable (e.g. a freshly installed view whose late key
  registrations are still in flight), the block completes uncertified and
  is re-certified as soon as the keys land — liveness is never hostage to
  the certificate;
- checkpoints run every z blocks (z from the genesis block) and snapshots
  are written *outside* the chain (lines 49-54);
- reconfiguration transactions get their own blocks carrying the new view
  and its certified consensus keys (lines 37-48).

State transfer serves *checkpoint + blocks up to an agreed consensus id*
(Section V-C: "sending the last checkpoint covering up to a block b plus the
blocks after it"), so any two correct replicas serve bit-identical packages
for the same target — the receiver's f+1 hash comparison is meaningful even
while the system keeps processing new blocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.config import PersistenceVariant, SmartChainConfig, StorageMode
from repro.crypto.hashing import hash_obj
from repro.crypto.keys import Signature
from repro.errors import LedgerError
from repro.ledger.block import (
    Block,
    BlockBody,
    BlockHeader,
    Certificate,
    KeyAnnouncement,
    TxRecord,
)
from repro.ledger.chain import Blockchain
from repro.ledger.genesis import GenesisBlock
from repro.core.persistence import PersistMsg, persistence_level_of
from repro.smr import scheduler
from repro.smr.requests import ClientRequest, Decision
from repro.smr.service import Application, SequentialDelivery
from repro.smr.views import View
from repro.storage.stable import AsyncFlusher

__all__ = ["SmartChainDelivery", "ReconfigOutcome", "CheckpointInfo"]


class ReconfigOutcome:
    """What the reconfiguration handler decides for a special transaction."""

    def __init__(self, new_view: View | None = None,
                 announcements: list[KeyAnnouncement] = (),
                 permanent_updates: dict[int, str] | None = None,
                 result: Any = None):
        self.new_view = new_view
        self.announcements = list(announcements)
        self.permanent_updates = dict(permanent_updates or {})
        self.result = result


@dataclass
class CheckpointInfo:
    """A service snapshot and the chain position it covers."""

    block_number: int
    consensus_id: int
    snapshot: Any
    nbytes: int
    view_id: int
    members: tuple[int, ...]
    permanent_keys: tuple[tuple[int, str], ...]
    recorded: tuple[tuple[int, tuple[int, ...]], ...]
    last_reconfig: int
    head_digest: bytes


class SmartChainDelivery(SequentialDelivery):
    """Algorithm 1, attached on top of a Mod-SMaRt replica."""

    LOG = "chain"
    SNAPSHOT = "chain-snapshot"

    def __init__(self, app: Application, chain_config: SmartChainConfig,
                 genesis: GenesisBlock):
        super().__init__()
        self.app = app
        self.cfg = chain_config
        self.genesis = genesis
        self.chain = Blockchain(genesis)
        self.variant = chain_config.variant
        self.storage = chain_config.storage
        self.last_reconfig = -1
        self.last_checkpoint = -1
        self.executed_cid = -1
        self._flusher: AsyncFlusher | None = None
        #: PERSIST signatures collected per block number.
        self._persist_votes: dict[int, dict[int, tuple[bytes, Signature]]] = {}
        #: Blocks waiting for their certificate: number -> (digest, completion).
        self._persist_waits: dict[int, tuple[bytes, Callable[[], None]]] = {}
        self._persist_timers: dict[int, Any] = {}
        #: Special-transaction handler installed by the reconfiguration
        #: manager; returns a ReconfigOutcome (or None to reject).
        self.reconfig_handler: Callable[[ClientRequest], ReconfigOutcome | None] | None = None
        #: Hook invoked after a reconfiguration block completes.
        self.on_reconfiguration: Callable[[Block, ReconfigOutcome], None] | None = None
        #: The owning SmartChainNode (set by the node; optional for tests).
        self.node = None
        #: Members whose consensus keys are recorded on the chain, per view.
        self.recorded_members: dict[int, set[int]] = {
            0: {a.replica_id for a in genesis.key_announcements}}
        #: Recent checkpoint generations, oldest first (the initial one
        #: stands in for genesis).  Several are retained so that state
        #: transfer can serve a package pinned to a slightly older target
        #: deterministically, even when servers checkpoint at different
        #: wall-clock instants.
        self._checkpoints: list[CheckpointInfo] = []
        # Statistics.
        self.blocks_built = 0
        self.reconfig_blocks = 0
        self.checkpoints_taken = 0
        self.certs_completed = 0
        self.certs_timed_out = 0
        self.stale_votes_rejected = 0
        # Verified-recovery outcome (rolled into run metrics, docs/faults.md).
        self.recovery_verified_entries = 0
        self.recovery_truncated_entries = 0
        self.recovery_fallbacks = 0
        self.snapshots_rejected = 0
        #: Report of the most recent recover_local (None before the first).
        self.last_recovery: dict | None = None

    def _count(self, name: str) -> None:
        """Mirror a chain statistic into the metrics registry when observed."""
        obs = self.replica.sim.obs
        if obs.enabled:
            obs.metrics.counter(name, node=self.replica.id).inc()

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, replica) -> None:
        super().attach(replica)
        replica.register_handler(PersistMsg, self._on_persist)
        if self.storage is StorageMode.ASYNC:
            self._flusher = AsyncFlusher(
                replica.store, replica.config.async_flush_interval)
            self._flusher.start()
        self._write_genesis()
        self._checkpoints = [self._make_checkpoint_info(0, -1)]

    def _write_genesis(self) -> None:
        store = self.replica.store
        if store.log_length(self.LOG) or store.volatile_length(self.LOG):
            return  # already on disk (recovery path)
        record = ("genesis", 0, self.genesis.to_record())
        store.append(self.LOG, record, self.genesis.serialized_bytes())
        if self.storage is StorageMode.SYNC:
            store.sync()

    @property
    def persistence_level(self):
        return persistence_level_of(self.variant, self.storage)

    def _make_checkpoint_info(self, block_number: int,
                              consensus_id: int) -> CheckpointInfo:
        snapshot, nbytes = self.app.snapshot()
        replica = self.replica
        if block_number == 0:
            head_digest = self.genesis.hash_for_block_one
        elif block_number == self.chain.height:
            head_digest = self.chain.head_digest()
        else:
            head_digest = self.chain.get(block_number).digest()
        return CheckpointInfo(
            block_number=block_number,
            consensus_id=consensus_id,
            snapshot=snapshot,
            nbytes=nbytes,
            view_id=replica.cv.view_id,
            members=tuple(replica.cv.members),
            permanent_keys=tuple(sorted(self._permanent_keys().items())),
            recorded=tuple(sorted((vid, tuple(sorted(members)))
                                  for vid, members in
                                  self.recorded_members.items())),
            last_reconfig=self.last_reconfig,
            head_digest=head_digest,
        )

    def _permanent_keys(self) -> dict[int, str]:
        if self.node is not None:
            return self.node.permanent_keys
        return dict(self.genesis.permanent_keys)

    # ------------------------------------------------------------------
    # Sequential block processing
    # ------------------------------------------------------------------
    #: When the delivery pipeline lags the ordering frontier by more than
    #: this many decisions, blocks are processed in *catch-up mode*: replay
    #: speed (no reply marshalling, no stable-write or PERSIST waits).  A
    #: replica that lags (fresh joiner, recovered node) converges to the
    #: head instead of trailing it forever.
    CATCHUP_LAG = 20

    def process(self, decision: Decision, done) -> None:
        if decision.batch and decision.batch[0].special:
            self._process_special(decision, done)
            return
        lag = self.replica.last_decided - decision.cid
        if lag > self.CATCHUP_LAG:
            self._process_catchup(decision, done)
        else:
            self._process_regular(decision, done)

    def _process_catchup(self, decision: Decision, done) -> None:
        """Fast-replay a stale decision: the rest of the group already
        certified and answered it; this replica only needs the state and
        the block."""
        replica = self.replica
        number = self.chain.height + 1
        tx_records = [self._tx_record(r) for r in decision.batch]
        body_bytes = decision.payload_bytes() + 64 + 72 * len(decision.proof)
        if self.storage is not StorageMode.MEMORY:
            replica.store.append(
                self.LOG, ("txs", number, decision.cid,
                           tuple(t.to_record() for t in tx_records),
                           decision.batch_hash),
                body_bytes)
        work = (len(decision.batch) * replica.costs.replay_time_per_tx
                + replica.costs.batch_overhead)
        replica.charge_sm(work, self._apply_catchup, decision, tx_records,
                          number, done)

    def _apply_catchup(self, decision: Decision, tx_records, number,
                       done) -> None:
        replica = self.replica
        results_map = self.app.execute_batch(decision.batch)
        self.executed_cid = decision.cid
        result_records = [(key[0], key[1], repr(value[0]), value[1])
                          for key, value in results_map.items()]
        body = BlockBody(consensus_id=decision.cid, transactions=tx_records,
                         results=result_records,
                         batch_hash=decision.batch_hash)
        header = BlockHeader(
            number=number,
            last_reconfig=self.last_reconfig,
            last_checkpoint=self.last_checkpoint,
            view_id=replica.cv.view_id,
            hash_transactions=body.hash_transactions(),
            hash_results=body.hash_results(),
            hash_last_block=self.chain.head_digest(),
        )
        block = Block(header, body, consensus_proof=dict(decision.proof))
        self.chain.append(block)
        self.blocks_built += 1
        self._count("chain.blocks_built")
        rt = replica.runtime
        if rt.observing:
            rt.notify("block-append", block=number, cid=decision.cid,
                      digest=block.digest().hex(), view=header.view_id)
        if self.storage is not StorageMode.MEMORY:
            replica.store.append(
                self.LOG, ("results", number, tuple(result_records)),
                sum(len(r[2]) + 48 for r in result_records))
            replica.store.append(
                self.LOG,
                ("header", number, header.to_record(),
                 self._proof_record(decision)),
                BlockHeader.WIRE_SIZE + 72 * len(decision.proof))
        replica.note_executed(decision)
        # Certificate from already-buffered PERSIST votes, if any; no wait.
        if (self.variant is PersistenceVariant.STRONG
                and self.storage is not StorageMode.MEMORY):
            digest = block.digest()
            votes = self._persist_votes.pop(number, {})
            recorded = self.recorded_members.get(replica.cv.view_id, set())
            matching = {rid: sig for rid, (d, sig) in votes.items()
                        if d == digest and rid in recorded}
            if len(matching) >= replica.cert_quorum:
                certificate = Certificate(number, digest,
                                          replica.cv.view_id)
                for rid, signature in matching.items():
                    certificate.add(rid, signature)
                block.certificate = certificate
                self.certs_completed += 1
                self._count("chain.certs_completed")
                if rt.observing:
                    rt.notify("persist-certificate", block=number,
                              digest=digest.hex(), view=replica.cv.view_id,
                              signers=sorted(matching))
                replica.store.append(
                    self.LOG, ("cert", number, certificate.to_record()),
                    certificate.size_bytes())
        lag = replica.last_decided - decision.cid
        if lag <= self.CATCHUP_LAG:
            # Caught up: make everything stable and re-certify stragglers.
            if self.storage is StorageMode.SYNC:
                replica.store.sync()
            if self.can_self_verify():
                replica.sim.call_soon(self.repersist_missing)
        self._maybe_checkpoint(number, done)

    def _process_regular(self, decision: Decision, done) -> None:
        replica = self.replica
        costs = replica.costs
        number = self.chain.height + 1
        tx_records = [self._tx_record(r) for r in decision.batch]
        # Line 18: the batch (plus its consensus proof) goes to the chain
        # file immediately — the disk works in parallel with execution.
        body_bytes = decision.payload_bytes() + 64 + 72 * len(decision.proof)
        if self.storage is not StorageMode.MEMORY:
            replica.store.append(
                self.LOG,
                ("txs", number, decision.cid,
                 tuple(t.to_record() for t in tx_records),
                 decision.batch_hash),
                body_bytes)
        if scheduler.parallel_execution(replica, self.app):
            # Per-transaction work runs on the exec pool; block building
            # and body hashing stay on the SM thread.
            serial = (costs.batch_overhead + costs.block_build_overhead
                      + costs.crypto.hash_time_per_kb * (body_bytes / 1024))
            scheduler.charge_execution(replica, self.app, decision.batch,
                                       serial, self._executed, decision,
                                       tx_records, number, done)
            return
        work = replica.execution_cost(decision.batch)
        work += costs.block_build_overhead
        work += costs.crypto.hash_time_per_kb * (body_bytes / 1024)
        replica.charge_sm(work, self._executed, decision, tx_records, number,
                          done)

    def _executed(self, decision: Decision, tx_records: list[TxRecord],
                  number: int, done) -> None:
        replica = self.replica
        results_map = self.app.execute_batch(decision.batch)
        self.executed_cid = decision.cid
        obs = replica.sim.obs
        if obs.trace_pipeline:
            obs.trace_cid(replica.id, decision.cid, "execute", replica.sim.now)
        result_records = [
            (key[0], key[1], repr(value[0]), value[1])
            for key, value in results_map.items()
        ]
        body = BlockBody(
            consensus_id=decision.cid,
            transactions=tx_records,
            results=result_records,
            batch_hash=decision.batch_hash,
        )
        if self.storage is not StorageMode.MEMORY:
            replica.store.append(
                self.LOG, ("results", number, tuple(result_records)),
                sum(len(r[2]) + 48 for r in result_records))
        self._close_block(number, body, decision, results_map, done)

    def _close_block(self, number: int, body: BlockBody, decision: Decision,
                     results_map: dict, done,
                     reconfig: ReconfigOutcome | None = None) -> None:
        """Lines 21, 26-29: write the header and make the block stable."""
        replica = self.replica
        header = BlockHeader(
            number=number,
            last_reconfig=self.last_reconfig,
            last_checkpoint=self.last_checkpoint,
            view_id=replica.cv.view_id,
            hash_transactions=body.hash_transactions(),
            hash_results=body.hash_results(),
            hash_last_block=self.chain.head_digest(),
        )
        block = Block(header, body, consensus_proof=dict(decision.proof))
        self.chain.append(block)
        self.blocks_built += 1
        self._count("chain.blocks_built")
        rt = replica.runtime
        if rt.observing:
            rt.notify("block-append", block=number, cid=decision.cid,
                      digest=block.digest().hex(), view=header.view_id)
        if self.storage is not StorageMode.MEMORY:
            replica.store.append(
                self.LOG,
                ("header", number, header.to_record(),
                 self._proof_record(decision)),
                BlockHeader.WIRE_SIZE + 72 * len(decision.proof))
        if self.storage is StorageMode.SYNC:
            replica.store.sync(self._header_stable, block, decision,
                               results_map, reconfig, done)
        else:
            self._header_stable(block, decision, results_map, reconfig, done)

    def _header_stable(self, block: Block, decision: Decision,
                       results_map: dict, reconfig: ReconfigOutcome | None,
                       done) -> None:
        obs = self.replica.sim.obs
        if obs.trace_pipeline:
            obs.trace_cid(self.replica.id, decision.cid, "body_write",
                          self.replica.sim.now)
        if (self.variant is PersistenceVariant.STRONG
                and self.storage is not StorageMode.MEMORY):
            completion = (lambda: self._finish_block(block, decision,
                                                     results_map, reconfig,
                                                     done))
            self._persist_block(block, completion)
        else:
            self._finish_block(block, decision, results_map, reconfig, done)

    # ------------------------------------------------------------------
    # PERSIST phase (strong variant)
    # ------------------------------------------------------------------
    def _persist_block(self, block: Block, completion) -> None:
        """Run the PERSIST phase for ``block``; ``completion`` fires once the
        certificate is assembled (or the wait times out — the block is then
        re-certified later)."""
        replica = self.replica
        digest = block.digest()
        self._persist_waits[block.number] = (digest, completion)
        key = replica.consensus_key()

        def signed() -> None:
            if key.is_erased:
                return  # a view change rotated keys under this queued job
            signature = key.sign(digest)
            msg = PersistMsg(block_number=block.number, header_digest=digest,
                             replica_id=replica.id, signature=signature)
            rt = replica.runtime
            if rt.observing:
                rt.notify("persist-vote", **msg.event_fields())
            replica.broadcast_view(msg)

        replica.charge_pool(replica.costs.crypto.sign_time, signed)
        timeout = replica.config.persist_timeout
        self._persist_timers[block.number] = replica.sim.schedule(
            timeout, replica.guard(self._persist_timed_out), block.number)
        self._check_persist_quorum(block.number)

    def _persist_timed_out(self, number: int) -> None:
        self._persist_timers.pop(number, None)
        waiting = self._persist_waits.pop(number, None)
        if waiting is None:
            return
        # Proceed uncertified; the block will be re-certified once the
        # missing recorded keys land on the chain (repersist_missing).
        self.certs_timed_out += 1
        self._count("chain.certs_timed_out")
        _digest, completion = waiting
        self.replica.trace.emit(self.replica.sim.now, "persist-timeout",
                                replica=self.replica.id, block=number)
        rt = self.replica.runtime
        if rt.observing:
            rt.notify("persist-timeout", block=number)
        completion()

    def _on_persist(self, src: int, msg: PersistMsg) -> None:
        replica = self.replica
        if msg.signature is None:
            return
        public = replica.keydir.lookup(replica.cv.view_id, src)
        if public is None:
            self._flag_stale_vote(src, msg)
            return

        def verified() -> None:
            if not replica.registry.verify(public, msg.header_digest,
                                           msg.signature):
                self._flag_stale_vote(src, msg)
                return
            votes = self._persist_votes.setdefault(msg.block_number, {})
            votes[src] = (msg.header_digest, msg.signature)
            self._check_persist_quorum(msg.block_number)
            self._maybe_answer_persist(src, msg)

        replica.charge_pool(replica.costs.crypto.verify_time, verified)

    def _flag_stale_vote(self, src: int, msg: PersistMsg) -> None:
        """A PERSIST vote that does not verify under the current view's key
        directory: check whether its signature was produced with a *retired*
        view's consensus key — the forgetting protocol (Section V-D) in
        action, rejecting an adversary replaying erased credentials."""
        replica = self.replica
        signer = getattr(msg.signature, "signer", None)
        if signer is None:
            return
        for view_id in range(replica.cv.view_id - 1, -1, -1):
            if replica.keydir.lookup(view_id, src) == signer:
                self.stale_votes_rejected += 1
                self._count("chain.stale_votes_rejected")
                rt = replica.runtime
                if rt.observing:
                    rt.notify("stale-reject", block=msg.block_number,
                              src=src, signed_view=view_id,
                              current_view=replica.cv.view_id)
                return

    def _maybe_answer_persist(self, src: int, msg: PersistMsg) -> None:
        """Help a lagging peer re-certify: if we hold the block it is trying
        to persist (and are not waiting on it ourselves), send our own
        signature directly to it."""
        replica = self.replica
        if src == replica.id or msg.reply:
            return
        if msg.block_number in self._persist_waits:
            return
        try:
            block = self.chain.get(msg.block_number)
        except LedgerError:
            return
        if block.digest() != msg.header_digest:
            return
        key = replica.consensus_key()

        def signed() -> None:
            if key.is_erased:
                return
            reply = PersistMsg(block_number=msg.block_number,
                               header_digest=msg.header_digest,
                               replica_id=replica.id,
                               signature=key.sign(msg.header_digest),
                               reply=True)
            replica.send(src, reply)

        replica.charge_pool(replica.costs.crypto.sign_time, signed)

    def _check_persist_quorum(self, number: int) -> None:
        waiting = self._persist_waits.get(number)
        if waiting is None:
            return
        digest, completion = waiting
        votes = self._persist_votes.get(number, {})
        view = self.replica.cv
        recorded = self.recorded_members.get(view.view_id, set())
        matching = {rid: sig for rid, (d, sig) in votes.items()
                    if d == digest and rid in recorded}
        if len(matching) < self.replica.cert_quorum:
            return
        del self._persist_waits[number]
        timer = self._persist_timers.pop(number, None)
        if timer is not None:
            timer.cancel()
        self._persist_votes.pop(number, None)
        certificate = Certificate(number, digest, view.view_id)
        for rid, signature in matching.items():
            certificate.add(rid, signature)
        try:
            self.chain.get(number).certificate = certificate
        except LedgerError:
            pass  # block not held locally (cannot happen in practice)
        self.certs_completed += 1
        self._count("chain.certs_completed")
        rt = self.replica.runtime
        if rt.observing:
            rt.notify("persist-certificate", block=number,
                      digest=digest.hex(), view=view.view_id,
                      signers=sorted(matching))
        if self.storage is not StorageMode.MEMORY:
            # Line 34: the certificate write is asynchronous — after a full
            # crash the group can always recreate the same certificate.
            self.replica.store.append(
                self.LOG, ("cert", number, certificate.to_record()),
                certificate.size_bytes())
        self.replica.charge_sm(self.replica.costs.persist_handling, completion)

    def repersist_missing(self, on_done: Callable[[], None] | None = None) -> None:
        """Re-run the PERSIST phase for blocks lacking certificates (after a
        full-crash recovery, or after a persist timeout once the missing
        recorded keys landed on the chain)."""
        missing = [b for b in self.chain
                   if b.certificate is None
                   and b.header.view_id == self.replica.cv.view_id
                   and b.number not in self._persist_waits]

        def step() -> None:
            while missing and missing[0].certificate is not None:
                missing.pop(0)
            if not missing:
                if on_done is not None:
                    on_done()
                return
            block = missing.pop(0)
            self._persist_block(block, step)

        step()

    # ------------------------------------------------------------------
    # Block completion, replies, checkpoints
    # ------------------------------------------------------------------
    def _finish_block(self, block: Block, decision: Decision, results_map: dict,
                      reconfig: ReconfigOutcome | None, done) -> None:
        replica = self.replica
        obs = replica.sim.obs
        if (obs.trace_pipeline
                and self.variant is PersistenceVariant.STRONG
                and self.storage is not StorageMode.MEMORY):
            obs.trace_cid(replica.id, decision.cid, "persist", replica.sim.now)
        replica.send_replies(results_map, decision.batch,
                             block_number=block.number)
        replica.note_executed(decision)
        if reconfig is not None and reconfig.new_view is not None:
            self.last_reconfig = block.number
            self.reconfig_blocks += 1
            self._count("chain.reconfig_blocks")
            rt = replica.runtime
            if rt.observing:
                rt.notify("reconfig", op="install", block=block.number,
                          view=reconfig.new_view.view_id)
            replica.install_view(reconfig.new_view)
            if self.on_reconfiguration is not None:
                self.on_reconfiguration(block, reconfig)
        elif (block.body.key_announcements
                and self.variant is PersistenceVariant.STRONG):
            # Late key registrations may unblock earlier uncertified blocks.
            replica.sim.call_soon(self.repersist_missing)
        self._maybe_checkpoint(block.number, done)

    def _maybe_checkpoint(self, number: int, done) -> None:
        z = self.genesis.checkpoint_period
        if z <= 0 or number % z != 0:
            done()
            return
        # Lines 49-54: snapshot the service state outside the blockchain.
        replica = self.replica
        self.last_checkpoint = number
        self.checkpoints_taken += 1
        self._count("chain.checkpoints_taken")
        rt = replica.runtime
        if rt.observing:
            rt.notify("checkpoint", block=number, cid=self.executed_cid)
        info = self._make_checkpoint_info(number, self.executed_cid)
        self._checkpoints.append(info)
        # Keep the initial checkpoint plus the last three generations.
        if len(self._checkpoints) > 4:
            self._checkpoints = self._checkpoints[:1] + self._checkpoints[-3:]
        stall = info.nbytes / replica.costs.disk.snapshot_bandwidth_bytes
        # The service is unavailable while the snapshot is written (the
        # throughput dip of Figure 7); the pipeline resumes afterwards.
        if self.storage is not StorageMode.MEMORY:
            replica.store.write_snapshot(self.SNAPSHOT, info, info.nbytes)
        replica.charge_sm(stall, done)

    # ------------------------------------------------------------------
    # Special (reconfiguration / key registration) blocks — lines 37-48
    # ------------------------------------------------------------------
    def _process_special(self, decision: Decision, done) -> None:
        replica = self.replica
        if self.reconfig_handler is None:
            self._process_regular(decision, done)
            return
        number = self.chain.height + 1
        tx_records = [self._tx_record(r) for r in decision.batch]
        body_bytes = decision.payload_bytes() + 64 + 72 * len(decision.proof)
        if self.storage is not StorageMode.MEMORY:
            replica.store.append(
                self.LOG, ("txs", number, decision.cid,
                           tuple(t.to_record() for t in tx_records),
                           decision.batch_hash),
                body_bytes)
        work = replica.costs.block_build_overhead + replica.costs.batch_overhead
        replica.charge_sm(work, self._apply_special, decision, tx_records,
                          number, done)

    def _apply_special(self, decision: Decision, tx_records: list[TxRecord],
                       number: int, done) -> None:
        replica = self.replica
        outcome = ReconfigOutcome(result=("error", "rejected"))
        all_announcements: list[KeyAnnouncement] = []
        for request in decision.batch:
            handled = self.reconfig_handler(request)
            if handled is not None:
                outcome = handled
                all_announcements.extend(handled.announcements)
        # Deduplicate announcements (several remove votes may carry the same).
        unique: dict[tuple[int, int], KeyAnnouncement] = {}
        for ann in all_announcements:
            unique[(ann.view_id, ann.replica_id)] = ann
        announcements = list(unique.values())
        for ann in announcements:
            self.recorded_members.setdefault(ann.view_id, set()).add(
                ann.replica_id)
        results_map: dict = {}
        result_records = []
        for request in decision.batch:
            if outcome.new_view is not None:
                result = ("view", outcome.new_view.view_id,
                          tuple(outcome.new_view.members))
            else:
                result = outcome.result
            digest = hash_obj(("rc", request.client_id, request.req_id,
                               repr(result)))
            results_map[request.key] = (result, digest)
            result_records.append((request.client_id, request.req_id,
                                   repr(result), digest))
        new_view_record = None
        if outcome.new_view is not None:
            new_view_record = (outcome.new_view.view_id,
                               tuple(outcome.new_view.members),
                               tuple(sorted(outcome.permanent_updates.items())))
        body = BlockBody(
            consensus_id=decision.cid,
            transactions=tx_records,
            results=result_records,
            batch_hash=decision.batch_hash,
            key_announcements=[a.to_record() for a in announcements],
            new_view=new_view_record,
        )
        self.executed_cid = decision.cid
        if self.storage is not StorageMode.MEMORY:
            replica.store.append(
                self.LOG, ("results", number, tuple(result_records)),
                sum(len(r[2]) + 48 for r in result_records))
            replica.store.append(
                self.LOG,
                ("special", number, tuple(a.to_record() for a in announcements),
                 new_view_record),
                96 * len(announcements) + 64)
        self._close_block(number, body, decision, results_map, done,
                          reconfig=outcome if outcome.new_view else None)

    # ------------------------------------------------------------------
    # Block replay (shared by recovery, state transfer, reconciliation)
    # ------------------------------------------------------------------
    def _replay_block(self, block: Block) -> None:
        """Re-apply a block's effects to the service and chain metadata.

        Reconfiguration blocks are applied from their recorded outcome (no
        vote re-validation: the block's certificate/proof covers it).
        """
        body = block.body
        for record in body.key_announcements:
            ann = KeyAnnouncement.from_record(record)
            self.recorded_members.setdefault(ann.view_id, set()).add(
                ann.replica_id)
        if body.new_view is not None:
            view_id, members, permanent_updates = body.new_view
            self.last_reconfig = block.number
            if self.node is not None:
                self.node.permanent_keys.update(dict(permanent_updates))
            new_view = View(view_id, tuple(members))
            if new_view.view_id > self.replica.cv.view_id:
                self.replica.install_view(new_view)
        else:
            requests = [
                ClientRequest(client_id=t.client_id, req_id=t.req_id,
                              op=t.op, size=t.size, special=t.special)
                for t in body.transactions
            ]
            if requests and not requests[0].special:
                self.app.execute_batch(requests)
        z = self.genesis.checkpoint_period
        if z > 0 and block.number % z == 0:
            self.last_checkpoint = block.number
        self.executed_cid = body.consensus_id

    # ------------------------------------------------------------------
    # State transfer: checkpoint + blocks up to the agreed consensus id
    # ------------------------------------------------------------------
    def capture_state(self, up_to_cid: int | None = None) -> tuple[Any, int]:
        target = self.executed_cid if up_to_cid is None else up_to_cid
        info = self._checkpoint_for(target)
        blocks = [b for b in self.chain.blocks(start=info.block_number + 1)
                  if b.body.consensus_id <= target]
        package = (target, self._checkpoint_record(info),
                   tuple(b.to_record() for b in blocks))
        nbytes = info.nbytes + sum(b.serialized_bytes() for b in blocks)
        return package, nbytes

    def _checkpoint_for(self, target_cid: int) -> CheckpointInfo:
        """Newest retained checkpoint not newer than ``target_cid`` — the
        same one every correct replica picks for the same target."""
        candidates = [c for c in self._checkpoints
                      if c.consensus_id <= target_cid
                      and c.block_number >= self.chain.base_height]
        if candidates:
            return max(candidates, key=lambda c: c.block_number)
        if self._checkpoints:
            return self._checkpoints[0]
        return self._make_checkpoint_info(0, -1)

    @staticmethod
    def _checkpoint_record(info: CheckpointInfo) -> tuple:
        return (info.block_number, info.consensus_id, info.snapshot,
                info.nbytes, info.view_id, info.members, info.permanent_keys,
                info.recorded, info.last_reconfig, info.head_digest)

    def install_state(self, package: Any) -> None:
        _target, ckpt_record, block_records = package
        (number, cid, snapshot, nbytes, view_id, members, permanent,
         recorded, last_reconfig, head_digest) = ckpt_record
        self.app.install_snapshot(snapshot)
        self.executed_cid = cid
        self.last_reconfig = last_reconfig
        self.last_checkpoint = number if number > 0 else -1
        self.recorded_members = {vid: set(m) for vid, m in recorded}
        if self.node is not None:
            self.node.permanent_keys.update(dict(permanent))
        view = View(view_id, tuple(members))
        if view.view_id > self.replica.cv.view_id:
            self.replica.install_view(view)
        self.chain = Blockchain.from_suffix(self.genesis, number, head_digest,
                                            [])
        for record in block_records:
            block = Block.from_record(record)
            self.chain.append(block)
            self._replay_block(block)
        self._checkpoints = [CheckpointInfo(
            block_number=number, consensus_id=cid, snapshot=snapshot,
            nbytes=nbytes, view_id=view_id, members=tuple(members),
            permanent_keys=tuple(permanent), recorded=tuple(recorded),
            last_reconfig=last_reconfig, head_digest=head_digest)]

    def package_digest_material(self, package: Any) -> Any:
        """Strip certificates and consensus proofs: any Byzantine-quorum
        subset is valid, so correct replicas legitimately hold different
        ones.  The hash comparison covers target, checkpoint, headers and
        bodies only."""
        target, ckpt_record, block_records = package
        stripped = tuple((header, body) for header, body, _cert, _proof
                         in block_records)
        return (target, ckpt_record, stripped)

    def install_cost(self, package: Any) -> float:
        costs = self.replica.costs
        replay_txs = sum(len(record[1][1]) for record in package[2])
        return replay_txs * costs.replay_time_per_tx

    def can_self_verify(self) -> bool:
        """Strong-variant chains are self-verifiable (certificates)."""
        return (self.variant is PersistenceVariant.STRONG
                and self.storage is not StorageMode.MEMORY)

    def verify_package(self, package: Any) -> bool:
        """Check a state package offered by a single (untrusted) peer: every
        block in the suffix must carry a valid certificate."""
        try:
            blocks = [Block.from_record(r) for r in package[2]]
        except Exception:
            return False
        prev: Block | None = None
        for block in blocks:
            try:
                block.validate_body()
            except LedgerError:
                return False
            cert = block.certificate
            if cert is None or cert.header_digest != block.digest():
                return False
            if prev is not None and block.header.hash_last_block != prev.digest():
                return False
            keys = self.replica.keydir.view_keys(block.header.view_id)
            valid = sum(
                1 for rid, sig in cert.signatures.items()
                if keys.get(rid) and self.replica.registry.verify(
                    keys[rid], cert.header_digest, sig))
            n = len(keys)
            f = (n - 1) // 3 if n else 0
            quorum = max(2 * f + 1, (n + f + 1) // 2)
            if n == 0 or valid < quorum:
                return False
            prev = block
        return True

    # ------------------------------------------------------------------
    # Local recovery (after a recoverable crash)
    # ------------------------------------------------------------------
    def recover_local(self) -> int:
        """Rebuild the chain and service state from the stable store.

        With ``SMRConfig(verify_recovery=True)`` (the default) every stored
        record is checked against its append-time checksum — the log is
        truncated at the first invalid record — the rebuilt chain is walked
        by the third-party :class:`~repro.ledger.verifier.ChainVerifier`
        (the ledger is self-verifiable, so local recovery holds itself to
        the same standard as a received chain), and a snapshot whose stored
        digest mismatches is rejected.
        """
        if self._flusher is not None:
            self._flusher.start()
        replica = self.replica
        store = replica.store
        rt = replica.runtime
        observing = rt.observing
        verify = replica.config.verify_recovery
        truncated_before = self.recovery_truncated_entries
        fallbacks_before = self.recovery_fallbacks
        rejected_before = self.snapshots_rejected
        raw = store.read_entries(self.LOG)
        if verify:
            valid = 0
            for record in raw:
                if not store.verify_entry(record):
                    break
                valid += 1
            if valid < len(raw):
                dropped = len(raw) - valid
                store.bitrot_detected += 1
                store.truncate_log(self.LOG, valid)
                self.recovery_truncated_entries += dropped
                self.recovery_fallbacks += 1
                if observing:
                    rt.notify("log-corruption-detected", log=self.LOG,
                              index=valid, reason="checksum",
                              dropped=dropped)
                    rt.notify("recovery-fallback",
                              from_cid=self.executed_cid, dropped=dropped)
                raw = raw[:valid]
            self.recovery_verified_entries += valid
        entries = [record.payload for record in raw]
        txs: dict[int, tuple] = {}
        results: dict[int, tuple] = {}
        headers: dict[int, tuple] = {}
        certs: dict[int, tuple] = {}
        specials: dict[int, tuple] = {}
        for entry in entries:
            kind = entry[0]
            if kind == "txs":
                txs[entry[1]] = (entry[2], entry[3], entry[4])
            elif kind == "results":
                results[entry[1]] = entry[2]
            elif kind == "header":
                headers[entry[1]] = (entry[2], entry[3])
            elif kind == "cert":
                certs[entry[1]] = entry[2]
            elif kind == "special":
                specials[entry[1]] = (entry[2], entry[3])
        self.chain = Blockchain(self.genesis)
        self.recorded_members = {
            0: {a.replica_id for a in self.genesis.key_announcements}}
        number = 1
        while number in headers and number in txs and number in results:
            header = BlockHeader.from_record(headers[number][0])
            cid, tx_records, batch_hash = txs[number]
            body = BlockBody(
                consensus_id=cid,
                transactions=[TxRecord.from_record(t) for t in tx_records],
                results=list(results[number]),
                batch_hash=batch_hash,
            )
            if number in specials:
                ann_records, new_view_record = specials[number]
                body.key_announcements = list(ann_records)
                body.new_view = new_view_record
            if body.hash_transactions() != header.hash_transactions:
                break
            block = Block(header, body)
            for rid, signer, value in headers[number][1]:
                block.consensus_proof[rid] = Signature(signer, value)
            if number in certs:
                block.certificate = Certificate.from_record(certs[number])
            try:
                self.chain.append(block)
            except LedgerError:
                break
            number += 1
        if verify and self.chain.height > 0:
            # The ledger is self-verifiable: hold the locally recovered
            # chain to the same standard as one received from a stranger.
            from repro.errors import VerificationError
            from repro.ledger.verifier import ChainVerifier
            verifier = ChainVerifier(replica.registry, self.genesis,
                                     require_certificates=False)
            try:
                verifier.verify_blocks(iter(self.chain))
            except VerificationError:
                dropped = self.chain.height
                self.chain = Blockchain(self.genesis)
                self.recorded_members = {
                    0: {a.replica_id for a in self.genesis.key_announcements}}
                self.recovery_fallbacks += 1
                if observing:
                    rt.notify("log-corruption-detected", log=self.LOG,
                              index=0, reason="chain-verify",
                              dropped=dropped)
                    rt.notify("recovery-fallback",
                              from_cid=self.executed_cid, dropped=dropped)
        # Service state: last stable snapshot plus replay of later blocks.
        checkpoint = store.read_cell(self.SNAPSHOT)
        if (verify and checkpoint is not None
                and not store.verify_cell(self.SNAPSHOT)):
            store.bitrot_detected += 1
            self.snapshots_rejected += 1
            if observing:
                rt.notify("snapshot-rejected", key=self.SNAPSHOT)
            checkpoint = None
        replay_from = 1
        if (isinstance(checkpoint, CheckpointInfo)
                and checkpoint.block_number <= self.chain.height):
            self.app.install_snapshot(checkpoint.snapshot)
            self.last_checkpoint = checkpoint.block_number
            self.last_reconfig = checkpoint.last_reconfig
            self.executed_cid = checkpoint.consensus_id
            self.recorded_members = {vid: set(m)
                                     for vid, m in checkpoint.recorded}
            self._checkpoints = [checkpoint]
            replay_from = checkpoint.block_number + 1
        for block in self.chain.blocks(start=replay_from):
            self._replay_block(block)
        if not self._checkpoints:
            # Anchor a synthetic checkpoint at the recovered position, so
            # state-transfer packages served by this replica pair a snapshot
            # with only the blocks that come after it.
            head = self.chain.head()
            self._checkpoints = [self._make_checkpoint_info(
                self.chain.height,
                head.body.consensus_id if head is not None else -1)]
        head = self.chain.head()
        recovered_cid = head.body.consensus_id if head is not None else -1
        replayed: list[tuple[int, str]] = []
        if observing:
            # Replay evidence for the recovery auditor: recompute each
            # adopted block's batch hash from its transaction records (the
            # canonical form the decide events carried).
            for block in self.chain.blocks(start=1):
                digest = hash_obj(
                    [("req", t.client_id, t.req_id, t.special, repr(t.op))
                     for t in block.body.transactions])
                replayed.append((block.body.consensus_id, digest.hex()))
            if verify:
                rt.notify(
                    "recovery-verified", entries=len(raw),
                    truncated=(self.recovery_truncated_entries
                               - truncated_before),
                    cid=recovered_cid)
        self.last_recovery = {
            "replayed": replayed,
            "verified": len(raw) if verify else 0,
            "truncated": self.recovery_truncated_entries - truncated_before,
            "snapshot_rejected": self.snapshots_rejected > rejected_before,
            "fallback": self.recovery_fallbacks > fallbacks_before,
        }
        return recovered_cid

    def reconcile_local(self, supported_cid: int) -> int:
        """Full-crash reconciliation: drop blocks above what the recovery
        group supports (weak variant only — strong chains self-verify and
        survive through any single holder)."""
        if self.can_self_verify():
            return self.replica.last_decided
        keep = 0
        for block in self.chain:
            if block.body.consensus_id <= supported_cid:
                keep = block.number
        dropped = self.chain.truncate(keep)
        if dropped:
            self.replica.trace.emit(
                self.replica.sim.now, "suffix-lost", replica=self.replica.id,
                blocks=[b.number for b in dropped])
            rt = self.replica.runtime
            if rt.observing:
                rt.notify("suffix-lost",
                          blocks=[b.number for b in dropped], height=keep)
            self._rebuild_service_state()
        head = self.chain.head()
        return head.body.consensus_id if head is not None else -1

    def _rebuild_service_state(self) -> None:
        store = self.replica.store
        checkpoint = store.read_cell(self.SNAPSHOT)
        replay_from = 1
        if (isinstance(checkpoint, CheckpointInfo)
                and checkpoint.block_number <= self.chain.height):
            self.app.install_snapshot(checkpoint.snapshot)
            self.executed_cid = checkpoint.consensus_id
            replay_from = checkpoint.block_number + 1
        else:
            self.app.install_snapshot(self._empty_snapshot())
            self.executed_cid = -1
        for block in self.chain.blocks(start=replay_from):
            self._replay_block(block)

    def _empty_snapshot(self) -> Any:
        try:
            return type(self.app)().snapshot()[0]
        except TypeError as exc:
            raise LedgerError(
                "application cannot be reset for suffix reconciliation"
            ) from exc

    def on_crash(self) -> None:
        super().on_crash()
        self.chain = Blockchain(self.genesis)
        self.last_reconfig = -1
        self.last_checkpoint = -1
        self.executed_cid = -1
        self._persist_votes.clear()
        self._persist_waits.clear()
        for timer in self._persist_timers.values():
            timer.cancel()
        self._persist_timers.clear()
        self.recorded_members = {
            0: {a.replica_id for a in self.genesis.key_announcements}}
        self._checkpoints = []
        if self._flusher is not None:
            self._flusher.stop()

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _tx_record(request: ClientRequest) -> TxRecord:
        return TxRecord(client_id=request.client_id, req_id=request.req_id,
                        op=request.op, size=request.size,
                        special=request.special)

    @staticmethod
    def _proof_record(decision: Decision) -> tuple:
        return tuple(sorted((rid, s.signer, s.value)
                            for rid, s in decision.proof.items()))

    def chain_records(self) -> list[tuple]:
        """Serialized chain as a third-party verifier consumes it."""
        return self.chain.to_records()
