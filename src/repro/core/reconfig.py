"""Decentralized reconfiguration (Section V-D).

No trusted View Manager: nodes join and leave autonomously, gated by an
application-specific policy, and the *forgetting protocol* rotates consensus
keys on every view change so removed-and-later-compromised members cannot
fork the chain (Figure 4's attack).

Protocol shapes (Figure 5):

- **Join**: the candidate asks every current member; each member applies the
  policy and answers with a signed vote that carries its *new consensus
  public key for the next view* (certified by its permanent key).  With
  votes from ``cv.n − cv.f`` members the candidate assembles a certificate
  and submits a ``join`` transaction through the ordering protocol.  The
  resulting reconfiguration block records the new view and the collected
  key announcements; the joiner then runs state transfer and activates.
- **Leave**: symmetric — the leaver collects next-view key announcements
  from a quorum and submits a ``leave`` transaction.
- **Exclude**: each member independently submits a ``remove`` transaction
  (with its next-view key); once ``cv.n − cv.f`` distinct members' votes are
  ordered, the exclusion takes effect.  Remove votes batch together.
- **Late key registration**: members whose keys were not collected publish
  them in-band; they are recorded on-chain via ``keyreg`` transactions so
  third-party verifiers can count their certificate signatures.

All decisions made by :meth:`ReconfigManager.handle_special` are
deterministic functions of the ordered transaction and the current view, so
every correct replica derives the same new view.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.crypto.hashing import hash_obj
from repro.crypto.keys import Signature
from repro.core.blockchain_layer import ReconfigOutcome, SmartChainDelivery
from repro.ledger.block import Block, KeyAnnouncement
from repro.net.message import Message
from repro.smr.requests import ClientRequest
from repro.smr.views import View

__all__ = ["ReconfigAskMsg", "ReconfigVoteMsg", "ReconfigManager",
           "accept_all_policy"]


@dataclass
class ReconfigAskMsg(Message):
    """Candidate → members: request permission to join (or announce leave)."""

    kind: str = "join"
    node_id: int = -1
    permanent_public: str = ""
    credentials: Any = None
    size: int = field(default=160, kw_only=True)


@dataclass
class ReconfigVoteMsg(Message):
    """Member → candidate: signed vote carrying the member's next-view key."""

    kind: str = "join"
    node_id: int = -1
    voter: int = -1
    accept: bool = False
    next_view_id: int = -1
    announcement: tuple | None = None      # KeyAnnouncement record
    vote_signature: Signature | None = None
    size: int = field(default=96 + 96 + Signature.WIRE_SIZE, kw_only=True)


def vote_payload(kind: str, node_id: int, next_view_id: int,
                 announcement: tuple | None) -> bytes:
    return hash_obj(("reconfig-vote", kind, node_id, next_view_id,
                     announcement))


def accept_all_policy(kind: str, node_id: int, credentials: Any) -> bool:
    """Default policy: everyone may join/leave (tests override this)."""
    return True


class ReconfigManager:
    """Drives reconfigurations for one SMARTCHAIN node."""

    def __init__(self, node, policy: Callable[[str, int, Any], bool] | None = None):
        self.node = node
        self.policy = policy or accept_all_policy
        replica = node.replica
        self.replica = replica
        self.delivery: SmartChainDelivery = node.delivery
        replica.register_handler(ReconfigAskMsg, self._on_ask)
        replica.register_handler(ReconfigVoteMsg, self._on_vote)
        self.delivery.reconfig_handler = self.handle_special
        self.delivery.on_reconfiguration = self._on_reconfig_block
        #: Votes collected by this node as a join/leave candidate.
        self._collected: dict[tuple[str, int], dict[int, tuple]] = {}
        self._collecting: dict[tuple[str, int], Callable[[Any], None]] = {}
        self._grace_timers: dict[tuple[str, int], Any] = {}
        #: Exclusion tally (deterministic, fed by ordered transactions).
        self._remove_tally: dict[int, dict[int, tuple]] = {}
        # Statistics.
        self.votes_cast = 0
        self.reconfigs_applied = 0

    # ==================================================================
    # Candidate side: ask → collect votes → submit transaction
    # ==================================================================
    def request_join(self, credentials: Any = None,
                     on_done: Callable[[Any], None] | None = None) -> None:
        self._request_membership_change("join", credentials, on_done)

    def request_leave(self, on_done: Callable[[Any], None] | None = None) -> None:
        self._request_membership_change("leave", None, on_done)

    def _request_membership_change(self, kind: str, credentials: Any,
                                   on_done) -> None:
        replica = self.replica
        key = (kind, replica.id)
        self._collected[key] = {}
        self._collecting[key] = on_done or (lambda _result: None)
        if kind == "leave":
            # The leaver trivially endorses its own departure: its vote
            # (with its next-view key, which fellow members need) counts
            # toward the n-f quorum.
            next_view_id = replica.cv.view_id + 1
            announcement = self._my_announcement(next_view_id).to_record()
            payload = vote_payload(kind, replica.id, next_view_id,
                                   announcement)
            self._collected[key][replica.id] = (
                announcement, replica.permanent_key.sign(payload))
        ask = ReconfigAskMsg(kind=kind, node_id=replica.id,
                             permanent_public=replica.permanent_key.public,
                             credentials=credentials)
        targets = [m for m in replica.cv.members if m != replica.id]
        replica.net.broadcast(replica.id, targets, ask)

    def vote_exclude(self, target: int) -> None:
        """Submit this node's vote to remove ``target`` from the consortium."""
        replica = self.replica
        next_view_id = replica.cv.view_id + 1
        announcement = self._my_announcement(next_view_id)
        op = ("remove", target, replica.id, announcement.to_record())
        self.node.submit_system_request(op, special="remove")

    # ==================================================================
    # Member side: policy vote
    # ==================================================================
    def _on_ask(self, src: int, msg: ReconfigAskMsg) -> None:
        replica = self.replica
        if not replica.active:
            return
        accept = True
        if msg.kind == "join":
            accept = bool(self.policy(msg.kind, msg.node_id, msg.credentials))
        next_view_id = replica.cv.view_id + 1
        announcement = self._my_announcement(next_view_id) if accept else None
        ann_record = announcement.to_record() if announcement else None
        signature = None
        if accept:
            payload = vote_payload(msg.kind, msg.node_id, next_view_id,
                                   ann_record)
            signature = replica.permanent_key.sign(payload)
            self.votes_cast += 1
        replica.send(src, ReconfigVoteMsg(
            kind=msg.kind, node_id=msg.node_id, voter=replica.id,
            accept=accept, next_view_id=next_view_id,
            announcement=ann_record, vote_signature=signature))

    #: After the vote quorum (n−f) is reached, wait this long for the
    #: remaining members' votes so that *all* correct members' next-view
    #: keys get recorded in the reconfiguration block (the n−f bound is the
    #: guaranteed minimum, not a target — Section V-D).
    VOTE_GRACE = 0.05

    def _on_vote(self, src: int, msg: ReconfigVoteMsg) -> None:
        replica = self.replica
        key = (msg.kind, msg.node_id)
        if msg.node_id != replica.id or key not in self._collecting:
            return
        if not msg.accept or msg.vote_signature is None:
            return
        if msg.next_view_id != replica.cv.view_id + 1:
            return  # stale vote for a different reconfiguration epoch
        votes = self._collected.setdefault(key, {})
        votes[msg.voter] = (msg.announcement, msg.vote_signature)
        needed = replica.cv.n - replica.f
        everyone = len([m for m in replica.cv.members if m != replica.id])
        if len(votes) >= everyone:
            self._submit_membership_change(key, msg.kind, msg.next_view_id)
        elif len(votes) >= needed and key not in self._grace_timers:
            self._grace_timers[key] = replica.sim.schedule(
                self.VOTE_GRACE, replica.guard(self._submit_membership_change),
                key, msg.kind, msg.next_view_id)

    def _submit_membership_change(self, key: tuple[str, int], kind: str,
                                  next_view_id: int) -> None:
        replica = self.replica
        timer = self._grace_timers.pop(key, None)
        if timer is not None:
            timer.cancel()
        on_done = self._collecting.pop(key, None)
        if on_done is None:
            return  # already submitted
        votes = self._collected.get(key, {})
        vote_records = tuple(
            sorted((voter, ann, sig.signer, sig.value)
                   for voter, (ann, sig) in votes.items()))
        if kind == "join":
            my_ann = self._my_announcement(next_view_id).to_record()
            op = ("join", replica.id, replica.permanent_key.public,
                  my_ann, vote_records)
        else:
            op = ("leave", replica.id, vote_records)
        self.node.submit_system_request(op, special=kind, on_reply=on_done)

    def _my_announcement(self, view_id: int) -> KeyAnnouncement:
        replica = self.replica
        key = replica.ensure_consensus_key(view_id)
        payload = hash_obj(("keyann", view_id, replica.id, key.public))
        return KeyAnnouncement(view_id, replica.id, key.public,
                               replica.permanent_key.sign(payload))

    # ==================================================================
    # Ordered transaction handler (deterministic; runs at every replica)
    # ==================================================================
    def handle_special(self, request: ClientRequest) -> ReconfigOutcome | None:
        kind = request.special
        outcome: ReconfigOutcome | None = None
        if kind == "join":
            outcome = self._handle_join(request)
        elif kind == "leave":
            outcome = self._handle_leave(request)
        elif kind == "remove":
            outcome = self._handle_remove(request)
        elif kind == "keyreg":
            outcome = self._handle_keyreg(request)
        if outcome is not None:
            replica = self.replica
            rt = replica.runtime
            if rt.observing:
                rt.notify(
                    "reconfig", op=kind,
                    applied=outcome.new_view is not None,
                    view=(outcome.new_view.view_id
                          if outcome.new_view is not None
                          else replica.cv.view_id))
        return outcome

    def _handle_join(self, request: ClientRequest) -> ReconfigOutcome:
        replica = self.replica
        cv = replica.cv
        _, node_id, permanent_public, joiner_ann, vote_records = request.op
        if cv.contains(node_id):
            return ReconfigOutcome(result=("error", "already a member"))
        next_view_id = cv.view_id + 1
        valid_votes = self._validate_votes("join", node_id, next_view_id,
                                           vote_records)
        if len(valid_votes) < cv.n - replica.f:
            return ReconfigOutcome(result=("error", "insufficient votes"))
        joiner = self._validate_announcement(joiner_ann, next_view_id,
                                             node_id, permanent_public)
        if joiner is None:
            return ReconfigOutcome(result=("error", "bad joiner key"))
        new_view = cv.with_member(node_id)
        announcements = [ann for _voter, ann in valid_votes] + [joiner]
        self.reconfigs_applied += 1
        return ReconfigOutcome(
            new_view=new_view,
            announcements=announcements,
            permanent_updates={node_id: permanent_public},
            result=("view", new_view.view_id, tuple(new_view.members)),
        )

    def _handle_leave(self, request: ClientRequest) -> ReconfigOutcome:
        replica = self.replica
        cv = replica.cv
        _, node_id, vote_records = request.op
        if not cv.contains(node_id):
            return ReconfigOutcome(result=("error", "not a member"))
        next_view_id = cv.view_id + 1
        valid_votes = self._validate_votes("leave", node_id, next_view_id,
                                           vote_records)
        if len(valid_votes) < cv.n - replica.f:
            return ReconfigOutcome(result=("error", "insufficient votes"))
        new_view = cv.without_member(node_id)
        announcements = [ann for voter, ann in valid_votes
                         if voter != node_id]
        self.reconfigs_applied += 1
        return ReconfigOutcome(
            new_view=new_view,
            announcements=announcements,
            result=("view", new_view.view_id, tuple(new_view.members)),
        )

    def _handle_remove(self, request: ClientRequest) -> ReconfigOutcome:
        replica = self.replica
        cv = replica.cv
        _, target, sender, ann_record = request.op
        if not cv.contains(target):
            return ReconfigOutcome(result=("error", "target not a member"))
        if not cv.contains(sender) or sender == target:
            return ReconfigOutcome(result=("error", "invalid remove vote"))
        next_view_id = cv.view_id + 1
        announcement = self._validate_announcement(
            ann_record, next_view_id, sender, None)
        if announcement is None:
            return ReconfigOutcome(result=("error", "bad announcement"))
        tally = self._remove_tally.setdefault(target, {})
        tally[sender] = ann_record
        if len(tally) < cv.n - replica.f:
            return ReconfigOutcome(
                result=("pending", len(tally), cv.n - replica.f))
        new_view = cv.without_member(target)
        announcements = []
        for voter, record in sorted(tally.items()):
            ann = self._validate_announcement(record, next_view_id, voter, None)
            if ann is not None:
                announcements.append(ann)
        del self._remove_tally[target]
        self.reconfigs_applied += 1
        return ReconfigOutcome(
            new_view=new_view,
            announcements=announcements,
            result=("view", new_view.view_id, tuple(new_view.members)),
        )

    def _handle_keyreg(self, request: ClientRequest) -> ReconfigOutcome:
        replica = self.replica
        _, ann_record = request.op
        announcement = self._validate_announcement(
            ann_record, replica.cv.view_id, None, None)
        if announcement is None:
            return ReconfigOutcome(result=("error", "bad key registration"))
        return ReconfigOutcome(result=("registered", announcement.replica_id),
                               announcements=[announcement])

    # ==================================================================
    # Validation helpers (pure functions of chain state)
    # ==================================================================
    def _validate_votes(self, kind: str, node_id: int, next_view_id: int,
                        vote_records: tuple) -> list[tuple[int, KeyAnnouncement]]:
        replica = self.replica
        cv = replica.cv
        permanent = self.node.permanent_keys
        valid: list[tuple[int, KeyAnnouncement]] = []
        seen: set[int] = set()
        for voter, ann_record, signer, value in vote_records:
            if voter in seen or not cv.contains(voter):
                continue
            voter_key = permanent.get(voter)
            if voter_key is None or signer != voter_key:
                continue
            payload = vote_payload(kind, node_id, next_view_id, ann_record)
            if not replica.registry.verify(voter_key, payload,
                                           Signature(signer, value)):
                continue
            announcement = self._validate_announcement(
                ann_record, next_view_id, voter, None)
            if announcement is None:
                continue
            seen.add(voter)
            valid.append((voter, announcement))
        return valid

    def _validate_announcement(self, record: tuple | None, view_id: int,
                               expected_owner: int | None,
                               owner_permanent: str | None) -> KeyAnnouncement | None:
        if record is None:
            return None
        try:
            announcement = KeyAnnouncement.from_record(record)
        except (TypeError, ValueError):
            return None
        if announcement.view_id != view_id:
            return None
        if expected_owner is not None and announcement.replica_id != expected_owner:
            return None
        permanent = owner_permanent or self.node.permanent_keys.get(
            announcement.replica_id)
        if permanent is None:
            return None
        if not self.replica.registry.verify(permanent, announcement.payload(),
                                            announcement.signature):
            return None
        return announcement

    # ==================================================================
    # Post-reconfiguration hook
    # ==================================================================
    def _on_reconfig_block(self, block: Block, outcome: ReconfigOutcome) -> None:
        replica = self.replica
        self.node.permanent_keys.update(outcome.permanent_updates)
        recorded = {a.replica_id for a in outcome.announcements}
        new_view: View = outcome.new_view
        self.node.on_view_change(block, new_view)
        if (replica.active and new_view.contains(replica.id)
                and replica.id not in recorded):
            # My next-view key was not collected: register it on-chain so
            # third-party verifiers can count my certificate signatures.
            announcement = self._my_announcement(new_view.view_id)
            self.node.submit_system_request(
                ("keyreg", announcement.to_record()), special="keyreg")
