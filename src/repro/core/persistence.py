"""Blockchain persistence levels and the PERSIST phase message.

Section V-C of the paper classifies durability by how many trailing blocks
may be lost after a full crash:

- **0-Persistence** — perfect durability (the strong variant with the
  PERSIST phase): once a block is written it is immutable;
- **1-Persistence** — external durability (the weak variant, plain
  BFT-SMART): only blocks whose replies a client saw from a quorum are
  guaranteed, i.e. only the second-to-last block is immutable;
- **α-Persistence** — α consensus instances run in parallel (α = 1 here);
- **λ-Persistence** — asynchronous writes: a small environment-dependent
  suffix can be lost;
- **6-Persistence** — Bitcoin's probabilistic finality;
- **∞-Persistence** — memory only.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.config import PersistenceVariant, StorageMode
from repro.crypto.keys import Signature
from repro.net.message import Message

__all__ = ["PersistenceLevel", "persistence_level_of", "PersistMsg"]


class PersistenceLevel(enum.Enum):
    """How many trailing blocks a full crash may cost."""

    ZERO = "0-persistence"
    ONE = "1-persistence"
    ALPHA = "alpha-persistence"
    LAMBDA = "lambda-persistence"
    SIX = "6-persistence"
    INFINITE = "infinite-persistence"

    @property
    def max_lost_blocks(self) -> float:
        return {
            PersistenceLevel.ZERO: 0,
            PersistenceLevel.ONE: 1,
            PersistenceLevel.ALPHA: 1,
            PersistenceLevel.SIX: 6,
            PersistenceLevel.LAMBDA: float("nan"),
            PersistenceLevel.INFINITE: float("inf"),
        }[self]


def persistence_level_of(variant: PersistenceVariant,
                         storage: StorageMode) -> PersistenceLevel:
    """The level a SMARTCHAIN configuration provides (Section V-C)."""
    if storage is StorageMode.MEMORY:
        return PersistenceLevel.INFINITE
    if storage is StorageMode.ASYNC:
        return PersistenceLevel.LAMBDA
    if variant is PersistenceVariant.STRONG:
        return PersistenceLevel.ZERO
    return PersistenceLevel.ONE


@dataclass
class PersistMsg(Message):
    """PERSIST phase: a replica's signature over a block header digest.

    Broadcast after the header and body are on stable media; a quorum of
    these forms the block certificate (Algorithm 1, lines 31-36)."""

    block_number: int = 0
    header_digest: bytes = b""
    replica_id: int = -1
    signature: Signature | None = None
    #: True for a direct answer to another replica's (re-)persist request;
    #: answers are never answered again (prevents echo loops).
    reply: bool = False
    size: int = field(default=48 + 32 + Signature.WIRE_SIZE, kw_only=True)

    def event_fields(self) -> dict:
        """The fields a ``persist-vote`` protocol event carries."""
        return {"block": self.block_number,
                "digest": self.header_digest.hex(),
                "signer": self.replica_id}
