"""Sharded multi-chain SMARTCHAIN: many replica groups, one substrate.

The paper's blockchain layer is independent of the consensus module; this
module exploits that independence in the other direction: *several*
independent SMARTCHAIN replica groups (shards) run side by side on one
simulated substrate.  Each shard is a full :class:`~repro.core.node
.ReplicaGroup` — its own view, consensus engine, ledger, key directory and
application state — so aggregate throughput scales with the number of
groups instead of being capped by a single ordering pipeline.

Identity scheme
---------------
Shard ``k`` hosts replicas ``k * SHARD_STRIDE + i`` for ``i in range(n)``.
Shard 0 therefore keeps the classic ids ``0..n-1`` and, bootstrapped first
from the shared :class:`~repro.crypto.keys.KeyRegistry`, draws exactly the
key material a single-group run would — the ``shards=1`` entry points stay
byte-identical.  Client stations live at ``9000 + 100 * shard + s``; with
``MAX_SHARDS`` groups the replica and station id ranges never collide.

Cross-shard trust
-----------------
Groups share one key registry, so a destination shard can verify a source
shard's persist-certificate signatures against the *source* genesis block's
recorded key announcements — no shared live objects, exactly the
self-verifiability contract of :mod:`repro.ledger.verifier`.  The
:class:`MultiChain` exposes each shard's genesis as the trust anchor for
:class:`repro.ledger.xshard.TransferVerifier`.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.config import CostModel, SmartChainConfig
from repro.core.node import ReplicaGroup, SmartChainNode, bootstrap
from repro.crypto.keys import KeyRegistry
from repro.net.network import Network
from repro.sim.engine import Simulator
from repro.smr.views import View

__all__ = ["SHARD_STRIDE", "MAX_SHARDS", "STATION_BASE", "STATION_STRIDE",
           "shard_of_node", "station_id", "MultiChain", "bootstrap_shards",
           "CertificateFetcher"]

#: Replica-id offset between consecutive shards.  Shard k's members are
#: ``k * SHARD_STRIDE + i``; shard 0 keeps the classic ids 0..n-1.
SHARD_STRIDE = 1000

#: Client stations of shard k sit at ``STATION_BASE + STATION_STRIDE*k + s``.
STATION_BASE = 9000
STATION_STRIDE = 100

#: Upper bound on the shard count: shard ``MAX_SHARDS`` replicas would reach
#: id 9000 and collide with shard 0's client stations.
MAX_SHARDS = 8


def shard_of_node(node_id: int) -> int:
    """Which shard a network endpoint id belongs to (replica or station)."""
    if node_id >= STATION_BASE:
        return (node_id - STATION_BASE) // STATION_STRIDE
    return node_id // SHARD_STRIDE


def station_id(shard: int, index: int) -> int:
    """The id of shard ``shard``'s ``index``-th client station."""
    return STATION_BASE + STATION_STRIDE * shard + index


class MultiChain:
    """N independent SMARTCHAIN replica groups on one simulation substrate.

    Groups are indexed by shard number; ``multichain.groups[0]`` of a
    one-shard deployment is exactly what :func:`~repro.core.node.bootstrap`
    returns.  The shared pieces are the simulator, the network (so clients
    can reach every shard) and the key registry (so a shard can verify
    another shard's signatures); everything consensus-scoped is per group.
    """

    def __init__(self, sim: Simulator, network: Network,
                 registry: KeyRegistry, groups: list[ReplicaGroup]):
        self.sim = sim
        self.network = network
        self.registry = registry
        self.groups: list[ReplicaGroup] = list(groups)
        #: Live view per shard, updated by every node's view listeners so
        #: clients and routers always target the current membership.
        self._views: list[View] = [g.genesis.view for g in self.groups]
        for shard, group in enumerate(self.groups):
            for node in group.nodes.values():
                node.view_listeners.append(self._view_setter(shard))

    def _view_setter(self, shard: int) -> Callable[[View], None]:
        def set_view(view: View) -> None:
            self._views[shard] = view
        return set_view

    @property
    def shards(self) -> int:
        return len(self.groups)

    def group(self, shard: int) -> ReplicaGroup:
        return self.groups[shard]

    def view_of(self, shard: int) -> Callable[[], View]:
        """A live view thunk for shard ``shard`` (what stations expect)."""
        return lambda: self._views[shard]

    def genesis_of(self, shard: int):
        return self.groups[shard].genesis

    def nodes(self) -> dict[int, SmartChainNode]:
        """Every node of every shard, keyed by global node id."""
        out: dict[int, SmartChainNode] = {}
        for group in self.groups:
            out.update(group.nodes)
        return out

    def replicas(self) -> dict[int, Any]:
        return {nid: node.replica for nid, node in self.nodes().items()}

    def apps(self, shard: int) -> list[Any]:
        return [node.app for node in self.groups[shard].nodes.values()]

    def heads(self) -> dict[int, dict[int, int]]:
        return {shard: group.heads()
                for shard, group in enumerate(self.groups)}


class CertificateFetcher:
    """Assembles transfer certificates from a source shard's live chain.

    Plays the role of the client-side library that, in a real deployment,
    reads the source shard's public chain to build the proof it presents to
    the destination shard.  ``fetcher(source_shard, xfer_id)`` returns the
    serialized :class:`~repro.ledger.xshard.TransferCertificate` record, or
    ``None`` while the lock's block has no quorum certificate yet (PERSIST
    in flight) — callers retry later.

    Certified blocks are identical on every correct replica, so the fetcher
    indexes the best (tallest) chain in the group; results are independent
    of which replica it happens to read.
    """

    def __init__(self, multichain: MultiChain):
        self.multichain = multichain
        #: shard -> xfer_id -> serialized certificate record
        self._index: dict[int, dict[str, tuple]] = {}
        #: shard -> last block height whose certificate was indexed
        self._scanned: dict[int, int] = {}

    def __call__(self, source_shard: int, xfer_id: str) -> tuple | None:
        index = self._index.setdefault(source_shard, {})
        record = index.get(xfer_id)
        if record is None:
            self._scan(source_shard, index)
            record = index.get(xfer_id)
        return record

    def _scan(self, shard: int, index: dict[str, tuple]) -> None:
        import ast

        from repro.ledger.xshard import build_transfer_certificate

        group = self.multichain.groups[shard]
        best = max(sorted(group.nodes.values(), key=lambda n: n.id),
                   key=lambda n: n.chain.height)
        chain = best.chain
        number = self._scanned.get(shard, chain.base_height) + 1
        while number <= chain.height:
            block = chain.get(number)
            if block.certificate is None:
                break  # PERSIST in flight; resume here next time
            for idx, record in enumerate(block.body.results):
                repr_str = record[2]
                if not repr_str.startswith("('xlocked'"):
                    continue
                result = ast.literal_eval(repr_str)
                cert = build_transfer_certificate(
                    shard, block, record[0], record[1])
                if cert is not None:
                    index[result[1]] = cert.to_record()
            self._scanned[shard] = number
            number += 1


def bootstrap_shards(
    sim: Simulator,
    shards: int,
    n: int,
    app_factory: Callable[[int], Any],
    config_factory: Callable[[int], SmartChainConfig],
    costs: CostModel | None = None,
    engine: str | None = None,
    app_setup: Any = None,
) -> MultiChain:
    """Bootstrap ``shards`` independent replica groups of ``n`` nodes each.

    ``app_factory(shard)`` returns a fresh application instance for one node
    of that shard (each shard typically gets its own minter partition);
    ``config_factory(shard)`` returns the group's config (usually identical
    per shard, but kept per-shard so experiments can skew one group).

    Shard 0 is bootstrapped first with the classic member ids 0..n-1, so
    its key-registry draws, genesis block and node construction order are
    identical to a single-group :func:`~repro.core.node.bootstrap` — the
    foundation of the harness's ``shards=1`` byte-identity guarantee.
    """
    if not 1 <= shards <= MAX_SHARDS:
        raise ValueError(f"shards must be in 1..{MAX_SHARDS}, got {shards}")
    costs = costs or CostModel()
    registry = KeyRegistry(seed=sim.seed)
    network = Network(sim, costs.network)
    groups: list[ReplicaGroup] = []
    for shard in range(shards):
        base = shard * SHARD_STRIDE
        member_ids = tuple(base + i for i in range(n))
        group = bootstrap(
            sim, member_ids,
            lambda shard=shard: app_factory(shard),
            config_factory(shard), costs=costs,
            app_setup=app_setup,
            registry=registry, network=network,
            engine=engine, shard=shard,
        )
        groups.append(group)
    return MultiChain(sim, network, registry, groups)
